"""Property-based gates on the hot-path optimizations (hypothesis).

Invariants:
* translation caching is invisible — cached, repeat-cached and
  cache-disabled calls return identical access lists and page lists;
* the vectorized page fan-out equals the scalar fall-back on the same
  region;
* with batched fan-out, cached translation and the engine/flash fast
  paths enabled (the defaults), random overwrite churn — including GC
  and fault-injected (bad-block / retry) runs — produces **bit
  identical** timings to the all-knobs-off configuration;
* functional read-back after batched page fan-out returns exactly the
  bytes a numpy mirror predicts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.translator as translator
from repro.core import Space, pages_for_region
from repro.core.translator import (set_translation_cache_limit,
                                   translate_region,
                                   translation_cache_limit)
from repro.faults.model import FaultConfig
from repro.nvm import Geometry
from repro.nvm.profiles import TINY_TEST
from repro.systems import HardwareNdsSystem, SoftwareNdsSystem

GEOMETRY = Geometry(channels=4, banks_per_channel=2, blocks_per_bank=8,
                    pages_per_block=8, page_size=256)


@st.composite
def space_and_region(draw):
    rank = draw(st.integers(1, 3))
    dims = tuple(draw(st.integers(4, 48)) for _ in range(rank))
    element_size = draw(st.sampled_from([1, 2, 4, 8]))
    origin = tuple(draw(st.integers(0, d - 1)) for d in dims)
    extents = tuple(draw(st.integers(1, d - o))
                    for o, d in zip(origin, dims))
    space = Space.create(1, dims, element_size, GEOMETRY)
    return space, origin, extents


@pytest.fixture(autouse=True)
def _restore_cache_limit():
    saved = translation_cache_limit()
    yield
    set_translation_cache_limit(saved)


@settings(max_examples=60, deadline=None)
@given(space_and_region())
def test_translation_cache_is_invisible(data):
    space, origin, extents = data
    cold = translate_region(space, origin, extents)
    warm = translate_region(space, origin, extents)  # cache hit
    set_translation_cache_limit(0)
    space.clear_translation_caches()
    uncached = translate_region(space, origin, extents)
    set_translation_cache_limit(4096)
    assert cold == warm == uncached
    for access in cold:
        key = access.block_slice
        cached_pages = pages_for_region(space, key)
        repeat = pages_for_region(space, key)
        set_translation_cache_limit(0)
        space.clear_translation_caches()
        plain = pages_for_region(space, key)
        set_translation_cache_limit(4096)
        assert cached_pages == repeat == plain


@settings(max_examples=60, deadline=None)
@given(space_and_region())
def test_vectorized_page_fanout_matches_scalar(data):
    space, origin, extents = data
    saved = translator._VECTOR_THRESHOLD
    try:
        for access in translate_region(space, origin, extents):
            translator._VECTOR_THRESHOLD = 1  # force numpy path
            space.clear_translation_caches()
            vectorized = pages_for_region(space, access.block_slice)
            translator._VECTOR_THRESHOLD = 10 ** 9  # force scalar path
            space.clear_translation_caches()
            scalar = pages_for_region(space, access.block_slice)
            assert vectorized == scalar
    finally:
        translator._VECTOR_THRESHOLD = saved


def _tiny_tile_ops(draw, dims):
    ops = []
    for _ in range(draw(st.integers(3, 10))):
        origin = tuple(draw(st.integers(0, d - 1)) for d in dims)
        extents = tuple(draw(st.integers(1, d - o))
                        for o, d in zip(origin, dims))
        ops.append((draw(st.sampled_from(["read", "write"])),
                    origin, extents))
    return ops


def _drive(system_cls, dims, ops, fast, faults):
    system = system_cls(TINY_TEST, store_data=False, faults=faults)
    if not fast:
        set_translation_cache_limit(0)
        flash = getattr(system, "flash", None)
        if flash is None:
            flash = system.ssd.flash
        flash.fast_path = False
        engine = getattr(system, "engine", None)
        if engine is not None:
            engine.fast_path = False
        stl = getattr(system, "stl", None)
        if stl is not None:
            stl.batch_fanout = False
    ends = []
    result = system.ingest("d", dims, 4)
    ends.append(result.end_time)
    clock = result.end_time
    for kind, origin, extents in ops:
        if kind == "read":
            result = system.read_tile("d", origin, extents,
                                      start_time=clock)
        else:
            result = system.write_tile("d", origin, extents,
                                       start_time=clock)
        ends.append(result.end_time)
        clock = result.end_time
    set_translation_cache_limit(4096)
    return [e.hex() for e in ends]


@settings(max_examples=15, deadline=None)
@given(st.data())
@pytest.mark.parametrize("system_cls", [SoftwareNdsSystem,
                                        HardwareNdsSystem],
                         ids=["software", "hardware"])
def test_fast_paths_bit_identical_under_overwrite_churn(system_cls, data):
    dims = (data.draw(st.integers(8, 24)), data.draw(st.integers(8, 24)))
    ops = _tiny_tile_ops(data.draw, dims)
    fast = _drive(system_cls, dims, ops, fast=True, faults=None)
    slow = _drive(system_cls, dims, ops, fast=False, faults=None)
    assert fast == slow


@settings(max_examples=10, deadline=None)
@given(st.data())
def test_fast_paths_bit_identical_with_fault_injection(data):
    """With an injector attached the flash/engine fast paths disable
    themselves; translation caching is the only knob left active and
    must still be invisible under retry / bad-block churn."""
    dims = (data.draw(st.integers(8, 20)), data.draw(st.integers(8, 20)))
    ops = _tiny_tile_ops(data.draw, dims)
    faults = FaultConfig(seed=data.draw(st.integers(0, 2 ** 16)),
                         rber_base=2e-3,
                         program_fail_base=0.02)
    fast = _drive(HardwareNdsSystem, dims, ops, fast=True, faults=faults)
    slow = _drive(HardwareNdsSystem, dims, ops, fast=False, faults=faults)
    assert fast == slow


@settings(max_examples=10, deadline=None)
@given(st.data())
def test_batched_fanout_readback_bytes_exact(data):
    """Functional gate: ingest + random overwrites through the batched
    program fan-out, then read back random tiles and compare against a
    numpy mirror byte for byte."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
    dims = (data.draw(st.integers(8, 20)), data.draw(st.integers(8, 20)))
    system_cls = data.draw(st.sampled_from([SoftwareNdsSystem,
                                            HardwareNdsSystem]))
    system = system_cls(TINY_TEST, store_data=True)
    mirror = rng.integers(0, 2 ** 31, dims).astype(np.int32)
    system.ingest("d", dims, 4, data=mirror)
    clock = 0.0
    for _ in range(data.draw(st.integers(1, 6))):
        origin = tuple(data.draw(st.integers(0, d - 1)) for d in dims)
        extents = tuple(data.draw(st.integers(1, d - o))
                        for o, d in zip(origin, dims))
        patch = rng.integers(0, 2 ** 31, extents).astype(np.int32)
        result = system.write_tile("d", origin, extents, data=patch,
                                   start_time=clock)
        clock = result.end_time
        slicer = tuple(slice(o, o + e) for o, e in zip(origin, extents))
        mirror = mirror.copy()
        mirror[slicer] = patch
    origin = tuple(data.draw(st.integers(0, d - 1)) for d in dims)
    extents = tuple(data.draw(st.integers(1, d - o))
                    for o, d in zip(origin, dims))
    result = system.read_tile("d", origin, extents, start_time=clock,
                              with_data=True, dtype=np.dtype(np.int32))
    slicer = tuple(slice(o, o + e) for o, e in zip(origin, extents))
    np.testing.assert_array_equal(result.data, mirror[slicer])
