"""Paper-scale projection of down-scaled measurements.

Experiments run at a documented down-scale (DESIGN.md §5). Ratios and
bandwidths carry over directly; absolute per-tile latencies and counts
scale with data volume. These helpers make the projection explicit —
and auditable — instead of leaving it implied.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScalePolicy", "project_duration", "project_count"]


@dataclass(frozen=True)
class ScalePolicy:
    """How a run was scaled relative to the paper's configuration.

    ``axis_factor`` is the per-axis shrink (paper dim / our dim, e.g. 16
    for 65536 → 4096); ``rank`` is how many axes were shrunk.
    """

    axis_factor: float
    rank: int = 2

    def __post_init__(self) -> None:
        if self.axis_factor < 1:
            raise ValueError("axis_factor must be >= 1 (shrinking)")
        if self.rank < 1:
            raise ValueError("rank must be >= 1")

    @property
    def volume_factor(self) -> float:
        """Data-volume shrink: axis_factor ** rank."""
        return self.axis_factor ** self.rank

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (f"1/{self.axis_factor:g} per axis over {self.rank} axes "
                f"(1/{self.volume_factor:g} of the data volume)")


def project_duration(measured_seconds: float, policy: ScalePolicy,
                     volume_bound: bool = True) -> float:
    """Project a measured duration to paper scale.

    Volume-bound stages (transfers, kernels, marshalling) grow with the
    data volume; per-axis-bound stages (per-row request streams at a
    fixed row size) grow with ``axis_factor``.
    """
    factor = policy.volume_factor if volume_bound else policy.axis_factor
    return measured_seconds * factor


def project_count(measured: int, policy: ScalePolicy,
                  volume_bound: bool = True) -> int:
    """Project a discrete count (requests, pages, tiles) to paper scale."""
    factor = policy.volume_factor if volume_bound else policy.axis_factor
    return round(measured * factor)
