"""Table 1 — the workload inventory.

Regenerates the table's rows (category, data/kernel dimensionality,
dataset shape, kernel sub-dimension, shared inputs) from the workload
registry at the documented down-scale.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis import format_table
from repro.workloads import SCALE_NOTE, all_workloads


def test_table1_inventory(benchmark):
    workloads = once(benchmark, all_workloads)
    rows = []
    for wl in workloads:
        datasets = wl.datasets()
        plan = wl.tile_plan()
        data_shape = " + ".join("x".join(map(str, ds.dims))
                                for ds in datasets)
        sub_dims = sorted({fetch.extents for fetch in plan})
        sub = " / ".join("x".join(map(str, s)) for s in sub_dims)
        rows.append([wl.name, wl.category, wl.data_dim_label,
                     wl.kernel_dim_label, data_shape, sub,
                     wl.shared_input_group() or "-"])
    print()
    print(format_table(
        ["workload", "category", "data", "kernel", "dataset (scaled)",
         "kernel sub-dimension (scaled)", "shared input"], rows,
        title="Table 1 (at the documented down-scale)"))
    print(f"\nScaling note: {SCALE_NOTE}")

    names = [wl.name for wl in workloads]
    assert names == ["BFS", "SSSP", "GEMM", "Hotspot", "KMeans", "KNN",
                     "PageRank", "Conv2D", "TTV", "TC"]
    # three shared-input pairs (§6.2)
    groups = {}
    for wl in workloads:
        group = wl.shared_input_group()
        if group:
            groups.setdefault(group, []).append(wl.name)
    assert sorted(len(v) for v in groups.values()) == [2, 2, 2]
