"""Tests for consumer views (§3, Fig. 5)."""

import numpy as np
import pytest

from repro.core import (IdentityView, InvalidCoordinateError, ReshapeView,
                        TileGridView, ViewVolumeError, linear_range_to_boxes)


class TestLinearRangeToBoxes:
    @pytest.mark.parametrize("dims,start,length", [
        ((4, 6), 0, 24),
        ((4, 6), 3, 10),
        ((4, 6), 7, 1),
        ((3, 4, 5), 13, 31),
        ((10,), 2, 5),
        ((2, 2, 2, 2), 5, 9),
    ])
    def test_boxes_cover_exactly_the_range(self, dims, start, length):
        volume = int(np.prod(dims))
        flags = np.zeros(volume, dtype=int)
        array = flags.reshape(dims)
        for origin, extents in linear_range_to_boxes(dims, start, length):
            slicer = tuple(slice(o, o + e) for o, e in zip(origin, extents))
            array[slicer] += 1
        assert flags[start:start + length].tolist() == [1] * length
        assert flags.sum() == length

    def test_boxes_in_range_order(self):
        boxes = linear_range_to_boxes((4, 6), 3, 15)
        strides = (6, 1)
        starts = [sum(o * s for o, s in zip(origin, strides))
                  for origin, _ in boxes]
        assert starts == sorted(starts)

    def test_empty_range(self):
        assert linear_range_to_boxes((4, 4), 0, 0) == []

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            linear_range_to_boxes((4,), 2, 10)


class TestIdentityView:
    def test_passthrough(self):
        view = IdentityView((8, 8))
        regions = view.resolve((2, 3), (4, 4))
        assert len(regions) == 1
        assert regions[0].producer_origin == (2, 3)
        assert regions[0].out_origin == (0, 0)

    def test_bounds(self):
        view = IdentityView((8, 8))
        with pytest.raises(InvalidCoordinateError):
            view.resolve((6, 0), (4, 4))


class TestTileGridView:
    def test_figure5_quadrants(self):
        """Fig. 5: (8192, 8192, 4) viewed as a 16384×16384 matrix of
        2×2 quadrants; quadrant [1, 0] maps to one producer slab."""
        view = TileGridView((8192, 8192, 4), (2, 2))
        assert view.dims == (16384, 16384)
        regions = view.resolve((8192, 0), (8192, 8192))
        assert len(regions) == 1
        assert regions[0].producer_origin == (0, 0, 2)  # slab 2 = grid (1,0)
        assert regions[0].producer_extents == (8192, 8192, 1)

    def test_region_spanning_tiles(self):
        view = TileGridView((4, 4, 4), (2, 2))
        regions = view.resolve((2, 2), (4, 4))
        assert len(regions) == 4
        slabs = {r.producer_origin[-1] for r in regions}
        assert slabs == {0, 1, 2, 3}

    def test_volume_must_match(self):
        with pytest.raises(ViewVolumeError):
            TileGridView((4, 4, 4), (2, 3))

    def test_grid_rank_must_match_tile_rank(self):
        with pytest.raises(ViewVolumeError):
            TileGridView((4, 4, 4), (2, 2, 1))


class TestReshapeView:
    def test_volume_checked(self):
        with pytest.raises(ViewVolumeError):
            ReshapeView((4, 4), (5, 3))

    def test_full_read_equals_numpy_reshape(self):
        view = ReshapeView((6, 4), (4, 6))
        source = np.arange(24).reshape(6, 4)
        target = np.zeros((4, 6), dtype=int)
        for region in view.resolve((0, 0), (4, 6)):
            src = tuple(slice(o, o + e) for o, e in
                        zip(region.producer_origin, region.producer_extents))
            dst = tuple(slice(o, o + e) for o, e in
                        zip(region.out_origin, region.out_extents))
            target[dst] = source[src].reshape(region.out_extents)
        assert np.array_equal(target, source.reshape(4, 6))

    def test_partial_read_equals_numpy_slice(self):
        view = ReshapeView((8, 3), (4, 6))
        source = np.arange(24).reshape(8, 3)
        expected = source.reshape(4, 6)[1:3, 2:5]
        target = np.zeros((2, 3), dtype=int)
        for region in view.resolve((1, 2), (2, 3)):
            src = tuple(slice(o, o + e) for o, e in
                        zip(region.producer_origin, region.producer_extents))
            dst = tuple(slice(o, o + e) for o, e in
                        zip(region.out_origin, region.out_extents))
            target[dst] = source[src].reshape(region.out_extents)
        assert np.array_equal(target, expected)

    def test_rank_change_1d(self):
        view = ReshapeView((24,), (4, 6))
        regions = view.resolve((1, 1), (2, 4))
        covered = sum(int(np.prod(r.producer_extents)) for r in regions)
        assert covered == 8
