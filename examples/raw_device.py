#!/usr/bin/env python3
"""Talking to the NDS device in its wire format (§5.3.1).

Everything here goes through 64-byte NVMe submission-queue entries and
4 KB coordinate pages — the paper's actual command-set extension —
including the backwards-compatibility path where a *conventional* READ
is served from an implicit one-dimensional space.

Run:  python examples/raw_device.py
"""

import numpy as np

from repro.core import NdsDevice, bytes_to_array
from repro.interconnect import NvmeOpcode
from repro.interconnect.encoding import encode_command
from repro.nvm import PAPER_PROTOTYPE


def main() -> None:
    device = NdsDevice(PAPER_PROTOTYPE.scaled_capacity(1 / 64),
                       store_data=True)

    # open_space: the SQE carries a pointer to a dimensionality page.
    opened = device.submit(encode_command(NvmeOpcode.OPEN_SPACE,
                                          dims=(512, 512)))
    sid = opened.space_id
    print(f"open_space -> id {sid}, building block "
          f"{opened.fields['building_block']} "
          f"(SQE is {len(encode_command(NvmeOpcode.OPEN_SPACE, dims=(512, 512)).sqe)} bytes"
          f" + one 4 KiB payload page)")

    # nd_write / nd_read with coordinate + sub-dimensionality pages.
    rng = np.random.default_rng(21)
    matrix = rng.integers(0, 2**31, (512, 512)).astype(np.int32)
    write = device.submit(
        encode_command(NvmeOpcode.ND_WRITE, space_id=sid,
                       coordinate=(0, 0), sub_dim=(512, 512)),
        payload=matrix)
    print(f"nd_write of 1 MiB completed at t={write.end_time * 1e3:.2f} ms")

    read = device.submit(
        encode_command(NvmeOpcode.ND_READ, space_id=sid,
                       coordinate=(1, 3), sub_dim=(128, 128)),
        start_time=write.end_time)
    tile = bytes_to_array(read.data, np.int32)
    assert np.array_equal(tile, matrix[128:256, 384:512])
    print(f"nd_read of a 128x128 tile verified "
          f"({(read.end_time - write.end_time) * 1e6:.0f} us)")

    # Backwards compatibility: a plain NVMe WRITE/READ pair — "NDS
    # simply treats the request as a request to a one-dimensional
    # address space".
    page = PAPER_PROTOTYPE.geometry.page_size
    blob = rng.integers(0, 256, 4 * page).astype(np.uint8)
    device.submit(encode_command(NvmeOpcode.WRITE, lba=100, length=4),
                  payload=blob)
    legacy = device.submit(encode_command(NvmeOpcode.READ, lba=100,
                                          length=4))
    assert np.array_equal(legacy.data, blob)
    print("conventional READ/WRITE round-trips through the implicit 1-D "
          "space")

    # delete_space invalidates every building block.
    deleted = device.submit(encode_command(NvmeOpcode.DELETE_SPACE,
                                           space_id=sid))
    print(f"delete_space released {deleted.fields['units_released']} "
          f"access units")
    print("done.")


if __name__ == "__main__":
    main()
