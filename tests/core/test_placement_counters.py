"""Columnar placement counters must reproduce the old dict scans.

The allocator's least-used-bank / least-used-channel rules used to scan
``BlockEntry``'s usage dicts per unit. The columnar mirror
(``BlockEntry.place_cols``) packs both tie-break keys into one integer
grid maintained incrementally by ``record_alloc``/``record_release``;
one ``min`` per row must land on exactly the channel the old
lexicographic scan picked, and the incrementally-maintained grid must
equal a fresh rebuild at any point.
"""

import random

from repro.core.allocator import NdsAllocator
from repro.core.btree import BlockEntry
from repro.nvm.address import PhysicalPageAddress
from repro.nvm.geometry import Geometry


def _old_least_used_channel(geometry, entry, bank):
    bank_use = entry.bank_channels.get(bank) or {}
    channel_use = entry.channel_use
    best = None
    best_bank_use = 0
    best_channel_use = 0
    for c in range(geometry.channels):
        used = bank_use.get(c, 0)
        if best is None or used < best_bank_use:
            best = c
            best_bank_use = used
            best_channel_use = channel_use.get(c, 0)
        elif used == best_bank_use:
            overall = channel_use.get(c, 0)
            if overall < best_channel_use:
                best = c
                best_channel_use = overall
    return best


def _old_bank_usage(geometry, entry):
    usage = [0] * geometry.banks_per_channel
    for (_c, b), count in entry.bank_use.items():
        usage[b] += count
    return usage


def _run_trial(seed):
    rng = random.Random(seed)
    geo = Geometry(channels=rng.choice([4, 8, 32]),
                   banks_per_channel=rng.choice([2, 4, 8]),
                   blocks_per_bank=64, pages_per_block=64, page_size=4096)
    alloc = NdsAllocator(geo, seed=seed)
    npages = rng.choice([1, 4, 16, 64, 200])
    entry = BlockEntry(coord=(0,), pages=[None] * npages)
    live = []
    for step in range(300):
        op = rng.random()
        if op < 0.55 or not live:
            free = [i for i in range(npages) if entry.pages[i] is None]
            if not free:
                continue
            pos = rng.choice(free)
            ppa = PhysicalPageAddress(rng.randrange(geo.channels),
                                      rng.randrange(geo.banks_per_channel),
                                      rng.randrange(64), rng.randrange(64))
            entry.record_alloc(ppa, pos)
            live.append(pos)
        elif op < 0.8:
            pos = live.pop(rng.randrange(len(live)))
            entry.record_release(pos)
        else:
            for bank in range(geo.banks_per_channel):
                got = alloc._least_used_channel(entry, bank)
                want = _old_least_used_channel(geo, entry, bank)
                assert got == want, (seed, step, bank, got, want)
            key_grid, bank_tot = alloc._place_cols(entry)
            assert bank_tot == _old_bank_usage(geo, entry), (seed, step)
            # incrementally-maintained grid == fresh rebuild
            entry.place_cols = None
            fresh = alloc._place_cols(entry)
            assert fresh[0] == key_grid and fresh[1] == bank_tot, \
                (seed, step)


def test_placement_counters_match_old_scans():
    for seed in range(40):
        _run_trial(seed)
