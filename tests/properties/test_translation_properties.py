"""Property-based tests on the translation core (hypothesis).

Invariants:
* Eq. 5 translation tiles a request exactly — out-slices partition the
  request volume with no gap and no overlap;
* page selection never misses a byte of the requested region;
* linear-range decomposition covers exactly the range;
* baseline run decomposition covers exactly the tile.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Space, linear_range_to_boxes, pages_for_region
from repro.core.translator import translate_region
from repro.nvm import Geometry
from repro.systems.base import row_runs

GEOMETRY = Geometry(channels=4, banks_per_channel=2, blocks_per_bank=8,
                    pages_per_block=8, page_size=256)


@st.composite
def space_and_region(draw):
    rank = draw(st.integers(1, 3))
    dims = tuple(draw(st.integers(4, 48)) for _ in range(rank))
    element_size = draw(st.sampled_from([1, 2, 4, 8]))
    origin = tuple(draw(st.integers(0, d - 1)) for d in dims)
    extents = tuple(draw(st.integers(1, d - o))
                    for o, d in zip(origin, dims))
    space = Space.create(1, dims, element_size, GEOMETRY)
    return space, origin, extents


@settings(max_examples=80, deadline=None)
@given(space_and_region())
def test_translation_tiles_request_exactly(data):
    space, origin, extents = data
    accesses = translate_region(space, origin, extents)
    coverage = np.zeros(extents, dtype=np.int32)
    for access in accesses:
        slicer = tuple(slice(lo, hi) for lo, hi in access.out_slice)
        coverage[slicer] += 1
        # block slices stay within the block
        for (lo, hi), bb in zip(access.block_slice, space.bb):
            assert 0 <= lo < hi <= bb
        # block coordinates stay within the grid
        for c, g in zip(access.block_coord, space.grid):
            assert 0 <= c < g
    assert (coverage == 1).all()


@settings(max_examples=80, deadline=None)
@given(space_and_region())
def test_pages_cover_every_region_byte(data):
    space, origin, extents = data
    page_bytes = -(-space.block_bytes // space.pages_per_block)
    for access in translate_region(space, origin, extents):
        pages = set(pages_for_region(space, access.block_slice))
        assert pages <= set(range(space.pages_per_block))
        # every element byte of the region must fall in a chosen page
        strides = [space.element_size] * space.rank
        for axis in range(space.rank - 2, -1, -1):
            strides[axis] = strides[axis + 1] * space.bb[axis + 1]
        ranges = [range(lo, hi) for lo, hi in access.block_slice]
        import itertools
        for coord in itertools.product(*ranges):
            offset = sum(c * s for c, s in zip(coord, strides))
            for b in (offset, offset + space.element_size - 1):
                assert b // page_bytes in pages


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_linear_range_boxes_cover_exactly(data):
    rank = data.draw(st.integers(1, 4))
    dims = tuple(data.draw(st.integers(1, 8)) for _ in range(rank))
    volume = int(np.prod(dims))
    start = data.draw(st.integers(0, volume - 1))
    length = data.draw(st.integers(1, volume - start))
    flags = np.zeros(volume, dtype=np.int32)
    view = flags.reshape(dims)
    for origin, extents in linear_range_to_boxes(dims, start, length):
        slicer = tuple(slice(o, o + e) for o, e in zip(origin, extents))
        view[slicer] += 1
    assert (flags[start:start + length] == 1).all()
    assert flags.sum() == length


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_row_runs_cover_tile_exactly(data):
    rank = data.draw(st.integers(1, 4))
    dims = tuple(data.draw(st.integers(1, 10)) for _ in range(rank))
    origin = tuple(data.draw(st.integers(0, d - 1)) for d in dims)
    extents = tuple(data.draw(st.integers(1, d - o))
                    for o, d in zip(origin, dims))
    volume = int(np.prod(dims))
    flags = np.zeros(volume, dtype=np.int32)
    for start, length in row_runs(dims, origin, extents):
        assert 0 <= start and start + length <= volume
        flags[start:start + length] += 1
    view = flags.reshape(dims)
    slicer = tuple(slice(o, o + e) for o, e in zip(origin, extents))
    assert (view[slicer] == 1).all()
    assert flags.sum() == int(np.prod(extents))
