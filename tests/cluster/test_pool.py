"""Device pool, two-tier sharding, and layout construction."""

import numpy as np
import pytest

from repro.cluster import (DevicePool, PoolShardSpec, build_layout,
                           partition_rows)
from repro.core.sharding import ShardSpec
from repro.nvm import TINY_TEST
from repro.systems import SoftwareNdsSystem


def _pool(count=4):
    return DevicePool.from_factory(
        count, lambda i: SoftwareNdsSystem(TINY_TEST, store_data=True))


# ----------------------------------------------------------------------
# partition_rows
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rows,align,width,epd", [
    (64, 16, 4, 1), (64, 16, 4, 2), (100, 7, 3, 1), (5, 16, 8, 1),
    (1, 1, 1, 1), (1000, 1, 8, 4),
])
def test_partition_rows_covers_contiguously(rows, align, width, epd):
    bounds = partition_rows(rows, align, width, epd)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == rows
    for (_, end), (start, _) in zip(bounds, bounds[1:]):
        assert end == start
    assert len(bounds) <= width * epd
    # every boundary except the final row is align-quantized
    for start, _ in bounds:
        assert start % align == 0


def test_partition_rows_rejects_empty():
    with pytest.raises(ValueError):
        partition_rows(0, 1, 4, 1)


# ----------------------------------------------------------------------
# build_layout
# ----------------------------------------------------------------------
def test_build_layout_round_robin_without_parity():
    layout = build_layout("d", (64, 8), 4, align=16, devices=(0, 1, 2, 3),
                          ordinal=0)
    assert [x.device for x in layout.extents] == [0, 1, 2, 3]
    assert not layout.parity
    assert layout.devices == (0, 1, 2, 3)


def test_build_layout_parity_groups_span_distinct_devices():
    layout = build_layout("d", (96, 8), 4, align=16, devices=(0, 1, 2, 3),
                          ordinal=0, extents_per_device=2, parity=True)
    for parity in layout.parity:
        members = [layout.extents[i] for i in parity.members]
        devices = [x.device for x in members] + [parity.device]
        assert len(devices) == len(set(devices)), (
            "parity group must never co-locate two members on one device")
        assert parity.rows == max(x.rows for x in members)


def test_build_layout_rotates_parity_device():
    layout = build_layout("d", (96, 8), 4, align=8, devices=(0, 1, 2, 3),
                          ordinal=0, extents_per_device=3, parity=True)
    parity_devices = [p.device for p in layout.parity]
    assert len(set(parity_devices)) > 1, (
        "RAID-5 rotation should spread parity over the pool")


def test_build_layout_parity_needs_two_devices():
    with pytest.raises(ValueError, match="at least 2"):
        build_layout("d", (64, 8), 4, align=16, devices=(0,), ordinal=0,
                     parity=True)


def test_subregions_partition_the_request():
    layout = build_layout("d", (64, 8), 4, align=16, devices=(0, 1),
                          ordinal=0, extents_per_device=2)
    parts = layout.subregions((8, 0), (40, 8))
    covered = sum(le[0] for _, _, le, _ in parts)
    assert covered == 40
    out_rows = [out_row for _, _, _, out_row in parts]
    assert out_rows == sorted(out_rows)


# ----------------------------------------------------------------------
# PoolShardSpec
# ----------------------------------------------------------------------
def test_pool_shard_rejects_duplicates_and_empty():
    with pytest.raises(ValueError, match="duplicate"):
        PoolShardSpec(devices=(1, 1))
    with pytest.raises(ValueError, match="empty"):
        PoolShardSpec(devices=())


def test_pool_shard_device_subset_validates_range():
    spec = PoolShardSpec(devices=(0, 3))
    assert spec.device_subset(4) == (0, 3)
    with pytest.raises(ValueError, match="outside pool"):
        spec.device_subset(2)
    assert PoolShardSpec().device_subset(3) == (0, 1, 2)


def test_pool_shard_normalize_accepts_legacy_forms():
    inner = ShardSpec(channels=(0, 1))
    spec = PoolShardSpec.normalize(inner)
    assert spec.devices is None
    assert spec.shard == inner
    assert PoolShardSpec.normalize(None) is None
    passthrough = PoolShardSpec(devices=(1,))
    assert PoolShardSpec.normalize(passthrough) is passthrough


# ----------------------------------------------------------------------
# DevicePool
# ----------------------------------------------------------------------
def test_pool_kill_and_observe():
    pool = _pool(3)
    assert pool.live_devices() == (0, 1, 2)
    pool.schedule_kill(1, at=0.5)
    assert pool.has_kill_plan
    pool.observe(0.4)
    assert not pool.is_dead(1)
    pool.observe(0.6)
    assert pool.is_dead(1)
    assert pool.live_devices() == (0, 2)
    # observe is monotonic: an earlier time cannot resurrect a device
    pool.observe(0.1)
    assert pool.is_dead(1)


def test_pool_counters_accumulate():
    pool = _pool(2)
    pool.note(0, "migrations_in")
    pool.note(0, "migrations_in")
    report = pool.device_report()
    assert report["d0"]["migrations_in"] == 2
    assert report["d1"]["migrations_in"] == 0
    assert not report["d0"]["dead"]


def test_pool_handle_validates_range():
    pool = _pool(2)
    with pytest.raises(ValueError):
        pool.handle(5)


# ----------------------------------------------------------------------
# two-tier sharding through a pooled system
# ----------------------------------------------------------------------
def test_two_tier_shard_restricts_devices_and_channels():
    system = SoftwareNdsSystem(TINY_TEST, store_data=True, devices=4,
                               extents_per_device=2)
    data = np.arange(64 * 16, dtype=np.int32).reshape(64, 16)
    shard = PoolShardSpec(devices=(0, 2), shard=ShardSpec(channels=(0, 1)))
    system.ingest("M", (64, 16), 4, data=data, shard=shard)
    layout = next(iter(system.cluster.layouts.values()))
    assert layout.devices == (0, 2)
    assert {x.device for x in layout.extents} <= {0, 2}
    assert layout.inner_params.get("shard") == ShardSpec(channels=(0, 1))
    result = system.read_tile("M", (0, 0), (64, 16), with_data=True,
                              dtype=np.dtype(np.int32))
    assert np.array_equal(result.data, data)


def test_pooled_roundtrip_all_rows():
    system = SoftwareNdsSystem(TINY_TEST, store_data=True, devices=4)
    data = np.arange(64 * 16, dtype=np.int32).reshape(64, 16)
    system.ingest("M", (64, 16), 4, data=data)
    for row in range(0, 64, 16):
        result = system.read_tile("M", (row, 0), (16, 16), with_data=True,
                                  dtype=np.dtype(np.int32))
        assert np.array_equal(result.data, data[row:row + 16])


def test_devices_one_has_no_cluster():
    system = SoftwareNdsSystem(TINY_TEST, devices=1)
    assert system.cluster is None
    assert system.device_report() is None
