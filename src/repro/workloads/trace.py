"""Access-trace recording and replay.

NDS's pitch is serving *arbitrary* applications from one stored layout;
traces make that testable: record the tile accesses one application
makes, then replay them against any architecture (or any device
profile) and compare. Traces serialize to JSON for offline analysis.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.systems.base import StorageSystem, SystemOpResult

__all__ = ["TraceEvent", "AccessTrace", "TracingSystem", "replay_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded dataset access."""

    kind: str                   # "read" | "write"
    dataset: str
    origin: Tuple[int, ...]
    extents: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"unknown access kind {self.kind!r}")


@dataclass
class AccessTrace:
    """An ordered list of accesses plus the datasets they need."""

    datasets: List[Tuple[str, Tuple[int, ...], int]] = field(
        default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_dataset(self, name: str, dims: Sequence[int],
                       element_size: int) -> None:
        entry = (name, tuple(int(d) for d in dims), int(element_size))
        if entry not in self.datasets:
            self.datasets.append(entry)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def read_bytes(self) -> int:
        by_name = {name: (dims, elem)
                   for name, dims, elem in self.datasets}
        total = 0
        for event in self.events:
            if event.kind != "read":
                continue
            _dims, elem = by_name[event.dataset]
            volume = elem
            for extent in event.extents:
                volume *= extent
            total += volume
        return total

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "datasets": [list(entry) for entry in self.datasets],
            "events": [asdict(event) for event in self.events],
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "AccessTrace":
        raw = json.loads(text)
        trace = cls()
        for name, dims, elem in raw["datasets"]:
            trace.record_dataset(name, dims, elem)
        for event in raw["events"]:
            trace.append(TraceEvent(
                kind=event["kind"], dataset=event["dataset"],
                origin=tuple(event["origin"]),
                extents=tuple(event["extents"])))
        return trace

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AccessTrace":
        return cls.from_json(Path(path).read_text())


class TracingSystem(StorageSystem):
    """A recording proxy around any storage system."""

    def __init__(self, inner: StorageSystem) -> None:
        self.inner = inner
        self.trace = AccessTrace()
        self.name = f"traced-{inner.name}"

    def _execute_ingest(self, dataset, dims, element_size, data=None,
                        start_time=0.0, **params) -> SystemOpResult:
        self.trace.record_dataset(dataset, dims, element_size)
        return self.inner.ingest(dataset, dims, element_size, data=data,
                                 start_time=start_time, **params)

    def _execute_read(self, dataset, origin, extents, start_time=0.0,
                      with_data=False, dtype=None) -> SystemOpResult:
        self.trace.append(TraceEvent("read", dataset, tuple(origin),
                                     tuple(extents)))
        return self.inner.read_tile(dataset, origin, extents,
                                    start_time=start_time,
                                    with_data=with_data, dtype=dtype)

    def _execute_write(self, dataset, origin, extents, data=None,
                       start_time=0.0) -> SystemOpResult:
        self.trace.append(TraceEvent("write", dataset, tuple(origin),
                                     tuple(extents)))
        return self.inner.write_tile(dataset, origin, extents, data=data,
                                     start_time=start_time)

    def reset_time(self) -> None:
        self.inner.reset_time()
        self._reset_runtime()


def replay_trace(trace: AccessTrace, system: StorageSystem,
                 ingest: bool = True,
                 data: Optional[dict] = None) -> Tuple[float, List[SystemOpResult]]:
    """Run a trace against a system; returns (last completion, results).

    Accesses are issued back to back (each at the previous completion),
    modelling a dependent request stream.
    """
    if ingest:
        for name, dims, elem in trace.datasets:
            payload = data.get(name) if data else None
            system.ingest(name, dims, elem, data=payload)
        system.reset_time()
    now = 0.0
    results: List[SystemOpResult] = []
    for event in trace.events:
        if event.kind == "read":
            result = system.read_tile(event.dataset, event.origin,
                                      event.extents, start_time=now)
        else:
            payload = None
            if data and event.dataset in data:
                source = np.asarray(data[event.dataset])
                slicer = tuple(slice(o, o + e) for o, e in
                               zip(event.origin, event.extents))
                payload = source[slicer]
            result = system.write_tile(event.dataset, event.origin,
                                       event.extents, data=payload,
                                       start_time=now)
        now = result.end_time
        results.append(result)
    return now, results
