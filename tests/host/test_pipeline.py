"""Tests for the pipeline overlap model."""

import pytest

from repro.host import run_pipeline


class TestSchedule:
    def test_single_item(self):
        result = run_pipeline([[1.0, 2.0, 3.0]])
        assert result.total_time == pytest.approx(6.0)

    def test_perfect_overlap(self):
        # identical items: steady state advances by the slowest stage
        result = run_pipeline([[1.0, 2.0, 1.0]] * 5)
        # fill (1+2+1) + 4 more items through the 2.0 bottleneck
        assert result.total_time == pytest.approx(4.0 + 4 * 2.0)

    def test_io_bound_pipeline_idles_kernel(self):
        result = run_pipeline([[10.0, 1.0, 2.0]] * 4,
                              ["io", "h2d", "kernel"])
        # kernel waits (10+1) before the first run, then 8 per gap
        assert result.idle_of("kernel") == pytest.approx(11.0 + 3 * 8.0)

    def test_compute_bound_pipeline_has_low_kernel_idle(self):
        result = run_pipeline([[1.0, 1.0, 10.0]] * 4,
                              ["io", "h2d", "kernel"])
        assert result.idle_of("kernel") == pytest.approx(2.0)  # fill only

    def test_busy_accounting(self):
        result = run_pipeline([[1.0, 2.0]] * 3, ["a", "b"])
        assert result.busy_of("a") == pytest.approx(3.0)
        assert result.busy_of("b") == pytest.approx(6.0)

    def test_heterogeneous_items(self):
        result = run_pipeline([[1.0, 1.0], [5.0, 1.0], [1.0, 1.0]])
        # item2 waits for item1's long stage0
        assert result.finish_times[1][0] == pytest.approx(6.0)
        assert result.total_time == pytest.approx(8.0)

    def test_in_order_constraint(self):
        # a fast item cannot overtake a slow predecessor in a stage
        result = run_pipeline([[5.0, 1.0], [0.1, 1.0]])
        assert result.finish_times[1][0] >= result.finish_times[0][0]


class TestValidation:
    def test_empty(self):
        assert run_pipeline([]).total_time == 0.0

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            run_pipeline([[1.0, 2.0], [1.0]])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            run_pipeline([[1.0, -2.0]])

    def test_name_length_mismatch(self):
        with pytest.raises(ValueError):
            run_pipeline([[1.0, 2.0]], ["only-one"])
