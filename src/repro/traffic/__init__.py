"""Open-loop traffic generation for the request spine.

Everything before this package was *closed-loop*: a fixed op list
driven at a bounded queue depth, so offered load implicitly tracked
service capacity and the system could never be pushed past saturation.
This package generates **arrival-driven** traffic — requests carry
wall-of-the-model timestamps drawn from seeded stochastic processes,
and the injector enqueues them into the
:class:`~repro.runtime.scheduler.RequestScheduler` at those times
whether or not earlier requests have completed. Past the saturating
rate, latencies grow without bound and admission control starts
shedding: exactly the open-loop behaviour a load line needs
(and the behaviour coordinated-omission-prone closed loops hide).

Pieces:

* :mod:`~repro.traffic.arrivals` — deterministic arrival processes
  (Poisson, bursty MMPP, diurnal modulation), all seeded and
  byte-reproducible;
* :mod:`~repro.traffic.popularity` — key-popularity models (zipfian
  hot sets over millions of logical users, uniform);
* :mod:`~repro.traffic.injector` — tenant streams, token-bucket
  admission, bounded admission queues, typed shed accounting and the
  open-loop injector itself.
"""

from repro.traffic.arrivals import (ArrivalProcess, DiurnalProcess,
                                    MmppProcess, PoissonProcess)
from repro.traffic.injector import (OpenLoopInjector, ShedRecord,
                                    StreamTrafficReport, TokenBucket,
                                    TrafficRunResult, TrafficStream,
                                    SHED_QUEUE_FULL, SHED_THROTTLED)
from repro.traffic.popularity import (PopularityModel, UniformPopularity,
                                      ZipfPopularity)

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "MmppProcess",
    "DiurnalProcess",
    "PopularityModel",
    "ZipfPopularity",
    "UniformPopularity",
    "TokenBucket",
    "TrafficStream",
    "OpenLoopInjector",
    "ShedRecord",
    "StreamTrafficReport",
    "TrafficRunResult",
    "SHED_QUEUE_FULL",
    "SHED_THROTTLED",
]
