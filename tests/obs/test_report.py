"""The ``repro report`` pipeline: golden determinism across runs, the
attribution acceptance invariant, and the CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.report import (analyze_trace, build_report, format_report,
                              report_json, run_system_report)
from repro.runtime.trace import TraceRecorder
from repro.workloads.gemm import GemmWorkload

ALL = ("baseline", "software-nds", "hardware-nds", "software-oracle")


def _small_gemm():
    return GemmWorkload(n=256, tile=64, max_tiles=12)


@pytest.fixture(scope="module")
def report():
    return build_report(workload=_small_gemm(), systems=ALL,
                        queue_depth=4, windows=8)


class TestGoldenDeterminism:
    def test_two_identical_runs_are_byte_identical(self, report):
        """ISSUE acceptance: two identical runs produce byte-identical
        JSON reports (fresh systems each run, no wall-clock leakage)."""
        again = build_report(workload=_small_gemm(), systems=ALL,
                             queue_depth=4, windows=8)
        assert report_json(report) == report_json(again)

    def test_metrics_snapshot_is_fixed(self, report):
        """Golden sanity anchors on the small GEMM: every system read
        the same 12 tiles, so scheduler counters agree."""
        for name in ALL:
            snap = report["systems"][name]["metrics"]
            assert snap["counters"]["sched.ops"] == 12, name
            assert snap["histograms"]["sched.latency"]["count"] == 12
        # the baseline fetches whole rows per tile: strictly more pages
        base = report["systems"]["baseline"]["metrics"]["counters"]
        nds = report["systems"]["software-nds"]["metrics"]["counters"]
        assert base["flash.pages_read"] > nds["flash.pages_read"]


class TestAttributionAcceptance:
    def test_partition_invariant_everywhere(self, report):
        for name in ALL:
            attribution = report["systems"][name]["attribution"]
            assert attribution["max_partition_error"] < 1e-9, name
            for op in attribution["ops"]:
                assert sum(op["by_layer"].values()) == pytest.approx(
                    op["service_time"], abs=1e-9)

    def test_layer_shares_sum_to_one(self, report):
        for name in ALL:
            layers = report["systems"][name]["attribution"]["layers"]
            assert sum(e["share"] for e in layers.values()) == \
                pytest.approx(1.0)

    def test_queue_wait_split_present(self, report):
        for name in ALL:
            streams = report["systems"][name]["streams"]
            entry = streams["GEMM"]
            assert entry["mean_queue_wait"] >= 0.0
            assert entry["mean_service"] > 0.0
            # wait + service == latency per op, so means add up too
            assert entry["mean_queue_wait"] + entry["mean_service"] == \
                pytest.approx(entry["mean_latency"])


class TestRendering:
    def test_text_report_mentions_layers_and_systems(self, report):
        text = format_report(report)
        assert "where time goes" in text
        assert "baseline" in text and "hardware-nds" in text
        assert "utilization" in text

    def test_json_is_valid_and_sorted(self, report):
        payload = report_json(report)
        parsed = json.loads(payload)
        assert parsed == json.loads(report_json(parsed))
        assert payload.index('"queue_depth"') < payload.index('"systems"')


class TestTraceMode:
    def test_analyze_saved_trace(self, tmp_path):
        from repro.nvm.profiles import TINY_TEST
        from repro.systems import HardwareNdsSystem
        system = HardwareNdsSystem(TINY_TEST, store_data=False)
        system.ingest("d", (64, 64), 4)
        system.reset_time()
        trace = TraceRecorder()
        system.set_trace(trace)
        system.read_tile("d", (16, 16), (32, 32))
        path = trace.save(tmp_path / "t.json")

        offline = analyze_trace(TraceRecorder.load(path), windows=4)
        live = analyze_trace(trace, windows=4)
        assert offline["attribution"]["totals"]["ops"] == 1
        assert offline["attribution"]["totals"]["service_time"] == \
            pytest.approx(live["attribution"]["totals"]["service_time"])
        assert offline["attribution"]["max_partition_error"] < 1e-9


class TestErrors:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            run_system_report("warp-drive", _small_gemm())


class TestCli:
    def test_report_command_writes_artifacts(self, tmp_path, capsys):
        code = main(["report", "--systems", "hardware-nds",
                     "--size", "256", "--tile", "64", "--tiles", "6",
                     "--queue-depth", "2", "--windows", "4",
                     "--json", str(tmp_path / "r.json"),
                     "--csv-dir", str(tmp_path / "csv"),
                     "--prom", str(tmp_path / "m.prom")])
        assert code == 0
        payload = json.loads((tmp_path / "r.json").read_text())
        assert "hardware-nds" in payload["systems"]
        assert "prometheus" not in payload["systems"]["hardware-nds"]
        csvs = list((tmp_path / "csv").glob("*.csv"))
        assert csvs and "resource,window" in csvs[0].read_text()
        prom = (tmp_path / "m.prom").read_text()
        assert "repro_hardware_nds_sched_latency_count" in prom

    def test_report_trace_mode(self, tmp_path, capsys):
        from repro.nvm.profiles import TINY_TEST
        from repro.systems import SoftwareNdsSystem
        system = SoftwareNdsSystem(TINY_TEST, store_data=False)
        system.ingest("d", (64, 64), 4)
        system.reset_time()
        trace = TraceRecorder()
        system.set_trace(trace)
        system.read_tile("d", (0, 0), (32, 32))
        path = trace.save(tmp_path / "t.json")
        assert main(["report", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "where time goes" in out
