"""The live monitor: windowed time-series over a deterministic run.

PR 4's metrics registry and critical path answer "where did the time go
*in total*"; the :class:`Monitor` answers "what was happening at *t*,
and why". It divides the run horizon into fixed-width windows (the
shared :data:`~repro.obs.utilization.DEFAULT_WINDOWS` default) and
streams events into per-window accumulators as the simulation executes:

* completed ops from the :class:`~repro.runtime.scheduler.
  RequestScheduler` (windowed queue-wait / service histograms,
  DRAM-tier counter deltas and dirty-set size);
* offered / shed arrivals, admission-queue depth and **logical request
  completions** from the :class:`~repro.traffic.injector.
  OpenLoopInjector` — the request (which may fan out into several
  TileOps) is the unit of goodput, latency and SLO accounting, matching
  the load-line's per-request tails. In scheduler-only runs (no
  injector) each op counts as its own request.

Everything heavier is computed *post-hoc* in :meth:`Monitor.report`
from the trace: windowed critical-path layer attribution (clipping each
op's exact-sum segments into windows, so each window's layer seconds sum
exactly to its attributed service time), per-device busy seconds and GC
share, SLO burn-rate evaluation with deterministic
:class:`~repro.obs.slo.AlertEvent` s (also written into the trace as
instant marks), and the automated bottleneck diagnosis from
:mod:`repro.obs.diagnose`.

The monitor is an *observer*: every hook is an append-only note that
returns nothing into the timing path. With no monitor attached the
hooks are never called; with one attached every timed float is
bit-identical to the unmonitored run — the same discipline as the trace
recorder and metrics registry.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.critical_path import critical_path, span_device
from repro.obs.metrics import Histogram
from repro.obs.slo import SloPolicy
from repro.obs.utilization import DEFAULT_WINDOWS

__all__ = ["Monitor", "monitor_json", "monitor_csv",
           "monitor_prometheus", "format_monitor"]

#: cache counter deltas the monitor tracks per window
_CACHE_KEYS = ("hits", "misses", "writebacks")


class _WindowStats:
    """Accumulators for one monitor window."""

    __slots__ = ("completed", "bad_latency", "offered", "shed",
                 "shed_throttled", "shed_queue_full", "latency",
                 "queue_wait", "service", "backlog_sum", "backlog_count",
                 "backlog_max", "cache", "dirty_bytes", "streams")

    def __init__(self) -> None:
        self.completed = 0
        #: completed ops over the SLO latency bound (0 with no policy)
        self.bad_latency = 0
        self.offered = 0
        self.shed = 0
        self.shed_throttled = 0
        self.shed_queue_full = 0
        self.latency = Histogram("latency")
        self.queue_wait = Histogram("queue_wait")
        self.service = Histogram("service")
        self.backlog_sum = 0
        self.backlog_count = 0
        self.backlog_max = 0
        self.cache: Dict[str, int] = {}
        #: last dirty-set size sampled in this window (-1 = no sample)
        self.dirty_bytes = -1
        #: per-stream [completed, latency_sum, bad, offered, shed]
        self.streams: Dict[str, List[float]] = {}

    def stream_row(self, stream: str) -> List[float]:
        row = self.streams.get(stream)
        if row is None:
            row = self.streams[stream] = [0, 0.0, 0, 0, 0]
        return row


class Monitor:
    """Windowed streaming observer for one deterministic run.

    Attach by passing ``monitor=`` to the
    :class:`~repro.traffic.injector.OpenLoopInjector` (which wires the
    scheduler hook too), or call :meth:`attach` and set
    ``scheduler.monitor`` yourself for scheduler-only runs. After the
    run, :meth:`report` renders the JSON-ready payload; pass the run's
    trace to add windowed attribution, per-device series, GC share,
    and — with an :class:`~repro.obs.slo.SloPolicy` — burn-rate alerts
    and diagnoses.
    """

    def __init__(self, windows: int = DEFAULT_WINDOWS,
                 slo: Optional[SloPolicy] = None,
                 horizon: Optional[float] = None) -> None:
        if windows < 1:
            raise ValueError("monitor needs at least one window")
        self.windows = windows
        self.slo = slo
        self.horizon = horizon
        self.system = None
        #: True once an injector is feeding :meth:`note_request`; op
        #: completions then stop double-counting as requests
        self.request_driven = False
        self._stats: Optional[List[_WindowStats]] = None
        # hot-path caches: window width and the system's dirty-byte
        # probe are resolved once so per-event hooks stay cheap
        self._width: Optional[float] = None
        self._dirty_probe = None
        if horizon is not None:
            self._init_windows(horizon)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _init_windows(self, horizon: float) -> None:
        if horizon <= 0:
            raise ValueError("monitor horizon must be > 0 seconds")
        self.horizon = float(horizon)
        self._width = self.horizon / self.windows
        self._stats = [_WindowStats() for _ in range(self.windows)]

    def attach(self, system, horizon: Optional[float] = None,
               request_driven: bool = False) -> "Monitor":
        """Bind to ``system`` (for cache dirty-byte sampling) and fix
        the horizon if not already set. Idempotent; the injector calls
        this at the start of every run with ``request_driven=True`` so
        completions are counted per logical request, not per op."""
        self.system = system
        probe = getattr(system, "cache_dirty_bytes", None)
        # a system with no DRAM tier reports None forever — disable the
        # per-op probe outright rather than re-asking every completion
        self._dirty_probe = probe if (probe is not None
                                      and probe() is not None) else None
        if request_driven:
            self.request_driven = True
        if self._stats is None:
            if horizon is None:
                raise ValueError("monitor needs a horizon (constructor "
                                 "or attach)")
            self._init_windows(horizon)
        return self

    @property
    def window_seconds(self) -> float:
        if self.horizon is None:
            raise ValueError("monitor horizon not set")
        return self.horizon / self.windows

    def window_of(self, time: float) -> int:
        """Window index containing model time ``time``; events past the
        horizon (open-loop backlog tails) land in the last window."""
        width = self._width
        if width is None:
            width = self.window_seconds  # raises if horizon unset
        if time <= 0:
            return 0
        return min(int(time / width), self.windows - 1)

    def _window_ending_at(self, boundary: float) -> int:
        """Window whose right edge is ``boundary`` (replay of windowed
        marks: counts at a boundary belong to the window that ended)."""
        width = self.window_seconds
        index = int(round(boundary / width)) - 1
        return max(0, min(index, self.windows - 1))

    def _require(self) -> List[_WindowStats]:
        if self._stats is None:
            raise ValueError("monitor not attached (no horizon)")
        return self._stats

    # ------------------------------------------------------------------
    # streaming hooks (observation only — never feed back into timing)
    # ------------------------------------------------------------------
    def _count_request(self, stream: str, arrival: float,
                       finish: float, violated: bool = False) -> None:
        stats_list = self._require()
        index = (0 if finish <= 0
                 else min(int(finish / self._width), self.windows - 1))
        stats = stats_list[index]
        latency = finish - arrival
        stats.completed += 1
        stats.latency.observe(latency)
        bad = (latency > self.slo.latency_target
               if self.slo is not None else bool(violated))
        if bad:
            stats.bad_latency += 1
        row = stats.stream_row(stream)
        row[0] += 1
        row[1] += latency
        row[2] += 1 if bad else 0

    def note_request(self, stream: str, arrival: float,
                     finish: float) -> None:
        """One completed logical request (called by the injector after
        all of the request's ops finished)."""
        self._count_request(stream, arrival, finish)

    def note_op(self, op, violated: bool = False,
                cache_before: Optional[dict] = None,
                cache_after: Optional[dict] = None) -> None:
        """One completed :class:`~repro.runtime.tileop.TileOp` (called
        by the scheduler after accounting). Feeds the op-granular
        queue-wait / service histograms and cache sampling; in a
        scheduler-only run (no injector) it also counts the op as a
        completed request."""
        stats_list = self._require()
        finish = op.complete_time
        index = (0 if finish <= 0
                 else min(int(finish / self._width), self.windows - 1))
        stats = stats_list[index]
        stats.queue_wait.observe(op.issue_time - op.submit_time)
        stats.service.observe(finish - op.issue_time)
        if not self.request_driven:
            self._count_request(op.stream, op.submit_time, finish,
                                violated=violated)
        if cache_before is not None and cache_after is not None:
            for key in _CACHE_KEYS:
                delta = cache_after.get(key, 0) - cache_before.get(key, 0)
                if delta:
                    stats.cache[key] = stats.cache.get(key, 0) + delta
        if self._dirty_probe is not None:
            dirty = self._dirty_probe()
            if dirty is not None:
                stats.dirty_bytes = dirty

    def note_offered(self, stream: str, time: float) -> None:
        stats_list = self._require()
        index = (0 if time <= 0
                 else min(int(time / self._width), self.windows - 1))
        stats = stats_list[index]
        stats.offered += 1
        stats.stream_row(stream)[3] += 1

    def note_shed(self, stream: str, time: float, reason: str) -> None:
        stats = self._require()[self.window_of(time)]
        stats.shed += 1
        if reason == "throttled":
            stats.shed_throttled += 1
        else:
            stats.shed_queue_full += 1
        stats.stream_row(stream)[4] += 1

    def note_backlog(self, stream: str, time: float, depth: int) -> None:
        stats_list = self._require()
        index = (0 if time <= 0
                 else min(int(time / self._width), self.windows - 1))
        stats = stats_list[index]
        stats.backlog_sum += depth
        stats.backlog_count += 1
        stats.backlog_max = max(stats.backlog_max, depth)

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace, windows: int = DEFAULT_WINDOWS,
                   slo: Optional[SloPolicy] = None,
                   horizon: Optional[float] = None) -> "Monitor":
        """Rebuild a monitor from a saved trace (``--trace`` replay).

        Op events are exact (every op span carries its ``queue_wait``
        and ``submit``); ops sharing a (stream, submit time) pair are
        regrouped into the logical request they came from, so replay
        counts requests like the live injector does. Offered/shed
        counts come from the injector's windowed ``offered_load``
        marks, attributed to the window each mark closed — per-arrival
        resolution is not recoverable from a trace, so replay offered
        series are as coarse as the run's ``marks`` setting.
        """
        if horizon is None:
            horizon = max((s.end for s in trace.spans), default=0.0)
        monitor = cls(windows=windows, slo=slo, horizon=horizon)
        monitor.request_driven = True
        # (stream, submit) -> [arrival, finish]; ops without a submit
        # arg (pre-monitor traces) fall back to one request per op
        requests: Dict[tuple, List[float]] = {}
        fallback = 0
        for span in trace.spans:
            if span.instant or span.resource != "ops":
                continue
            args = dict(span.args)
            queue_wait = float(args.get("queue_wait", 0.0))
            stats = monitor._require()[monitor.window_of(span.end)]
            stats.queue_wait.observe(queue_wait)
            stats.service.observe(span.end - span.start)
            submit = args.get("submit")
            if submit is None:
                key = (span.stream, fallback)
                fallback += 1
                submit = span.start - queue_wait
            else:
                key = (span.stream, float(submit))
            entry = requests.setdefault(key, [float(submit), 0.0])
            entry[1] = max(entry[1], span.end)
        for (stream, _), (arrival, finish) in requests.items():
            monitor._count_request(stream, arrival, finish)
        for mark in trace.instants():
            if mark.name != "offered_load":
                continue
            args = dict(mark.args)
            stats = monitor._require()[
                monitor._window_ending_at(mark.start)]
            offered = int(args.get("offered", 0))
            shed = int(args.get("shed", 0))
            stats.offered += offered
            stats.shed += shed
            row = stats.stream_row(mark.stream)
            row[3] += offered
            row[4] += shed
        for sample in trace.counters("dirty_bytes"):
            args = dict(sample.args)
            stats = monitor._require()[
                monitor._window_ending_at(sample.start)]
            stats.dirty_bytes = int(args.get("dirty_bytes", 0))
        return monitor

    # ------------------------------------------------------------------
    # post-hoc analysis
    # ------------------------------------------------------------------
    def _clip(self, lo: float, hi: float, into: List[Dict[str, float]],
              key: str) -> None:
        """Add interval ``[lo, hi)`` into per-window buckets under
        ``key`` (overflow past the horizon lands in the last window)."""
        if hi <= lo:
            return
        width = self.window_seconds
        first = self.window_of(lo)
        last = self.window_of(hi)
        for index in range(first, last + 1):
            win_lo = index * width
            win_hi = win_lo + width if index < self.windows - 1 else hi
            overlap = min(hi, win_hi) - max(lo, win_lo)
            if overlap > 0:
                row = into[index]
                row[key] = row.get(key, 0.0) + overlap

    def windowed_attribution(self, trace) -> Dict[str, object]:
        """Critical-path layer seconds per window.

        Each op's exact-sum segments (see
        :func:`~repro.obs.critical_path.attribute_op`) are clipped at
        window boundaries; a window's ``attributed_seconds`` is defined
        as the sum of its layer values, so the PR-4 partition
        discipline carries over to every window exactly.
        """
        analysis = critical_path(trace)
        rows: List[Dict[str, float]] = [{} for _ in range(self.windows)]
        for op in analysis.ops:
            for seg_lo, seg_hi, layer in op.segments:
                self._clip(seg_lo, seg_hi, rows, layer)
        return {
            "layers": [dict(sorted(row.items())) for row in rows],
            "attributed_seconds": [sum(row[key] for key in sorted(row))
                                   for row in rows],
        }

    def device_series(self, trace) -> Dict[str, object]:
        """Per-device busy seconds and GC seconds per window.

        Busy seconds sum raw component-span durations per device (the
        work inventory, like
        :func:`~repro.obs.critical_path.device_layer_totals`); GC
        seconds clip each collection's ``[start, start+duration)`` from
        its instant mark. Spans with no ``dN:`` prefix land under
        ``"host"`` — on a single-device run that is the device.
        """
        busy: Dict[str, List[Dict[str, float]]] = {}
        gc: Dict[str, List[Dict[str, float]]] = {}

        def rows_for(table, key):
            rows = table.get(key)
            if rows is None:
                rows = table[key] = [{} for _ in range(self.windows)]
            return rows

        for span in trace.spans:
            device = span_device(span.resource)
            key = "host" if device is None else f"d{device}"
            if span.counter:
                continue
            if span.instant:
                if span.name != "gc":
                    continue
                args = dict(span.args)
                start = float(args.get("start", span.start))
                duration = float(args.get("duration", 0.0))
                self._clip(start, start + duration, rows_for(gc, key), "gc")
                continue
            if span.resource == "ops":
                continue
            self._clip(span.start, span.end, rows_for(busy, key), "busy")
        return {
            "busy_seconds": {
                key: [row.get("busy", 0.0) for row in rows]
                for key, rows in sorted(busy.items())},
            "gc_seconds": {
                key: [row.get("gc", 0.0) for row in rows]
                for key, rows in sorted(gc.items())},
        }

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def series(self) -> Dict[str, object]:
        """The streamed per-window series (JSON-ready)."""
        stats = self._require()
        width = self.window_seconds

        def hist_series(pick):
            return {
                "p50": [pick(s).quantile(0.50) for s in stats],
                "p99": [pick(s).quantile(0.99) for s in stats],
                "mean": [pick(s).mean for s in stats],
            }

        streams = sorted({name for s in stats for name in s.streams})
        per_stream: Dict[str, object] = {}
        for name in streams:
            rows = [s.streams.get(name, [0, 0.0, 0, 0, 0]) for s in stats]
            per_stream[name] = {
                "completed": [int(r[0]) for r in rows],
                "mean_latency": [r[1] / r[0] if r[0] else 0.0
                                 for r in rows],
                "bad": [int(r[2]) for r in rows],
                "offered": [int(r[3]) for r in rows],
                "shed": [int(r[4]) for r in rows],
            }
        return {
            "windows": self.windows,
            "window_seconds": width,
            "horizon": self.horizon,
            "completed": [s.completed for s in stats],
            "offered": [s.offered for s in stats],
            "shed": [s.shed for s in stats],
            "shed_throttled": [s.shed_throttled for s in stats],
            "shed_queue_full": [s.shed_queue_full for s in stats],
            "goodput_rps": [s.completed / width for s in stats],
            "offered_rps": [s.offered / width for s in stats],
            "shed_rate": [s.shed / s.offered if s.offered else 0.0
                          for s in stats],
            "latency": hist_series(lambda s: s.latency),
            "queue_wait": hist_series(lambda s: s.queue_wait),
            "service": hist_series(lambda s: s.service),
            "backlog_mean": [s.backlog_sum / s.backlog_count
                             if s.backlog_count else 0.0 for s in stats],
            "backlog_max": [s.backlog_max for s in stats],
            "cache": {
                key: [s.cache.get(key, 0) for s in stats]
                for key in _CACHE_KEYS},
            "cache_hit_rate": [
                (s.cache.get("hits", 0)
                 / (s.cache.get("hits", 0) + s.cache.get("misses", 0)))
                if s.cache.get("hits", 0) + s.cache.get("misses", 0)
                else 0.0 for s in stats],
            "dirty_bytes": [s.dirty_bytes for s in stats],
            "streams": per_stream,
        }

    def slo_section(self) -> Optional[Dict[str, object]]:
        """Burn-rate evaluation of the streamed windows (None with no
        policy attached). Bad = SLO-slow completions + sheds; total =
        completions + sheds."""
        if self.slo is None:
            return None
        stats = self._require()
        bad = [s.bad_latency + s.shed for s in stats]
        total = [s.completed + s.shed for s in stats]
        return self.slo.evaluate(bad, total, self.window_seconds)

    def report(self, trace=None) -> Dict[str, object]:
        """The full monitor payload: streamed series, SLO evaluation
        with alerts, and — when the run's trace is supplied — windowed
        attribution, per-device series, and per-alert diagnoses.
        Alerts are also written into the trace as instant marks."""
        payload: Dict[str, object] = {"series": self.series()}
        slo = self.slo_section()
        if slo is not None:
            payload["slo"] = slo
            payload["policy"] = self.slo.to_dict()
        if trace is not None:
            payload["attribution"] = self.windowed_attribution(trace)
            payload["devices"] = self.device_series(trace)
            if slo is not None:
                for alert in slo["alerts"]:
                    trace.instant(
                        "alerts", alert["time"], name="slo_alert",
                        stream="main", op_id=-1, rule=alert["rule"],
                        window=alert["window"],
                        burn_long=alert["burn_long"],
                        burn_short=alert["burn_short"])
        if slo is not None and slo["alerts"]:
            from repro.obs.diagnose import diagnose_report
            payload["diagnoses"] = diagnose_report(payload)
        return payload


# ----------------------------------------------------------------------
# renderings
# ----------------------------------------------------------------------
def monitor_json(payload: Dict[str, object]) -> str:
    """Byte-stable JSON rendering (sorted keys, fixed separators)."""
    return json.dumps(payload, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def monitor_csv(payload: Dict[str, object]) -> str:
    """Tidy CSV: one row per (window, series) cell."""
    series = payload["series"]
    width = series["window_seconds"]
    lines = ["window,window_start_s,series,value"]

    def emit(name: str, values) -> None:
        for index, value in enumerate(values):
            lines.append(f"{index},{index * width:.9g},{name},{value:.9g}")

    for key in ("completed", "offered", "shed", "goodput_rps",
                "offered_rps", "shed_rate", "backlog_mean", "backlog_max",
                "cache_hit_rate", "dirty_bytes"):
        emit(key, series[key])
    for key in ("latency", "queue_wait", "service"):
        for stat in ("p50", "p99", "mean"):
            emit(f"{key}_{stat}", series[key][stat])
    attribution = payload.get("attribution")
    if attribution:
        emit("attributed_seconds", attribution["attributed_seconds"])
    slo = payload.get("slo")
    if slo:
        emit("burn", slo["burn"])
    return "\n".join(lines) + "\n"


def monitor_prometheus(payload: Dict[str, object],
                       prefix: str = "repro_monitor") -> str:
    """Prometheus exposition with explicit timestamps: one sample per
    window per series, stamped at the window's right edge in model-time
    milliseconds — load it into any TSDB and the run replays as if it
    had been scraped live."""
    series = payload["series"]
    width = series["window_seconds"]
    lines: List[str] = []

    def emit(name: str, values, kind: str = "gauge") -> None:
        metric = f"{prefix}_{name}"
        lines.append(f"# TYPE {metric} {kind}")
        for index, value in enumerate(values):
            stamp = int(round((index + 1) * width * 1000))
            lines.append(f"{metric} {float(value)!r} {stamp}")

    for key in ("goodput_rps", "offered_rps", "shed_rate",
                "backlog_mean", "cache_hit_rate", "dirty_bytes"):
        emit(key, series[key])
    for key in ("latency", "queue_wait", "service"):
        for stat in ("p50", "p99"):
            emit(f"{key}_{stat}_seconds", series[key][stat])
    slo = payload.get("slo")
    if slo:
        emit("slo_burn", slo["burn"])
    return "\n".join(lines) + ("\n" if lines else "")


def _sparkline(values, lo: float = 0.0,
               hi: Optional[float] = None) -> str:
    marks = " .:-=+*#%@"
    if hi is None:
        hi = max(values) if values else 0.0
    if hi <= lo:
        return " " * len(values)
    out = []
    for value in values:
        frac = (value - lo) / (hi - lo)
        out.append(marks[max(0, min(len(marks) - 1,
                                    int(frac * (len(marks) - 1) + 0.5)))])
    return "".join(out)


def format_monitor(payload: Dict[str, object]) -> str:
    """Human-readable timeline: one sparkline row per series, the SLO
    burn row, alert lines, and each alert's diagnosis summary."""
    series = payload["series"]
    width = series["window_seconds"]
    lines = [f"monitor: {series['windows']} windows x "
             f"{width * 1e3:.3g} ms (horizon {series['horizon']:.3g} s)"]

    def row(label: str, values, fmt=lambda v: f"{v:.3g}") -> None:
        peak = max(values) if values else 0.0
        lines.append(f"  {label:>14} |{_sparkline(values)}| "
                     f"peak {fmt(peak)}")

    row("offered rps", series["offered_rps"])
    row("goodput rps", series["goodput_rps"])
    row("shed rate", series["shed_rate"], lambda v: f"{v:.1%}")
    row("latency p99", series["latency"]["p99"],
        lambda v: f"{v * 1e3:.3g} ms")
    row("queue wait p99", series["queue_wait"]["p99"],
        lambda v: f"{v * 1e3:.3g} ms")
    row("backlog", series["backlog_mean"])
    if any(v >= 0 for v in series["dirty_bytes"]):
        row("dirty bytes", [max(v, 0) for v in series["dirty_bytes"]])
    if any(series["cache_hit_rate"]):
        row("cache hits", series["cache_hit_rate"],
            lambda v: f"{v:.1%}")
    devices = payload.get("devices")
    if devices:
        for name, values in devices["busy_seconds"].items():
            row(f"{name} busy", values, lambda v: f"{v * 1e3:.3g} ms")
        for name, values in devices["gc_seconds"].items():
            if any(values):
                row(f"{name} gc", values, lambda v: f"{v * 1e3:.3g} ms")
    slo = payload.get("slo")
    if slo:
        row("slo burn", slo["burn"], lambda v: f"{v:.3g}x")
        alerts = slo["alerts"]
        lines.append(f"  alerts: {len(alerts)}")
        diagnoses = {d["alert"]["window"]: d
                     for d in payload.get("diagnoses", [])}
        for alert in alerts:
            lines.append(
                f"    [{alert['rule']}] window {alert['window']} at "
                f"t={alert['time']:.3g}s: burn {alert['burn_long']:.1f}x "
                f"(threshold {alert['threshold']:.1f}x)")
            diagnosis = diagnoses.get(alert["window"])
            if diagnosis is not None:
                lines.append(f"      {diagnosis['summary']}")
    return "\n".join(lines) + "\n"
