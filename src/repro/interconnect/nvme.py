"""NVMe command-level model, including the NDS command-set extension.

The paper extends NVMe with multi-dimensional read/write commands plus
``open_space`` / ``close_space`` / ``delete_space`` (§5.3.1). An extended
command is flagged by a reserved bit in the first command word and
carries a pointer to a page holding coordinates/sub-dimensionality —
up to 32 dimensions of 2**64 elements. This module models command
encoding limits and per-command costs; actual transfers go through
:class:`~repro.interconnect.link.Link`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence, Tuple

__all__ = ["NvmeOpcode", "NvmeCommand", "CommandLimits", "NVME_LIMITS",
           "saturation_curve"]

#: NVMe extension limits from §5.3.1: one 4 KB page of coordinate payload
#: supports up to 32 dimensions, 2**64 elements each.
MAX_DIMENSIONS = 32
MAX_DIM_SIZE = 2**64


class NvmeOpcode(Enum):
    """Conventional + NDS-extended opcodes."""

    READ = "read"
    WRITE = "write"
    TRIM = "trim"
    ND_READ = "nd_read"
    ND_WRITE = "nd_write"
    OPEN_SPACE = "open_space"
    CLOSE_SPACE = "close_space"
    DELETE_SPACE = "delete_space"

    @property
    def is_extended(self) -> bool:
        return self not in (NvmeOpcode.READ, NvmeOpcode.WRITE, NvmeOpcode.TRIM)


@dataclass(frozen=True)
class CommandLimits:
    """Encoding limits for extended commands."""

    max_dimensions: int = MAX_DIMENSIONS
    max_dim_size: int = MAX_DIM_SIZE

    def validate_dimensionality(self, dims: Sequence[int]) -> None:
        if len(dims) == 0:
            raise ValueError("dimensionality must have at least one dimension")
        if len(dims) > self.max_dimensions:
            raise ValueError(
                f"{len(dims)} dimensions exceed the NVMe extension limit "
                f"of {self.max_dimensions}")
        for size in dims:
            if not (1 <= size <= self.max_dim_size):
                raise ValueError(f"dimension size {size} out of range")


NVME_LIMITS = CommandLimits()


@dataclass(frozen=True)
class NvmeCommand:
    """One host→device command (payload described, not carried)."""

    opcode: NvmeOpcode
    payload_bytes: int = 0
    coordinate: Tuple[int, ...] = ()
    sub_dimensionality: Tuple[int, ...] = ()
    space_id: int = 0

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if self.opcode in (NvmeOpcode.ND_READ, NvmeOpcode.ND_WRITE):
            NVME_LIMITS.validate_dimensionality(self.sub_dimensionality)
            if len(self.coordinate) != len(self.sub_dimensionality):
                raise ValueError(
                    "coordinate and sub-dimensionality ranks differ")


def saturation_curve(link_bandwidth: float, command_overhead: float,
                     request_sizes: Sequence[int]) -> Tuple[Tuple[int, float], ...]:
    """Effective bandwidth vs request size — the Fig. 3 NVMe-oF series.

    Returns ``((size, bytes_per_second), ...)``.
    """
    points = []
    for size in request_sizes:
        duration = command_overhead + size / link_bandwidth
        points.append((size, size / duration))
    return tuple(points)
