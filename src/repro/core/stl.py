"""The Space Translation Layer (§4).

The STL is the core of NDS. It owns the spaces, the per-space B-tree
indexes, the allocator and the garbage collector, and it executes
multi-dimensional reads/writes against the flash array:

* planning — translate a request to building-block accesses (Eq. 5);
* allocation — §4.2 placement rules, GC when a plane runs low;
* execution — timed page reads/programs on the flash array;
* assembly — byte-accurate scatter/gather between request buffers and
  building blocks (the data the paper moves through "STL memory
  space", §4.4).

Data buffers are numpy ``uint8`` arrays of shape ``(*extents,
element_size)`` — element-granular with an explicit byte axis, so the
STL stays agnostic of application dtypes (the API layer converts).

Timing attribution: the STL charges *flash* time to the flash array's
timelines and reports structural counts (blocks, pages, B-tree node
visits, units allocated). Where the translation/assembly *CPU* cost is
paid — host cores for the software NDS, the controller pipeline for
hardware NDS — is the systems layer's decision (paper Fig. 7).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocator import NdsAllocator
from repro.core.btree import BlockEntry, BTreeIndex
from repro.core.errors import SpaceNotFoundError
from repro.core.gc import NdsGarbageCollector
from repro.core.sharding import ShardSpec
from repro.core.space import Space
from repro.core.translator import (BlockAccess, pages_for_region, translate,
                                   translate_region)
from repro.faults.errors import (DegradedReadError, ProgramFailError,
                                 UncorrectableError)
from repro.faults.parity import PARITY_POSITION, ParityStore, xor_fold
from repro.nvm.flash import EccError, FlashArray
from repro.sim.stats import StatSet

__all__ = ["SpaceTranslationLayer", "StlOpResult", "BlockOpResult"]


@dataclass
class BlockOpResult:
    """Timing/structure outcome of one building-block access."""

    access: BlockAccess
    issue_time: float
    completion_time: float
    pages: int
    nodes_visited: int
    units_allocated: int = 0
    rmw_reads: int = 0
    gc_time: float = 0.0


@dataclass
class StlOpResult:
    """Aggregate outcome of one STL read/write request."""

    start_time: float
    end_time: float
    blocks: List[BlockOpResult] = field(default_factory=list)
    data: Optional[np.ndarray] = None
    stats: StatSet = field(default_factory=StatSet)

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time

    @property
    def pages_touched(self) -> int:
        return sum(b.pages for b in self.blocks)

    @property
    def nodes_visited(self) -> int:
        return sum(b.nodes_visited for b in self.blocks)


class SpaceTranslationLayer:
    """Create spaces, translate coordinates, move data (§4)."""

    def __init__(self, flash: FlashArray, gc_threshold: float = 0.10,
                 seed: int = 0x5D5, compressor=None,
                 elide_zero_pages: bool = False,
                 gc_policy: str = "greedy",
                 parity: bool = False) -> None:
        self.flash = flash
        self.geometry = flash.geometry
        #: optional §5.3.4 building-block-granular compressor
        #: (:class:`repro.core.compression.BlockCompressor`); compressed
        #: blocks occupy fewer access units
        self.compressor = compressor
        #: §8's sparse optimization ("similar to page-zero optimization
        #: in VAX/VMS"): all-zero pages are never programmed — the leaf
        #: slot stays empty and reads synthesize zeros
        self.elide_zero_pages = elide_zero_pages
        if compressor is not None and not flash.store_data:
            raise ValueError(
                "block compression needs functional mode (store_data=True)")
        if elide_zero_pages and not flash.store_data:
            raise ValueError(
                "zero-page elision needs functional mode (store_data=True)")
        if parity and compressor is not None:
            raise ValueError(
                "parity groups and block compression are mutually exclusive")
        if parity and not flash.store_data:
            raise ValueError(
                "parity groups need functional mode (store_data=True)")
        self.allocator = NdsAllocator(flash.geometry, seed=seed)
        self.gc = NdsGarbageCollector(self.allocator, flash,
                                      self._resolve_entry,
                                      threshold=gc_threshold,
                                      policy=gc_policy)
        #: cross-channel XOR parity: one extra unit per building block,
        #: reconstructed reads on uncorrectable errors (None = off)
        self.parity: Optional[ParityStore] = ParityStore() if parity else None
        if parity:
            self.gc.parity_patcher = self._patch_parity
        self.spaces: Dict[int, Space] = {}
        self.indexes: Dict[int, BTreeIndex] = {}
        #: per-space shard (hard QoS isolation): space_id -> ShardSpec;
        #: allocation, GC relocation and parity never leave the shard
        self.shards: Dict[int, ShardSpec] = {}
        self._shard_planes: Dict[int, frozenset] = {}
        self._next_space_id = 1
        self.stats = StatSet()
        #: page-sized byte count of one block page slot
        self._page_size = flash.geometry.page_size
        #: batched page fan-out on the write path: with no injector
        #: attached, programs between GC events go to the flash array as
        #: one batch instead of one call per page. Issue order and
        #: times are identical, so timings stay bit-identical; set
        #: False to force per-page calls (A/B equivalence tests).
        self.batch_fanout = True
        #: epoch batch execution across block accesses: all block ops of
        #: one request issue at the same time, so consecutive same-kind
        #: page batches concatenate into single flash submissions —
        #: flushed at every GC epoch boundary (and before any RMW read),
        #: which keeps the reservation sequence, and therefore every
        #: timing, bit-identical to per-access calls. Accesses that
        #: need an RMW read or touch a compressed block drain the epoch
        #: and run the scalar path; fault injection, parity and
        #: compression disable epoch merging entirely. False forces the
        #: per-access path (A/B equivalence tests).
        self.batch_epochs = True

    # ------------------------------------------------------------------
    # space management (§5.1 space creation/management)
    # ------------------------------------------------------------------
    def create_space(self, dims: Sequence[int], element_size: int,
                     bb_override: Optional[Sequence[int]] = None,
                     use_3d_blocks: bool = False,
                     shard: Optional[ShardSpec] = None) -> Space:
        space = Space.create(self._next_space_id, dims, element_size,
                             self.geometry, bb_override=bb_override,
                             use_3d_blocks=use_3d_blocks)
        self._next_space_id += 1
        self.spaces[space.space_id] = space
        self.indexes[space.space_id] = BTreeIndex(space)
        shard = ShardSpec.normalize(shard)
        if shard is not None:
            planes = shard.planes(self.geometry)
            capacity = len(planes) * self.geometry.pages_per_bank \
                * self._page_size
            if space.total_bytes > capacity:
                raise ValueError(
                    f"space needs {space.total_bytes} B but the shard's "
                    f"footprint of {shard.footprint(self.geometry)} "
                    f"({len(planes)} planes) only provides {capacity} B; "
                    f"widen the shard or shrink the space")
            self.shards[space.space_id] = shard
            self._shard_planes[space.space_id] = planes
            self.stats.count("spaces_sharded")
        self.stats.count("spaces_created")
        return space

    def shard_of(self, space_id: int) -> Optional[ShardSpec]:
        """The shard a space is pinned to (None = whole array)."""
        return self.shards.get(space_id)

    def get_space(self, space_id: int) -> Space:
        space = self.spaces.get(space_id)
        if space is None or space.deleted:
            raise SpaceNotFoundError(space_id)
        return space

    def delete_space(self, space_id: int) -> int:
        """Invalidate all building blocks and drop the index
        (the ``delete_space`` command of §5.3.1). Returns the number of
        units released."""
        space = self.get_space(space_id)
        index = self.indexes[space_id]
        released = 0
        for entry in list(index.iter_entries()):
            for position in range(len(entry.pages)):
                ppa = entry.record_release(position)
                if ppa is not None:
                    self.allocator.invalidate(ppa)
                    self.gc.note_release(ppa)
                    released += 1
        if self.parity is not None:
            for coord, ppa in self.parity.iter_space(space_id):
                self.parity.pop(space_id, coord)
                self.allocator.invalidate(ppa)
                self.gc.note_release(ppa)
                released += 1
        space.deleted = True
        del self.indexes[space_id]
        self.shards.pop(space_id, None)
        self._shard_planes.pop(space_id, None)
        self.stats.count("spaces_deleted")
        return released

    def resize_space(self, space_id: int,
                     new_dims: Sequence[int]) -> Space:
        """Expand or shrink an existing space along its axes (§5.1:
        passing an existing identifier "triggers the STL to expand,
        shrink, or restructure the existing space").

        Growth keeps every building block in place — the grid simply
        extends. Shrinking releases the blocks that fall entirely
        outside the new bounds; blocks straddling the boundary are kept
        (their out-of-range elements become inaccessible slack). The
        rank and the element size are immutable; use views for
        rank-changing access.
        """
        space = self.get_space(space_id)
        new_dims = tuple(int(d) for d in new_dims)
        if len(new_dims) != space.rank:
            raise ValueError(
                f"resize cannot change rank ({space.rank} -> "
                f"{len(new_dims)}); open a view instead")
        old_index = self.indexes[space_id]
        resized = Space(space_id=space_id, dims=new_dims,
                        element_size=space.element_size, bb=space.bb,
                        pages_per_block=space.pages_per_block,
                        open_views=space.open_views)
        new_index = BTreeIndex(resized)
        released = 0
        for entry in old_index.iter_entries():
            inside = all(coord < grid for coord, grid
                         in zip(entry.coord, resized.grid))
            if inside:
                replacement = new_index.ensure(entry.coord).entry
                replacement.pages = entry.pages
                replacement.channel_use = entry.channel_use
                replacement.bank_use = entry.bank_use
                replacement.bank_channels = entry.bank_channels
                replacement.last_alloc = entry.last_alloc
                replacement.stored_bytes = entry.stored_bytes
                continue
            for position in range(len(entry.pages)):
                ppa = entry.record_release(position)
                if ppa is not None:
                    self.allocator.invalidate(ppa)
                    self.gc.note_release(ppa)
                    released += 1
            if self.parity is not None:
                parity_ppa = self.parity.pop(space_id, entry.coord)
                if parity_ppa is not None:
                    self.allocator.invalidate(parity_ppa)
                    self.gc.note_release(parity_ppa)
                    released += 1
        self.spaces[space_id] = resized
        self.indexes[space_id] = new_index
        self.stats.count("spaces_resized")
        self.stats.count("resize_units_released", released)
        return resized

    def lookup_structure_bytes(self) -> int:
        """DRAM footprint of all STL lookup structures (§7.3)."""
        return sum(index.memory_bytes() for index in self.indexes.values())

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, space_id: int, coordinate: Sequence[int],
             sub_dim: Sequence[int]) -> List[BlockAccess]:
        return translate(self.get_space(space_id), coordinate, sub_dim)

    def plan_region(self, space_id: int, origin: Sequence[int],
                    extents: Sequence[int]) -> List[BlockAccess]:
        return translate_region(self.get_space(space_id), origin, extents)

    def block_region_data(self, space_id: int,
                          access: BlockAccess) -> np.ndarray:
        """Region bytes of one block access as a fresh
        ``(*extent, element_size)`` uint8 array (zeros where unwritten).
        Pure data plane — charges no model time; the host cache tier
        uses it to materialize functional payloads for regions that
        were fetched timing-only into a user buffer."""
        space = self.get_space(space_id)
        out = np.zeros(access.extent() + (space.element_size,),
                       dtype=np.uint8)
        entry = self.indexes[space_id].lookup(access.block_coord).entry
        if entry is None:
            return out
        buffer = self._block_buffer(space, entry)
        view = buffer[:space.block_bytes].reshape(
            space.bb + (space.element_size,))
        slicer = tuple(slice(lo, hi) for lo, hi in access.block_slice)
        out[...] = view[slicer]
        return out

    # ------------------------------------------------------------------
    # block-granular execution (systems drive pacing through these)
    # ------------------------------------------------------------------
    def read_block(self, space_id: int, access: BlockAccess,
                   issue_time: float,
                   out: Optional[np.ndarray] = None) -> BlockOpResult:
        """Read one block access; scatter into ``out`` (request-shaped
        ``(*extents, element_size)`` uint8 array) when given."""
        space = self.get_space(space_id)
        self._sync_faults()
        index = self.indexes[space_id]
        lookup = index.lookup(access.block_coord)
        positions = pages_for_region(space, access.block_slice)
        completion = issue_time
        pages_read = 0
        if lookup.entry is not None:
            if lookup.entry.stored_bytes is not None:
                # compressed blocks are stored whole: any read touches
                # every (fewer) stored unit (§5.3.4)
                ppas = lookup.entry.allocated_pages()
                if ppas:
                    op = self.flash.read_pages(ppas, issue_time)
                    completion = op.end_time
                    pages_read = len(ppas)
            elif self.flash.faults is not None:
                # pages read one by one so a single uncorrectable unit
                # can be reconstructed without losing the batch (timing
                # is identical: all pages are issued at ``issue_time``)
                for position in positions:
                    ppa = lookup.entry.pages[position]
                    if ppa is None:
                        continue
                    try:
                        op = self.flash.read_pages([ppa], issue_time)
                        end = op.end_time
                    except UncorrectableError as err:
                        end = self._degraded_read(space_id, space,
                                                  access.block_coord,
                                                  lookup.entry, position, err)
                    completion = max(completion, end)
                    pages_read += 1
            else:
                ppas = [lookup.entry.pages[p] for p in positions
                        if lookup.entry.pages[p] is not None]
                if ppas:
                    op = self.flash.read_pages(ppas, issue_time)
                    completion = op.end_time
                    pages_read = len(ppas)
        if out is not None:
            self._scatter_block(space, access, lookup.entry, out)
        self.stats.count("stl_pages_read", pages_read)
        return BlockOpResult(access=access, issue_time=issue_time,
                             completion_time=completion, pages=pages_read,
                             nodes_visited=lookup.nodes_visited)

    def write_block(self, space_id: int, access: BlockAccess,
                    issue_time: float,
                    region: Optional[np.ndarray] = None) -> BlockOpResult:
        """Write one block access; ``region`` is the block-region-shaped
        ``(*extent, element_size)`` uint8 payload (None = timing only)."""
        space = self.get_space(space_id)
        self._sync_faults()
        index = self.indexes[space_id]
        lookup = index.ensure(access.block_coord)
        entry = lookup.entry
        if self.compressor is not None and region is not None:
            return self._write_block_compressed(space_id, space, lookup,
                                                access, issue_time, region)
        positions = pages_for_region(space, access.block_slice)
        page_bytes = self._page_size

        # Merge phase: materialize current block content for the touched
        # pages if the write covers them only partially (read-modify-write
        # on overwrite, new-unit programming per NAND rules).
        new_content: Optional[np.ndarray] = None
        rmw_reads = 0
        rmw_done = issue_time
        covers_block = all(
            lo == 0 and hi == extent
            for (lo, hi), extent in zip(access.block_slice, space.bb))
        if self.flash.store_data and region is not None:
            new_content = self._block_buffer(space, entry)
            existing = [entry.pages[p] for p in positions
                        if entry.pages[p] is not None]
            partial = not covers_block
            if existing and partial:
                op = self.flash.read_pages(existing, issue_time)
                rmw_done = op.end_time
                rmw_reads = len(existing)
            view = new_content[:space.block_bytes].reshape(
                space.bb + (space.element_size,))
            slicer = tuple(slice(lo, hi) for lo, hi in access.block_slice)
            view[slicer] = region
        elif not self.flash.store_data:
            existing = [entry.pages[p] for p in positions
                        if entry.pages[p] is not None]
            partial = not covers_block
            if existing and partial:
                op = self.flash.read_pages(existing, issue_time)
                rmw_done = op.end_time
                rmw_reads = len(existing)

        # Allocate + program each touched page. With no injector
        # attached, consecutive programs between GC events batch into
        # one flash call: every page still issues at ``rmw_done`` in
        # position order, so the timings are bit-identical.
        completion = rmw_done
        units = 0
        gc_time = 0.0
        batching = self.batch_fanout and self.flash.faults is None
        pending_ppas: List = []
        pending_data: Optional[List[np.ndarray]] = \
            [] if new_content is not None else None
        for position in positions:
            old = entry.pages[position]
            if old is not None:
                prefer = (old.channel, old.bank)
                entry.record_release(position)
                self.allocator.invalidate(old)
                self.gc.note_release(old)
            else:
                prefer = self.allocator.choose_target(
                    entry, allowed=self._shard_planes.get(space_id))
            if self.gc.needs_collection(*prefer):
                if pending_ppas:
                    op = self.flash.program_pages(pending_ppas, rmw_done,
                                                  data=pending_data)
                    for done in op.completions:
                        if done > completion:
                            completion = done
                    pending_ppas = []
                    pending_data = [] if new_content is not None else None
                gc_result = self.gc.collect(prefer[0], prefer[1], completion)
                gc_time += max(0.0, gc_result.end_time - completion)
                completion = max(completion, gc_result.end_time)
            payload = None
            if new_content is not None:
                start = position * page_bytes
                payload = [new_content[start:start + page_bytes]]
            if (self.elide_zero_pages and payload is not None
                    and old is None and not payload[0].any()):
                # sparse optimization (§8): never materialize an
                # all-zero page; the empty leaf slot reads back as zeros
                self.stats.count("stl_pages_elided")
                continue
            ppa = self.allocator.allocate(
                entry, position, prefer=prefer,
                allowed=self._shard_planes.get(space_id))
            self.gc.note_alloc(ppa, space_id, access.block_coord, position)
            if batching:
                pending_ppas.append(ppa)
                if pending_data is not None:
                    pending_data.append(payload[0])
                units += 1
                continue
            issue = rmw_done
            while True:
                try:
                    op = self.flash.program_pages([ppa], issue, data=payload)
                    break
                except ProgramFailError as err:
                    # grown bad block: undo the binding, retire the
                    # block, re-place the unit at a fresh append point
                    entry.record_release(position)
                    self.allocator.invalidate(ppa)
                    self.gc.note_release(ppa)
                    issue = self.gc.retire_block(ppa.channel, ppa.bank,
                                                 ppa.block, err.fail_time)
                    ppa = self.allocator.allocate(
                        entry, position, prefer=None,
                        allowed=self._shard_planes.get(space_id))
                    self.gc.note_alloc(ppa, space_id, access.block_coord,
                                       position)
            completion = max(completion, op.end_time)
            units += 1
        if pending_ppas:
            op = self.flash.program_pages(pending_ppas, rmw_done,
                                          data=pending_data)
            for done in op.completions:
                if done > completion:
                    completion = done
        if self.parity is not None:
            parity_end = self._update_parity(space_id, space,
                                             access.block_coord, entry,
                                             new_content, rmw_done)
            completion = max(completion, parity_end)
        self.stats.count("stl_pages_programmed", units)
        return BlockOpResult(access=access, issue_time=issue_time,
                             completion_time=completion, pages=units,
                             nodes_visited=lookup.nodes_visited,
                             units_allocated=units, rmw_reads=rmw_reads,
                             gc_time=gc_time)

    # ------------------------------------------------------------------
    # request-granular convenience (§4.4 read/write + assembly)
    # ------------------------------------------------------------------
    def read(self, space_id: int, coordinate: Sequence[int],
             sub_dim: Sequence[int], start_time: float = 0.0,
             with_data: bool = True) -> StlOpResult:
        accesses = self.plan(space_id, coordinate, sub_dim)
        return self._read_accesses(space_id, tuple(sub_dim), accesses,
                                   start_time, with_data)

    def read_region(self, space_id: int, origin: Sequence[int],
                    extents: Sequence[int], start_time: float = 0.0,
                    with_data: bool = True) -> StlOpResult:
        accesses = self.plan_region(space_id, origin, extents)
        return self._read_accesses(space_id, tuple(extents), accesses,
                                   start_time, with_data)

    def write(self, space_id: int, coordinate: Sequence[int],
              sub_dim: Sequence[int], data: Optional[np.ndarray] = None,
              start_time: float = 0.0) -> StlOpResult:
        accesses = self.plan(space_id, coordinate, sub_dim)
        return self._write_accesses(space_id, tuple(sub_dim), accesses,
                                    data, start_time)

    def write_region(self, space_id: int, origin: Sequence[int],
                     extents: Sequence[int],
                     data: Optional[np.ndarray] = None,
                     start_time: float = 0.0) -> StlOpResult:
        accesses = self.plan_region(space_id, origin, extents)
        return self._write_accesses(space_id, tuple(extents), accesses,
                                    data, start_time)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _read_accesses(self, space_id: int, extents: Tuple[int, ...],
                       accesses: List[BlockAccess], start_time: float,
                       with_data: bool) -> StlOpResult:
        space = self.get_space(space_id)
        out = None
        if with_data and self.flash.store_data:
            out = np.zeros(extents + (space.element_size,), dtype=np.uint8)
        result = StlOpResult(start_time=start_time, end_time=start_time,
                             data=out)
        if (self.batch_epochs and len(accesses) > 1
                and self.flash.faults is None):
            self._read_accesses_merged(space_id, space, accesses,
                                       start_time, out, result)
        else:
            for access in accesses:
                block = self.read_block(space_id, access, start_time,
                                        out=out)
                result.blocks.append(block)
                if block.completion_time > result.end_time:
                    result.end_time = block.completion_time
        result.stats.count("stl_reads")
        return result

    def _read_accesses_merged(self, space_id: int, space: Space,
                              accesses: List[BlockAccess],
                              start_time: float,
                              out: Optional[np.ndarray],
                              result: StlOpResult) -> None:
        """Epoch batch execution on the read path.

        Every block access of one request issues at ``start_time``, so
        their page batches concatenate into a single flash submission:
        page order within and across accesses is preserved and each
        page still issues at the same time, which makes every
        reservation — and therefore every timing — bit-identical to
        the per-access :meth:`read_block` calls. Per-access completions
        are recovered from each access's slice of the shared
        completion list.
        """
        self._sync_faults()
        index = self.indexes[space_id]
        want_cols = self.flash.columnar
        ppas: List = []
        chans: List[int] = []
        banks: List[int] = []
        metas = []
        for access in accesses:
            lookup = index.lookup(access.block_coord)
            positions = pages_for_region(space, access.block_slice)
            first = len(ppas)
            entry = lookup.entry
            if entry is not None:
                if entry.stored_bytes is not None:
                    # compressed blocks are stored whole (§5.3.4)
                    batch = entry.allocated_pages()
                else:
                    pages = entry.pages
                    batch = [pages[p] for p in positions
                             if pages[p] is not None]
                ppas.extend(batch)
                if want_cols:
                    chans.extend(p.channel for p in batch)
                    banks.extend(p.bank for p in batch)
            metas.append((access, lookup, first))
        completions: List[float] = []
        if ppas:
            cols = (chans, banks) if want_cols else None
            op = self.flash.read_pages(ppas, start_time, columns=cols)
            completions = op.completions
        total = len(ppas)
        for i, (access, lookup, first) in enumerate(metas):
            stop = metas[i + 1][2] if i + 1 < len(metas) else total
            completion = start_time
            for done in completions[first:stop]:
                if done > completion:
                    completion = done
            pages_read = stop - first
            if out is not None:
                self._scatter_block(space, access, lookup.entry, out)
            self.stats.count("stl_pages_read", pages_read)
            block = BlockOpResult(access=access, issue_time=start_time,
                                  completion_time=completion,
                                  pages=pages_read,
                                  nodes_visited=lookup.nodes_visited)
            result.blocks.append(block)
            if completion > result.end_time:
                result.end_time = completion

    def _write_accesses(self, space_id: int, extents: Tuple[int, ...],
                        accesses: List[BlockAccess],
                        data: Optional[np.ndarray],
                        start_time: float) -> StlOpResult:
        space = self.get_space(space_id)
        if data is not None:
            expected = extents + (space.element_size,)
            if tuple(data.shape) != expected:
                raise ValueError(
                    f"data shape {data.shape} != expected {expected}")
        result = StlOpResult(start_time=start_time, end_time=start_time)
        if (self.batch_epochs and self.batch_fanout and len(accesses) > 1
                and self.flash.faults is None and self.parity is None
                and self.compressor is None):
            self._write_accesses_epoch(space_id, space, accesses, data,
                                       start_time, result)
        else:
            for access in accesses:
                region = None
                if data is not None and self.flash.store_data:
                    slicer = tuple(slice(lo, hi)
                                   for lo, hi in access.out_slice)
                    region = data[slicer]
                block = self.write_block(space_id, access, start_time,
                                         region=region)
                result.blocks.append(block)
                if block.completion_time > result.end_time:
                    result.end_time = block.completion_time
        result.stats.count("stl_writes")
        return result

    def _write_accesses_epoch(self, space_id: int, space: Space,
                              accesses: List[BlockAccess],
                              data: Optional[np.ndarray],
                              start_time: float,
                              result: StlOpResult) -> None:
        """Epoch batch execution on the write path.

        Accesses that need no read-modify-write all program at
        ``start_time``, so their page batches accumulate into one
        pending flash submission that spans accesses. The epoch flushes
        at every GC trigger (GC must see the same flash state the
        scalar sequence would) and before any access that needs an RMW
        read or touches a compressed block — those drain the epoch and
        delegate to the scalar :meth:`write_block`. Allocation,
        release, GC decisions and page issue order all happen in the
        exact scalar sequence, so every timing is bit-identical;
        per-access completions are distributed back from each flush.
        """
        self._sync_faults()
        index = self.indexes[space_id]
        allowed = self._shard_planes.get(space_id)
        page_bytes = self._page_size
        store = self.flash.store_data
        want_cols = self.flash.columnar
        pending_ppas: List = []
        pending_data: List = []
        pending_owner: List = []
        pend_ch: List[int] = []
        pend_bk: List[int] = []
        #: per batched access: [completion, units, gc_time,
        #: nodes_visited, access] — finalized after the last flush
        blocks: List = []

        def flush() -> None:
            if not pending_ppas:
                return
            cols = (pend_ch, pend_bk) if want_cols else None
            op = self.flash.program_pages(
                pending_ppas, start_time,
                data=pending_data if store else None, columns=cols)
            for st, done in zip(pending_owner, op.completions):
                if done > st[0]:
                    st[0] = done
            pending_ppas.clear()
            pending_data.clear()
            pending_owner.clear()
            pend_ch.clear()
            pend_bk.clear()

        for access in accesses:
            peek = index.lookup(access.block_coord).entry
            positions = pages_for_region(space, access.block_slice)
            covers_block = all(
                lo == 0 and hi == extent
                for (lo, hi), extent in zip(access.block_slice, space.bb))
            # an RMW read only happens when the scalar path would issue
            # one: partial coverage over existing units, and (on a
            # functional system) an actual payload to merge into
            needs_rmw = (peek is not None and not covers_block
                         and (data is not None or not store)
                         and any(peek.pages[p] is not None
                                 for p in positions))
            compressed = peek is not None and peek.stored_bytes is not None
            if compressed or needs_rmw:
                flush()
                region = None
                if data is not None and store:
                    slicer = tuple(slice(lo, hi)
                                   for lo, hi in access.out_slice)
                    region = data[slicer]
                blocks.append(self.write_block(space_id, access,
                                               start_time, region=region))
                continue
            lookup = index.ensure(access.block_coord)
            entry = lookup.entry
            region = None
            if data is not None and store:
                slicer = tuple(slice(lo, hi) for lo, hi in access.out_slice)
                region = data[slicer]
            new_content: Optional[np.ndarray] = None
            if store and region is not None:
                new_content = self._block_buffer(space, entry)
                view = new_content[:space.block_bytes].reshape(
                    space.bb + (space.element_size,))
                slicer = tuple(slice(lo, hi)
                               for lo, hi in access.block_slice)
                view[slicer] = region
            st = [start_time, 0, 0.0, lookup.nodes_visited, access]
            blocks.append(st)
            for position in positions:
                old = entry.pages[position]
                if old is not None:
                    prefer = (old.channel, old.bank)
                    entry.record_release(position)
                    self.allocator.invalidate(old)
                    self.gc.note_release(old)
                else:
                    prefer = self.allocator.choose_target(entry,
                                                          allowed=allowed)
                if self.gc.needs_collection(*prefer):
                    flush()
                    gc_result = self.gc.collect(prefer[0], prefer[1],
                                                st[0])
                    st[2] += max(0.0, gc_result.end_time - st[0])
                    if gc_result.end_time > st[0]:
                        st[0] = gc_result.end_time
                payload = None
                if new_content is not None:
                    offset = position * page_bytes
                    payload = new_content[offset:offset + page_bytes]
                if (self.elide_zero_pages and payload is not None
                        and old is None and not payload.any()):
                    self.stats.count("stl_pages_elided")
                    continue
                ppa = self.allocator.allocate(entry, position,
                                              prefer=prefer,
                                              allowed=allowed)
                self.gc.note_alloc(ppa, space_id, access.block_coord,
                                   position)
                pending_ppas.append(ppa)
                pending_data.append(payload)
                pending_owner.append(st)
                if want_cols:
                    pend_ch.append(ppa.channel)
                    pend_bk.append(ppa.bank)
                st[1] += 1
        flush()
        for item in blocks:
            if isinstance(item, list):
                completion, units, gc_time, nodes_visited, access = item
                self.stats.count("stl_pages_programmed", units)
                item = BlockOpResult(access=access, issue_time=start_time,
                                     completion_time=completion,
                                     pages=units,
                                     nodes_visited=nodes_visited,
                                     units_allocated=units, rmw_reads=0,
                                     gc_time=gc_time)
            result.blocks.append(item)
            if item.completion_time > result.end_time:
                result.end_time = item.completion_time

    def _write_block_compressed(self, space_id: int, space: Space, lookup,
                                access: BlockAccess, issue_time: float,
                                region: np.ndarray) -> BlockOpResult:
        """§5.3.4 path: merge, compress the whole block, store it in
        (fewer) fresh units."""
        entry = lookup.entry
        page_bytes = self._page_size

        # Merge: materialize current content (decompressing if present),
        # reading the stored units when the write is partial.
        old_ppas = entry.allocated_pages()
        covers_block = all(
            lo == 0 and hi == extent
            for (lo, hi), extent in zip(access.block_slice, space.bb))
        rmw_reads = 0
        rmw_done = issue_time
        if old_ppas and not covers_block:
            op = self.flash.read_pages(old_ppas, issue_time)
            rmw_done = op.end_time
            rmw_reads = len(old_ppas)
        content = self._block_buffer(space, entry)
        view = content[:space.block_bytes].reshape(
            space.bb + (space.element_size,))
        slicer = tuple(slice(lo, hi) for lo, hi in access.block_slice)
        view[slicer] = region

        stored = self.compressor.compress_block(content[:space.block_bytes])
        needed = max(1, -(-stored.size // page_bytes))
        if needed > len(entry.pages):
            # the codec header can push an incompressible block one page
            # past its raw footprint
            entry.pages.extend([None] * (needed - len(entry.pages)))

        # Release every old unit, then place the compressed payload.
        old_planes = []
        for position in range(len(entry.pages)):
            ppa = entry.record_release(position)
            if ppa is not None:
                old_planes.append((ppa.channel, ppa.bank))
                self.allocator.invalidate(ppa)
                self.gc.note_release(ppa)
        completion = rmw_done
        gc_time = 0.0
        units = 0
        for position in range(needed):
            if position < len(old_planes):
                prefer = old_planes[position]
            else:
                prefer = self.allocator.choose_target(
                    entry, allowed=self._shard_planes.get(space_id))
            if self.gc.needs_collection(*prefer):
                gc_result = self.gc.collect(prefer[0], prefer[1], completion)
                gc_time += max(0.0, gc_result.end_time - completion)
                completion = max(completion, gc_result.end_time)
            ppa = self.allocator.allocate(
                entry, position, prefer=prefer,
                allowed=self._shard_planes.get(space_id))
            self.gc.note_alloc(ppa, space_id, access.block_coord, position)
            chunk = stored[position * page_bytes:(position + 1) * page_bytes]
            op = self.flash.program_pages([ppa], rmw_done, data=[chunk])
            completion = max(completion, op.end_time)
            units += 1
        entry.stored_bytes = stored.size
        self.stats.count("stl_pages_programmed", units)
        self.stats.count("stl_blocks_compressed")
        return BlockOpResult(access=access, issue_time=issue_time,
                             completion_time=completion, pages=units,
                             nodes_visited=lookup.nodes_visited,
                             units_allocated=units, rmw_reads=rmw_reads,
                             gc_time=gc_time)

    def _resolve_entry(self, space_id: int,
                       block_coord: Tuple[int, ...]) -> Optional[BlockEntry]:
        index = self.indexes.get(space_id)
        if index is None:
            return None
        return index.lookup(block_coord).entry

    # ------------------------------------------------------------------
    # reliability internals
    # ------------------------------------------------------------------
    def _sync_faults(self) -> None:
        """Placement steers around dead channels: keep the allocator's
        view of the injector in step with the flash array's."""
        if self.allocator.faults is not self.flash.faults:
            self.allocator.faults = self.flash.faults

    def _recovery(self):
        faults = self.flash.faults
        return faults.suppress() if faults is not None else nullcontext()

    def _patch_parity(self, space_id: int, coord: Tuple[int, ...],
                      new_ppa) -> None:
        """GC relocation callback for parity units."""
        self.parity.put(space_id, coord, new_ppa)

    def _update_parity(self, space_id: int, space: Space,
                       coord: Tuple[int, ...], entry: BlockEntry,
                       content: Optional[np.ndarray],
                       issue_time: float) -> float:
        """Re-derive and program the block's XOR parity unit.

        The parity unit covers every page slot of the block (unwritten
        slots count as zeros, matching reconstruction); the old unit is
        released first so the allocator can reuse its plane.
        """
        old = self.parity.pop(space_id, coord)
        if old is not None:
            self.allocator.invalidate(old)
            self.gc.note_release(old)
        if content is None:
            content = self._block_buffer(space, entry)
        payload = xor_fold(content, self._page_size)
        issue = issue_time
        with self._recovery():
            while True:
                ppa = self.allocator.allocate_raw(
                    allowed=self._shard_planes.get(space_id))
                try:
                    op = self.flash.program_pages([ppa], issue,
                                                  data=[payload])
                    break
                except ProgramFailError as err:
                    self.allocator.invalidate(ppa)
                    issue = self.gc.retire_block(ppa.channel, ppa.bank,
                                                 ppa.block, err.fail_time)
        self.parity.put(space_id, coord, ppa)
        self.gc.note_alloc(ppa, space_id, coord, PARITY_POSITION)
        self.stats.count("stl_parity_units_written")
        return op.end_time

    def _degraded_read(self, space_id: int, space: Space,
                       coord: Tuple[int, ...], entry: BlockEntry,
                       position: int, err: UncorrectableError) -> float:
        """Reconstruct one unreadable unit from its parity group.

        Reads every surviving unit of the block plus the parity unit
        (recovery traffic: probabilistic draws suppressed), XORs them
        back into the lost page, and relocates it to a fresh unit so
        the next read is clean. Raises :class:`DegradedReadError` when
        reconstruction is impossible, or re-raises the original error
        when parity is off.
        """
        faults = self.flash.faults
        faults.stats.count("stl_uncorrectable_reads")
        if self.parity is None:
            raise err
        parity_ppa = self.parity.get(space_id, coord)
        if parity_ppa is None:
            raise DegradedReadError(
                err.ppa, err.fail_time,
                detail="no parity unit recorded for this block")
        survivors = [(pos, ppa) for pos, ppa in enumerate(entry.pages)
                     if ppa is not None and pos != position]
        end = err.fail_time
        page = np.zeros(self._page_size, dtype=np.uint8)
        with faults.suppress():
            try:
                for _pos, ppa in survivors + [(PARITY_POSITION, parity_ppa)]:
                    op = self.flash.read_pages([ppa], err.fail_time)
                    end = max(end, op.end_time)
                    page ^= self.flash.page_data(ppa)
            except (EccError, UncorrectableError) as sibling_err:
                raise DegradedReadError(
                    err.ppa, end,
                    detail=f"parity group member unreadable: {sibling_err}"
                ) from err
            # relocate the reconstructed unit off the failing page
            failed = entry.pages[position]
            entry.record_release(position)
            self.allocator.invalidate(failed)
            self.gc.note_release(failed)
            new_ppa = self.allocator.allocate(
                entry, position, prefer=None,
                allowed=self._shard_planes.get(space_id))
            self.gc.note_alloc(new_ppa, space_id, coord, position)
            op = self.flash.program_pages([new_ppa], end, data=[page])
            end = max(end, op.end_time)
        faults.stats.count("stl_degraded_reads")
        faults.stats.count("stl_pages_reconstructed")
        self.stats.count("stl_degraded_reads")
        return end

    def _block_buffer(self, space: Space, entry: BlockEntry) -> np.ndarray:
        """Materialize a block's full byte content (zeros where
        unwritten), page-slot padded. Compressed blocks (§5.3.4) are
        inflated back to their raw layout."""
        total = space.pages_per_block * self._page_size
        buffer = np.zeros(total, dtype=np.uint8)
        if entry.stored_bytes is not None:
            stored = np.concatenate(
                [self.flash.page_data(ppa)
                 for ppa in entry.allocated_pages()])
            raw = self.compressor.decompress_block(
                stored[:max(entry.stored_bytes, 0)], space.block_bytes)
            buffer[:space.block_bytes] = raw
            return buffer
        for position, ppa in enumerate(entry.pages):
            if ppa is None:
                continue
            page = self.flash.page_data(ppa)
            buffer[position * self._page_size:
                   (position + 1) * self._page_size] = page
        return buffer

    def _scatter_block(self, space: Space, access: BlockAccess,
                       entry: Optional[BlockEntry],
                       out: np.ndarray) -> None:
        out_slicer = tuple(slice(lo, hi) for lo, hi in access.out_slice)
        if entry is None:
            out[out_slicer] = 0
            return
        buffer = self._block_buffer(space, entry)
        view = buffer[:space.block_bytes].reshape(
            space.bb + (space.element_size,))
        block_slicer = tuple(slice(lo, hi) for lo, hi in access.block_slice)
        out[out_slicer] = view[block_slicer]
