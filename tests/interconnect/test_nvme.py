"""Tests for the NVMe command model and its NDS extension limits."""

import pytest

from repro.interconnect import (NVME_LIMITS, NvmeCommand, NvmeOpcode,
                                saturation_curve)


class TestOpcode:
    def test_conventional_vs_extended(self):
        assert not NvmeOpcode.READ.is_extended
        assert not NvmeOpcode.WRITE.is_extended
        assert NvmeOpcode.ND_READ.is_extended
        assert NvmeOpcode.OPEN_SPACE.is_extended


class TestLimits:
    def test_up_to_32_dimensions(self):
        NVME_LIMITS.validate_dimensionality([2] * 32)
        with pytest.raises(ValueError):
            NVME_LIMITS.validate_dimensionality([2] * 33)

    def test_dimension_size_bounds(self):
        NVME_LIMITS.validate_dimensionality([2**64])
        with pytest.raises(ValueError):
            NVME_LIMITS.validate_dimensionality([2**64 + 1])
        with pytest.raises(ValueError):
            NVME_LIMITS.validate_dimensionality([0])

    def test_empty_dimensionality(self):
        with pytest.raises(ValueError):
            NVME_LIMITS.validate_dimensionality([])


class TestCommand:
    def test_nd_read_requires_matching_ranks(self):
        with pytest.raises(ValueError):
            NvmeCommand(opcode=NvmeOpcode.ND_READ, coordinate=(1,),
                        sub_dimensionality=(4, 4))

    def test_valid_nd_write(self):
        cmd = NvmeCommand(opcode=NvmeOpcode.ND_WRITE, coordinate=(0, 1),
                          sub_dimensionality=(128, 128),
                          payload_bytes=65536)
        assert cmd.opcode.is_extended

    def test_negative_payload(self):
        with pytest.raises(ValueError):
            NvmeCommand(opcode=NvmeOpcode.READ, payload_bytes=-1)


class TestSaturationCurve:
    def test_curve_rises_and_saturates(self):
        curve = saturation_curve(5e9, 3.4e-6,
                                 [4096, 32768, 2**20, 2 * 2**20, 16 * 2**20])
        rates = [rate for _size, rate in curve]
        assert rates == sorted(rates)
        assert rates[-1] / 5e9 > 0.98
