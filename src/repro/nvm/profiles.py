"""Calibrated device profiles.

The paper evaluates on two flash devices:

* the **prototype / datacenter SSD** — 32 channels, 8 banks, 4 KB pages,
  2 TB, 4 GB DRAM, behind a 40 Gb/s NVMe-oF link (§6.1); its
  internal:external bandwidth ratio is 8:5 (§7.2);
* a **consumer-class NVMe SSD** with 8 channels (Fig. 3).

Profiles bundle geometry + timing + link/host parameters. The
``scale`` helpers shrink *capacity* (not parallelism) so that
experiments with down-scaled datasets keep identical structure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.nvm.geometry import Geometry
from repro.nvm.timing import NvmTiming

__all__ = ["DeviceProfile", "PAPER_PROTOTYPE", "CONSUMER_SSD",
           "PCM_PROTOTYPE", "TINY_TEST"]


@dataclass(frozen=True)
class DeviceProfile:
    """Everything needed to instantiate one modelled storage device."""

    name: str
    geometry: Geometry
    timing: NvmTiming
    #: external link peak bandwidth (bytes/s) — NVMe-oF for the prototype
    link_bandwidth: float
    #: per-command link overhead (s); calibrated so 32 KB requests reach
    #: ~66 % of peak and >=2 MB requests saturate (paper §2.1 [P2])
    link_command_overhead: float
    #: device controller per-command processing time (s)
    controller_command_time: float
    #: device DRAM available for FTL/STL structures and buffers (bytes)
    dram_bytes: int
    #: fraction of capacity reserved as over-provisioning (§6.1: 10 %)
    overprovisioning: float = 0.10

    @property
    def internal_read_bandwidth(self) -> float:
        g = self.geometry
        return self.timing.internal_read_bandwidth(
            g.channels, g.banks_per_channel, g.page_size)

    @property
    def internal_write_bandwidth(self) -> float:
        g = self.geometry
        return self.timing.internal_write_bandwidth(
            g.channels, g.banks_per_channel, g.page_size)

    def link_time(self, num_bytes: int) -> float:
        """Time for one transfer of ``num_bytes`` over the external link."""
        return self.link_command_overhead + num_bytes / self.link_bandwidth

    def link_efficiency(self, request_bytes: int) -> float:
        """Fraction of peak link bandwidth achieved at a request size."""
        ideal = request_bytes / self.link_bandwidth
        return ideal / self.link_time(request_bytes)

    def scaled_capacity(self, factor: float) -> "DeviceProfile":
        """Same structure and speeds, ``factor``× the blocks per bank."""
        return replace(
            self,
            geometry=self.geometry.scaled(block_factor=factor),
            dram_bytes=max(1, int(self.dram_bytes * factor)),
        )


#: The paper's prototype datacenter-class SSD (§6.1), calibrated:
#: internal read bandwidth 32 ch × 250 MB/s = 8 GB/s against the
#: external 40 Gb/s NVMe-oF link ≈ 5 GB/s — the paper's 8:5
#: internal:external ratio (§7.2). 32 KB transfers reach ≈ 66 % of peak
#: with the 3.4 µs command overhead (paper §2.1 [P2]).
PAPER_PROTOTYPE = DeviceProfile(
    name="paper-prototype-32ch",
    geometry=Geometry(channels=32, banks_per_channel=8,
                      blocks_per_bank=1024, pages_per_block=256,
                      page_size=4096),
    timing=NvmTiming(t_read=60e-6, t_program=3.4e-3, t_erase=5e-3,
                     channel_bandwidth=250e6, t_cmd=0.5e-6),
    link_bandwidth=5.0e9,
    link_command_overhead=3.4e-6,
    controller_command_time=2.0e-6,
    dram_bytes=4 * 2**30,
)

#: The 8-channel consumer NVMe SSD from Fig. 3 (external bandwidth limited
#: to PCIe 3.0 ×4-class ~3.2 GB/s, fewer channels).
CONSUMER_SSD = DeviceProfile(
    name="consumer-8ch",
    geometry=Geometry(channels=8, banks_per_channel=8,
                      blocks_per_bank=1024, pages_per_block=256,
                      page_size=4096),
    timing=NvmTiming(t_read=75e-6, t_program=2.8e-3, t_erase=5e-3,
                     channel_bandwidth=320e6, t_cmd=0.5e-6),
    link_bandwidth=3.2e9,
    link_command_overhead=5.0e-6,
    controller_command_time=2.5e-6,
    dram_bytes=1 * 2**30,
)

#: A PCM-class byte-addressable device (§2.1 notes PCM keeps its own
#: basic access granularity [90]): much finer units, far lower read
#: latency, modest parallelism. Its building-block optimum differs from
#: both flash devices — the [C1] point that no single application-side
#: layout suits every device.
PCM_PROTOTYPE = DeviceProfile(
    name="pcm-16ch",
    geometry=Geometry(channels=16, banks_per_channel=4,
                      blocks_per_bank=4096, pages_per_block=256,
                      page_size=512),
    timing=NvmTiming(t_read=1e-6, t_program=10e-6, t_erase=100e-6,
                     channel_bandwidth=600e6, t_cmd=0.2e-6),
    link_bandwidth=6.0e9,
    link_command_overhead=2.0e-6,
    controller_command_time=1.5e-6,
    dram_bytes=2 * 2**30,
)

#: A miniature device for unit tests: small enough that GC paths and
#: exhaustion are easy to trigger, same structural shape as the prototype.
TINY_TEST = DeviceProfile(
    name="tiny-test-4ch",
    geometry=Geometry(channels=4, banks_per_channel=2,
                      blocks_per_bank=8, pages_per_block=8,
                      page_size=256),
    timing=NvmTiming(t_read=10e-6, t_program=100e-6, t_erase=500e-6,
                     channel_bandwidth=100e6, t_cmd=0.2e-6),
    link_bandwidth=1.0e9,
    link_command_overhead=2.0e-6,
    controller_command_time=1.0e-6,
    dram_bytes=1 * 2**20,
)
