"""Key-popularity models: which of millions of logical keys a request
touches.

The serving workloads draw their keys (embedding rows, logical users)
from these models. :class:`ZipfPopularity` is the interesting one —
real embedding traffic is heavily skewed, and the hot set is what
N-D-aware placement (and later caching) exploits.

Sampling uses Hörmann & Derflinger's rejection-inversion method, which
is O(1) per sample with no per-rank tables, so a universe of millions
of keys costs nothing to set up. Rank→key scattering is a fixed
multiplicative permutation: popular ranks land on key ids spread across
the whole universe instead of clustering at 0, which matters once keys
map to physically adjacent rows.

Everything is seeded and deterministic; the statistical tests in
``tests/traffic`` pin both exact golden samples per seed and the
frequency *shape* (rank-frequency slope ≈ the configured exponent).
"""

from __future__ import annotations

import abc
import math
import random

__all__ = ["PopularityModel", "ZipfPopularity", "UniformPopularity"]


class PopularityModel(abc.ABC):
    """One seeded source of key ids in ``[0, universe)``."""

    universe: int = 0
    seed: int = 0

    @abc.abstractmethod
    def sample(self) -> int:
        """Next key id (advances the private RNG)."""

    @abc.abstractmethod
    def fork(self, salt: int) -> "PopularityModel":
        """An independent model with a salted seed (per-stream use)."""


def _coprime_multiplier(universe: int) -> int:
    """Smallest multiplier >= Knuth's 2^32/φ residue that is coprime to
    the universe — a fixed bijective scatter of ranks onto key ids."""
    base = 2654435761 % universe
    if base < 2:
        base = 2
    for candidate in range(base, base + universe):
        if math.gcd(candidate, universe) == 1:
            return candidate
    return 1  # universe == 1


class ZipfPopularity(PopularityModel):
    """Zipf(``exponent``) ranks over ``universe`` keys, scattered.

    ``sample`` draws a 1-based rank ``k`` with ``P(k) ∝ k^-exponent``
    via rejection inversion (Hörmann & Derflinger 1996 — the same
    algorithm behind Apache Commons' RejectionInversionZipfSampler),
    then maps it through a fixed multiplicative permutation so the hot
    ranks do not all sit on adjacent key ids. ``exponent`` may be any
    positive value; embedding benchmarks typically use 1.05–1.2.
    """

    def __init__(self, universe: int, exponent: float = 1.1,
                 seed: int = 0, scatter: bool = True) -> None:
        if universe < 1:
            raise ValueError("universe must hold at least one key")
        if exponent <= 0:
            raise ValueError("zipf exponent must be > 0")
        self.universe = int(universe)
        self.exponent = float(exponent)
        self.seed = int(seed)
        self.scatter = bool(scatter)
        self._rng = random.Random(self.seed)
        self._multiplier = (_coprime_multiplier(self.universe)
                            if scatter else 1)
        # rejection-inversion precomputation
        self._h_x1 = self._h_integral(1.5) - 1.0
        self._h_n = self._h_integral(self.universe + 0.5)
        self._s = 2.0 - self._h_integral_inverse(
            self._h_integral(2.5) - self._h(2.0))

    # -- rejection-inversion internals ---------------------------------
    def _h_integral(self, x: float) -> float:
        log_x = math.log(x)
        return _helper2((1.0 - self.exponent) * log_x) * log_x

    def _h(self, x: float) -> float:
        return math.exp(-self.exponent * math.log(x))

    def _h_integral_inverse(self, x: float) -> float:
        t = x * (1.0 - self.exponent)
        if t < -1.0:
            t = -1.0  # guard against rounding below the pole
        return math.exp(_helper1(t) * x)

    def rank(self) -> int:
        """Draw a 1-based Zipf rank (the popularity order)."""
        while True:
            u = self._h_n + self._rng.random() * (self._h_x1 - self._h_n)
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.universe:
                k = self.universe
            if (k - x <= self._s
                    or u >= self._h_integral(k + 0.5) - self._h(k)):
                return k

    def sample(self) -> int:
        rank = self.rank()
        return ((rank - 1) * self._multiplier) % self.universe

    def key_of_rank(self, rank: int) -> int:
        """The key id the 1-based rank ``rank`` scatters to."""
        if not 1 <= rank <= self.universe:
            raise ValueError(f"rank {rank} outside 1..{self.universe}")
        return ((rank - 1) * self._multiplier) % self.universe

    def fork(self, salt: int) -> "ZipfPopularity":
        return ZipfPopularity(self.universe, self.exponent,
                              seed=self.seed + 0x9E3779B1 * (salt + 1),
                              scatter=self.scatter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ZipfPopularity(universe={self.universe}, "
                f"exponent={self.exponent}, seed={self.seed})")


class UniformPopularity(PopularityModel):
    """Every key equally likely — the no-skew control."""

    def __init__(self, universe: int, seed: int = 0) -> None:
        if universe < 1:
            raise ValueError("universe must hold at least one key")
        self.universe = int(universe)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def sample(self) -> int:
        return self._rng.randrange(self.universe)

    def fork(self, salt: int) -> "UniformPopularity":
        return UniformPopularity(self.universe,
                                 seed=self.seed + 0x9E3779B1 * (salt + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"UniformPopularity(universe={self.universe}, "
                f"seed={self.seed})")


def _helper1(x: float) -> float:
    """``log1p(x) / x`` with the x→0 series (numerically stable)."""
    if abs(x) > 1e-8:
        return math.log1p(x) / x
    return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))


def _helper2(x: float) -> float:
    """``expm1(x) / x`` with the x→0 series (numerically stable)."""
    if abs(x) > 1e-8:
        return math.expm1(x) / x
    return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
