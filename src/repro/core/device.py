"""The NDS-compliant storage device, driven by binary NVMe commands.

This facade closes the §5.3 loop: 64-byte submission-queue entries (and
their coordinate payload pages) go in, the controller pipeline and the
STL execute them, completions come out. Backwards compatibility is the
paper's: "Upon receiving a conventional NVMe command, NDS simply treats
the request as a request to a one-dimensional address space" — plain
READ/WRITE land in an implicit 1-D space covering the device's logical
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.api import array_to_bytes, bytes_to_array
from repro.core.controller import ControllerTiming, NdsController
from repro.core.errors import FaultError, NdsError, PayloadError
from repro.core.stl import SpaceTranslationLayer
from repro.interconnect.encoding import EncodedCommand, decode_command
from repro.interconnect.nvme import NvmeOpcode
from repro.nvm.flash import FlashArray
from repro.nvm.profiles import DeviceProfile

__all__ = ["NdsDevice", "Completion"]


@dataclass
class Completion:
    """One completion-queue entry."""

    opcode: NvmeOpcode
    status: str                 # "ok" | error string
    end_time: float
    space_id: int = 0
    data: Optional[np.ndarray] = None
    fields: Dict[str, object] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        return self.status == "ok"


class NdsDevice:
    """An NDS SSD consuming :class:`EncodedCommand` submissions."""

    def __init__(self, profile: DeviceProfile,
                 store_data: bool = True,
                 controller_timing: ControllerTiming = ControllerTiming(),
                 ) -> None:
        self.profile = profile
        self.flash = FlashArray(profile.geometry, profile.timing,
                                store_data=store_data)
        self.stl = SpaceTranslationLayer(self.flash,
                                         gc_threshold=profile.overprovisioning)
        self.controller = NdsController(controller_timing)
        self._linear_space_id: Optional[int] = None

    # ------------------------------------------------------------------
    def submit(self, command: EncodedCommand, start_time: float = 0.0,
               payload: Optional[np.ndarray] = None) -> Completion:
        """Execute one submission-queue entry.

        ``payload`` carries write data (an array shaped like the
        command's sub-dimensionality; 1-D bytes for conventional
        writes).
        """
        try:
            opcode, space_id, details = decode_command(command)
        except ValueError as error:
            return Completion(opcode=NvmeOpcode.READ, status=str(error),
                              end_time=start_time)
        handled = self.controller.handle_command(start_time)
        try:
            if opcode == NvmeOpcode.OPEN_SPACE:
                return self._open_space(details, handled)
            if opcode == NvmeOpcode.CLOSE_SPACE:
                return Completion(opcode=opcode, status="ok",
                                  end_time=handled, space_id=space_id)
            if opcode == NvmeOpcode.DELETE_SPACE:
                released = self.stl.delete_space(space_id)
                return Completion(opcode=opcode, status="ok",
                                  end_time=handled, space_id=space_id,
                                  fields={"units_released": released})
            if opcode == NvmeOpcode.ND_READ:
                coordinate, sub_dim = details
                return self._nd_read(space_id, coordinate, sub_dim, handled)
            if opcode == NvmeOpcode.ND_WRITE:
                coordinate, sub_dim = details
                return self._nd_write(space_id, coordinate, sub_dim,
                                      payload, handled)
            if opcode == NvmeOpcode.READ:
                lba, length = details
                return self._linear_read(lba, length, handled)
            if opcode == NvmeOpcode.WRITE:
                lba, length = details
                return self._linear_write(lba, length, payload, handled)
            return Completion(opcode=opcode,
                              status=f"unsupported opcode {opcode}",
                              end_time=handled)
        except (NdsError, FaultError) as error:
            # typed storage failures surface as failed completions;
            # programming errors (TypeError, stray KeyError, ...)
            # propagate so bugs are not silently swallowed
            return Completion(opcode=opcode, status=str(error),
                              end_time=handled, space_id=space_id)

    # ------------------------------------------------------------------
    def _open_space(self, dims, now: float) -> Completion:
        space = self.stl.create_space(dims, element_size=4)
        return Completion(opcode=NvmeOpcode.OPEN_SPACE, status="ok",
                          end_time=now, space_id=space.space_id,
                          fields={"building_block": space.bb})

    def _nd_read(self, space_id: int, coordinate, sub_dim,
                 now: float) -> Completion:
        space = self.stl.get_space(space_id)
        accesses = self.stl.plan(space_id, coordinate, sub_dim)
        translated = self.controller.translate(now, space.rank,
                                               len(accesses))
        result = self.stl.read(space_id, coordinate, sub_dim,
                               start_time=translated,
                               with_data=self.flash.store_data)
        assembled = self.controller.assemble(
            result.end_time,
            int(np.prod(sub_dim)) * space.element_size,
            result.pages_touched)
        return Completion(opcode=NvmeOpcode.ND_READ, status="ok",
                          end_time=assembled, space_id=space_id,
                          data=result.data)

    def _nd_write(self, space_id: int, coordinate, sub_dim,
                  payload: Optional[np.ndarray], now: float) -> Completion:
        space = self.stl.get_space(space_id)
        accesses = self.stl.plan(space_id, coordinate, sub_dim)
        translated = self.controller.translate(now, space.rank,
                                               len(accesses))
        raw = None
        if payload is not None and self.flash.store_data:
            array = np.ascontiguousarray(np.asarray(payload))
            if tuple(array.shape) != tuple(sub_dim):
                raise PayloadError(
                    f"payload shape {array.shape} != sub-dim {sub_dim}")
            if array.dtype.itemsize != space.element_size:
                raise PayloadError("payload itemsize != space element size")
            raw = array_to_bytes(array)
        result = self.stl.write(space_id, coordinate, sub_dim, data=raw,
                                start_time=translated)
        return Completion(opcode=NvmeOpcode.ND_WRITE, status="ok",
                          end_time=result.end_time, space_id=space_id)

    # -- conventional 1-D compatibility (§5.3.1) ------------------------
    def _linear_space(self) -> int:
        if self._linear_space_id is None:
            logical_bytes = int(self.profile.geometry.capacity_bytes
                                * (1.0 - self.profile.overprovisioning))
            space = self.stl.create_space((logical_bytes,), element_size=1)
            self._linear_space_id = space.space_id
        return self._linear_space_id

    def _linear_read(self, lba: int, length: int, now: float) -> Completion:
        page = self.profile.geometry.page_size
        result = self.stl.read_region(self._linear_space(),
                                      (lba * page,), (length * page,),
                                      start_time=now,
                                      with_data=self.flash.store_data)
        data = None
        if result.data is not None:
            data = bytes_to_array(result.data, np.uint8)
        return Completion(opcode=NvmeOpcode.READ, status="ok",
                          end_time=result.end_time, data=data)

    def _linear_write(self, lba: int, length: int,
                      payload: Optional[np.ndarray],
                      now: float) -> Completion:
        page = self.profile.geometry.page_size
        raw = None
        if payload is not None and self.flash.store_data:
            flat = np.ascontiguousarray(np.asarray(payload),
                                        dtype=np.uint8).ravel()
            if flat.size != length * page:
                raise PayloadError(
                    f"payload of {flat.size} B != {length} pages")
            raw = array_to_bytes(flat)
        result = self.stl.write_region(self._linear_space(),
                                       (lba * page,), (length * page,),
                                       data=raw, start_time=now)
        return Completion(opcode=NvmeOpcode.WRITE, status="ok",
                          end_time=result.end_time)
