"""Host-side substrate: CPU/memory cost models, I/O engine, pipelines."""

from repro.host.cpu import HostCpu
from repro.host.io_engine import HostIoEngine, IoRequest, IoRunResult
from repro.host.memory import MemoryModel
from repro.host.pipeline import PipelineResult, run_pipeline

__all__ = [
    "HostCpu",
    "MemoryModel",
    "HostIoEngine",
    "IoRequest",
    "IoRunResult",
    "PipelineResult",
    "run_pipeline",
]
