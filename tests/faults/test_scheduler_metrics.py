"""Per-stream fault/retry metrics through the request scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import UncorrectableError
from repro.faults import FaultConfig, FaultPlan
from repro.nvm import TINY_TEST
from repro.systems import BaselineSystem, SoftwareNdsSystem

N = 64


def _data() -> np.ndarray:
    return np.random.default_rng(11).integers(
        0, 256, size=(N, N), dtype=np.uint8).astype(np.uint8)


def _corrupt_config(parity: bool) -> FaultConfig:
    return FaultConfig(parity=parity,
                       plan=FaultPlan().corrupt_page(0, 0, 0, 0, at=0.01))


class TestStreamFaultReport:
    def test_faults_attributed_to_the_issuing_stream(self):
        system = SoftwareNdsSystem(TINY_TEST, store_data=True,
                                   faults=_corrupt_config(parity=True))
        system.ingest("d", (N, N), 1, data=_data())
        system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                         with_data=True, stream="tenant-a")
        system.read_tile("d", (0, 0), (N, N), start_time=0.2,
                         with_data=True, stream="tenant-b")
        report = system.scheduler.stream_fault_report()
        # the corruption fired during tenant-a's read; tenant-b's later
        # read hits the already-relocated unit and stays clean
        assert report["tenant-a"]["uncorrectable_reads"] == 1
        assert report["tenant-a"]["read_retries"] > 0
        assert report["tenant-a"]["stl_pages_reconstructed"] == 1
        assert "tenant-b" not in report
        # retry charges also land on the op's own result stats
        op = next(op for op in system.scheduler.executed
                  if op.stream == "tenant-a")
        assert op.result.stats.counters["read_retries"] > 0

    def test_failed_ops_are_counted(self):
        system = BaselineSystem(TINY_TEST, store_data=True,
                                faults=_corrupt_config(parity=False))
        system.ingest("d", (N, N), 1, data=_data())
        with pytest.raises(UncorrectableError):
            system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                             with_data=True, stream="victim")
        report = system.scheduler.stream_fault_report()
        assert report["victim"]["ops_failed"] == 1
        assert report["victim"]["uncorrectable_reads"] == 1

    def test_no_injector_means_empty_report(self):
        system = SoftwareNdsSystem(TINY_TEST, store_data=True)
        system.ingest("d", (N, N), 1, data=_data())
        system.read_tile("d", (0, 0), (N, N), start_time=0.1)
        assert system.fault_counters() is None
        assert system.scheduler.stream_fault_report() == {}

    def test_stream_report_keys_are_stable(self):
        """The stream_report contract must not grow fault keys —
        dashboards parse it. (QoS added latency percentiles and service
        accounting; ``slo`` appears only when a target is set.)"""
        system = SoftwareNdsSystem(TINY_TEST, store_data=True,
                                   faults=_corrupt_config(parity=True))
        system.ingest("d", (N, N), 1, data=_data())
        system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                         stream="tenant-a", with_data=True)
        for metrics in system.scheduler.stream_report().values():
            assert set(metrics) == {"ops", "makespan", "mean_latency",
                                    "max_latency", "p50_latency",
                                    "p95_latency", "p99_latency",
                                    "p999_latency", "mean_queue_wait",
                                    "p95_queue_wait", "mean_service",
                                    "p95_service", "weight",
                                    "service_time", "service_share"}

    def test_reset_clears_fault_totals(self):
        system = SoftwareNdsSystem(TINY_TEST, store_data=True,
                                   faults=_corrupt_config(parity=True))
        system.ingest("d", (N, N), 1, data=_data())
        system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                         with_data=True, stream="tenant-a")
        assert system.scheduler.stream_fault_report()
        system.scheduler.reset()
        assert system.scheduler.stream_fault_report() == {}
