"""The hardware-assisted NDS architecture (paper Fig. 7(c)).

The STL runs inside the device controller (Fig. 8): one NDS/NVMe
extended command per tile crosses the interconnect, the controller
translates it, reads building blocks at full internal bandwidth,
assembles the object in device DRAM, and streams assembled segments to
the host "as soon as a segment reaches the optimal data-exchange volume
for the system interconnect" (§4.4). The host issues exactly one
command and performs **no** marshalling.

Cost calibration (§7.3): a worst-case single-page request pays ~17 µs
over the baseline (command handling + full B-tree walk + one-page
assembly on the ARM cores). Writes pay controller-side disassembly,
the source of the 17 % write-bandwidth penalty of Fig. 9(d).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import bytes_to_array
from repro.core.controller import ControllerTiming, NdsController
from repro.core.stl import SpaceTranslationLayer
from repro.core.translator import pages_for_region
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultConfig
from repro.host.cpu import HostCpu
from repro.interconnect.link import Link
from repro.nvm.flash import FlashArray
from repro.nvm.profiles import DeviceProfile
from repro.systems.base import StorageSystem, SystemOpResult

__all__ = ["HardwareNdsSystem"]

#: segment size at which assembled data is pushed to the host (§4.4:
#: the optimal data-exchange volume of the interconnect, [P2]'s 2 MB)
DEFAULT_SEGMENT_BYTES = 2 * 2**20


class HardwareNdsSystem(StorageSystem):
    """NDS-compliant SSD: STL + assembly inside the device controller."""

    name = "hardware-nds"

    def __init__(self, profile: DeviceProfile, store_data: bool = False,
                 controller_timing: ControllerTiming = ControllerTiming(),
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 bb_override: Optional[Sequence[int]] = None,
                 cpu: Optional[HostCpu] = None,
                 cipher=None,
                 faults: Optional[FaultConfig] = None,
                 devices: int = 1, pool=None,
                 extents_per_device: int = 1, rebalance=None) -> None:
        self.profile = profile
        self.store_data = store_data
        self.segment_bytes = segment_bytes
        self.bb_override = bb_override
        self.page_size = profile.geometry.page_size
        self.cipher = cipher
        if self._init_cluster(
                devices, pool, faults, rebalance, extents_per_device,
                lambda i, f: HardwareNdsSystem(
                    profile, store_data=store_data,
                    controller_timing=controller_timing,
                    segment_bytes=segment_bytes, bb_override=bb_override,
                    cipher=cipher, faults=f)):
            return
        self.flash = FlashArray(profile.geometry, profile.timing,
                                store_data=store_data)
        if faults is not None:
            self.flash.attach_faults(FaultInjector(faults))
        self.stl = SpaceTranslationLayer(self.flash,
                                         gc_threshold=profile.overprovisioning,
                                         parity=faults.parity
                                         if faults is not None else False)
        self.controller = NdsController(controller_timing)
        self.link = Link(profile.link_bandwidth, profile.link_command_overhead)
        self.cpu = cpu if cpu is not None else HostCpu()
        # optional controller AES engine (§5.3.3): decryption rides the
        # assembly path, encryption the disassembly path; the engine is
        # one shared pipeline resource
        from repro.sim.resources import Timeline
        self.cipher_line = Timeline("aes_engine")
        self._spaces: Dict[str, int] = {}

    def _crypt(self, earliest_start: float, num_bytes: int) -> float:
        """Push bytes through the shared AES engine; returns finish."""
        if self.cipher is None:
            return earliest_start
        start, end = self.cipher_line.reserve(
            earliest_start, self.cipher.crypt_time(num_bytes))
        trace = self.scheduler.trace
        if trace is not None:
            trace.span("aes_engine", start, end, name="crypt",
                       bytes=num_bytes)
        return end

    # ------------------------------------------------------------------
    def _execute_ingest(self, dataset: str, dims: Sequence[int],
                        element_size: int,
                        data: Optional[np.ndarray] = None,
                        start_time: float = 0.0,
                        shard=None) -> SystemOpResult:
        if dataset in self._spaces:
            raise ValueError(f"dataset {dataset!r} already ingested")
        space = self.stl.create_space(
            dims, element_size, bb_override=self.bb_override,
            shard=shard,
            # rank >= 3: 3-D cube blocks over bank-level parallelism
            # (§4.1 Eq. 3/4)
            use_3d_blocks=len(tuple(dims)) >= 3 and self.bb_override is None)
        self._spaces[dataset] = space.space_id
        return self._execute_write(dataset, tuple(0 for _ in dims), dims,
                                   data=data, start_time=start_time)

    # ------------------------------------------------------------------
    def _execute_read(self, dataset: str, origin: Sequence[int],
                      extents: Sequence[int], start_time: float = 0.0,
                      with_data: bool = False,
                      dtype: Optional[np.dtype] = None) -> SystemOpResult:
        space_id = self._space_id(dataset)
        space = self.stl.get_space(space_id)
        accesses = self.stl.plan_region(space_id, origin, extents)
        elem = space.element_size

        # One extended NVMe command from the host (§5.3.1).
        issued = self.cpu.issue_io(start_time)
        cmd_done = self.controller.handle_command(issued)

        out = None
        if with_data and self.store_data:
            out = np.zeros(tuple(extents) + (elem,), dtype=np.uint8)

        fetched = 0
        pending_bytes = 0
        pending_ready = cmd_done
        end = cmd_done
        translate_done = cmd_done
        for access in accesses:
            translate_done = self.controller.translate(
                translate_done, space.rank, 1)
            block = self.stl.read_block(space_id, access, translate_done,
                                        out=out)
            fetched += block.pages * self.page_size
            region_bytes = access.element_count() * elem
            decrypted = self._crypt(block.completion_time,
                                    block.pages * self.page_size)
            ready = self.controller.assemble(decrypted, region_bytes,
                                             block.pages)
            pending_bytes += region_bytes
            pending_ready = max(pending_ready, ready)
            while pending_bytes >= self.segment_bytes:
                transfer = self.link.transfer(self.segment_bytes,
                                              pending_ready)
                pending_bytes -= self.segment_bytes
                end = max(end, transfer.end_time)
        if pending_bytes > 0:
            transfer = self.link.transfer(pending_bytes, pending_ready)
            end = max(end, transfer.end_time)

        useful = elem
        for extent in extents:
            useful *= extent
        data = None
        if out is not None:
            data = out if dtype is None else bytes_to_array(out, dtype)
        return SystemOpResult(start_time=start_time, end_time=end,
                              useful_bytes=useful, fetched_bytes=fetched,
                              requests=1, data=data)

    # ------------------------------------------------------------------
    def _execute_write(self, dataset: str, origin: Sequence[int],
                       extents: Sequence[int],
                       data: Optional[np.ndarray] = None,
                       start_time: float = 0.0) -> SystemOpResult:
        space_id = self._space_id(dataset)
        space = self.stl.get_space(space_id)
        accesses = self.stl.plan_region(space_id, origin, extents)
        elem = space.element_size

        issued = self.cpu.issue_io(start_time)
        cmd_done = self.controller.handle_command(issued)

        raw = None
        if data is not None and self.store_data:
            array = np.ascontiguousarray(np.asarray(data))
            if tuple(array.shape) != tuple(extents):
                raise ValueError(
                    f"data shape {array.shape} != extents {tuple(extents)}")
            raw = array.view(np.uint8).reshape(
                tuple(extents) + (array.dtype.itemsize,))

        # The device pulls the source object over the link in saturating
        # segments (the SSD "requests host main memory content in 4 KB
        # pages and breaks them up later", §7.1) — DMA, no host copies.
        useful = elem
        for extent in extents:
            useful *= extent
        arrival_times = self._segment_arrivals(useful, cmd_done)

        sent = 0
        end = cmd_done
        translate_done = cmd_done
        consumed = 0
        for access in accesses:
            region_bytes = access.element_count() * elem
            consumed += region_bytes
            arrival = self._arrival_for(arrival_times, consumed, useful)
            translate_done = self.controller.translate(
                max(translate_done, cmd_done), space.rank, 1)
            pages = len(pages_for_region(space, access.block_slice))
            alloc_done = self.controller.allocate(
                max(translate_done, arrival), pages)
            disassembled = self.controller.assemble(alloc_done, region_bytes,
                                                    pages)
            disassembled = self._crypt(disassembled,
                                       pages * self.page_size)
            region = None
            if raw is not None:
                slicer = tuple(slice(lo, hi) for lo, hi in access.out_slice)
                region = raw[slicer]
            block = self.stl.write_block(space_id, access, disassembled,
                                         region=region)
            sent += pages * self.page_size
            end = max(end, block.completion_time)
        return SystemOpResult(start_time=start_time, end_time=end,
                              useful_bytes=useful, fetched_bytes=sent,
                              requests=1)

    # ------------------------------------------------------------------
    def reset_time(self) -> None:
        if self.cluster is not None:
            self.cluster.reset_time()
            self._reset_runtime()
            return
        self.flash.reset_time()
        self.link.reset_time()
        self.cpu.reset_time()
        self.controller.reset_time()
        self.cipher_line.reset()
        self._reset_runtime()

    # ------------------------------------------------------------------
    def _cluster_align(self, dims: Sequence[int], element_size: int,
                       params: dict) -> int:
        """Extent boundaries land on building-block rows (same quantum
        the controller-resident STL would pick for the whole space)."""
        from repro.core.space import Space
        dims = tuple(int(d) for d in dims)
        space = Space.create(
            -1, dims, int(element_size), self.stl.geometry,
            bb_override=self.bb_override,
            use_3d_blocks=len(dims) >= 3 and self.bb_override is None)
        return int(space.bb[0])

    # ------------------------------------------------------------------
    def _space_id(self, dataset: str) -> int:
        space_id = self._spaces.get(dataset)
        if space_id is None:
            raise KeyError(f"unknown dataset {dataset!r}")
        return space_id

    def _segment_arrivals(self, total_bytes: int,
                          first_start: float) -> List[Tuple[int, float]]:
        """Cumulative-bytes → arrival-time steps for the inbound DMA."""
        arrivals = []
        cumulative = 0
        while cumulative < total_bytes:
            chunk = min(self.segment_bytes, total_bytes - cumulative)
            transfer = self.link.transfer(chunk, first_start)
            cumulative += chunk
            arrivals.append((cumulative, transfer.end_time))
        return arrivals

    @staticmethod
    def _arrival_for(arrivals: List[Tuple[int, float]], needed: int,
                     total: int) -> float:
        for cumulative, time in arrivals:
            if cumulative >= min(needed, total):
                return time
        return arrivals[-1][1] if arrivals else 0.0
