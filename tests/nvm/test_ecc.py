"""Failure injection: the ECC model surfaces corrupted pages."""

import numpy as np
import pytest

from repro.nvm import FlashArray, PhysicalPageAddress, TINY_TEST
from repro.nvm.flash import EccError, FlashStateError


@pytest.fixture
def flash():
    return FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                      store_data=True)


class TestEccDetection:
    def test_clean_page_reads_fine(self, flash, rng):
        ppa = PhysicalPageAddress(0, 0, 0, 0)
        payload = rng.integers(0, 256, 256).astype(np.uint8)
        flash.program_pages([ppa], 0.0, data=[payload])
        assert np.array_equal(flash.page_data(ppa), payload)

    def test_corruption_raises_on_verified_read(self, flash, rng):
        ppa = PhysicalPageAddress(1, 0, 0, 0)
        flash.program_pages([ppa], 0.0,
                            data=[rng.integers(0, 256, 256).astype(np.uint8)])
        flash.corrupt_page(ppa, byte_offset=17)
        with pytest.raises(EccError):
            flash.page_data(ppa)

    def test_unverified_read_returns_raw_bytes(self, flash, rng):
        ppa = PhysicalPageAddress(1, 1, 0, 0)
        flash.program_pages([ppa], 0.0,
                            data=[rng.integers(0, 256, 256).astype(np.uint8)])
        flash.corrupt_page(ppa)
        raw = flash.page_data(ppa, verify=False)
        assert raw.size == 256

    def test_corrupting_empty_page_rejected(self, flash):
        with pytest.raises(FlashStateError):
            flash.corrupt_page(PhysicalPageAddress(0, 0, 0, 7))

    def test_erase_clears_checksum(self, flash, rng):
        ppa = PhysicalPageAddress(0, 0, 2, 0)
        flash.program_pages([ppa], 0.0,
                            data=[rng.integers(0, 256, 256).astype(np.uint8)])
        flash.erase_block(0, 0, 2, 0.0)
        # erased page reads back zeros without tripping ECC
        assert flash.page_data(ppa).sum() == 0

    def test_double_corruption_still_detected(self, flash, rng):
        """Two byte flips at different offsets keep the checksum off."""
        ppa = PhysicalPageAddress(2, 0, 0, 0)
        flash.program_pages([ppa], 0.0,
                            data=[rng.integers(0, 256, 256).astype(np.uint8)])
        flash.corrupt_page(ppa, byte_offset=3)
        flash.corrupt_page(ppa, byte_offset=100)
        with pytest.raises(EccError):
            flash.page_data(ppa)


class TestEccThroughTheStack:
    def test_stl_read_surfaces_corruption(self, rng):
        """End to end: corrupt one unit of a building block; the STL
        read fails loudly instead of returning silent garbage."""
        from repro.core import SpaceTranslationLayer
        from repro.core.api import array_to_bytes
        flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                           store_data=True)
        stl = SpaceTranslationLayer(flash)
        space = stl.create_space((16, 16), 4)
        data = rng.integers(0, 2**31, (16, 16)).astype(np.int32)
        stl.write(space.space_id, (0, 0), (16, 16),
                  data=array_to_bytes(data))
        entry = stl.indexes[space.space_id].lookup(
            next(iter([e.coord for e in
                       stl.indexes[space.space_id].iter_entries()]))).entry
        victim = entry.allocated_pages()[0]
        flash.corrupt_page(victim)
        with pytest.raises(EccError):
            stl.read(space.space_id, (0, 0), (16, 16))
