"""Automated bottleneck diagnosis over synthetic monitor payloads."""

from __future__ import annotations

import pytest

from repro.obs.diagnose import (_baseline_span, diagnose_alert,
                                diagnose_report)

WINDOWS = 8


def make_payload(gc_fraction: float = 0.5):
    """A synthetic 8-window payload: healthy for windows 0-3, then the
    'bank' layer on device d1 (driven by GC) triples per-op latency in
    windows 4-7, with tenant1 taking the hit."""
    completed = [10] * WINDOWS
    healthy_bank, hot_bank = 0.001, 0.009
    layers = []
    busy_d0, busy_d1, gc_d1 = [], [], []
    for window in range(WINDOWS):
        hot = window >= 4
        bank = hot_bank if hot else healthy_bank
        layers.append({"bank": bank, "stl": 0.002})
        busy_d0.append(0.002)
        busy_d1.append(bank)
        gc_d1.append(gc_fraction * (bank - healthy_bank) if hot else 0.0)
    alert = {"rule": "fast", "time": 5 * 0.01, "window": 4,
             "burn_long": 14.2, "burn_short": 20.0, "threshold": 8.0}
    stream = lambda base, hot: {  # noqa: E731
        "completed": [5] * WINDOWS,
        "mean_latency": [hot if w >= 4 else base
                         for w in range(WINDOWS)],
        "bad": [0] * WINDOWS, "offered": [5] * WINDOWS,
        "shed": [0] * WINDOWS}
    return {
        "series": {
            "completed": completed,
            "streams": {"tenant0": stream(1e-4, 1.2e-4),
                        "tenant1": stream(1e-4, 9e-4)},
        },
        "slo": {
            "burn": [0.5, 0.5, 0.5, 0.5, 14.0, 14.0, 14.0, 14.0],
            "alerts": [alert],
            "rules": {"fast": {"long_windows": 1, "short_windows": 1,
                               "threshold": 8.0}},
        },
        "policy": {"objective": "latency",
                   "rules": [{"name": "fast", "long_windows": 1,
                              "short_windows": 1, "threshold": 8.0}]},
        "attribution": {"layers": layers,
                        "attributed_seconds": [sum(r.values())
                                               for r in layers]},
        "devices": {"busy_seconds": {"d0": busy_d0, "d1": busy_d1},
                    "gc_seconds": {"d1": gc_d1}},
    }


def test_names_dominant_layer_device_and_stream():
    diagnoses = diagnose_report(make_payload())
    assert len(diagnoses) == 1
    d = diagnoses[0]
    assert d["dominant_layer"] == "bank"
    assert d["layer_share"] == pytest.approx(1.0)
    assert d["dominant_device"] == "d1"
    assert d["device_gc"] is True
    assert d["dominant_stream"] == "tenant1"
    assert d["stream_latency_delta"] == pytest.approx(8e-4)
    assert "'bank' on d1 (GC)" in d["summary"]
    assert "stream=tenant1" in d["summary"]
    assert d["summary"].startswith("latency SLO burn 14.2x")


def test_gc_tag_needs_meaningful_share():
    diagnoses = diagnose_report(make_payload(gc_fraction=0.01))
    assert diagnoses[0]["dominant_device"] == "d1"
    assert diagnoses[0]["device_gc"] is False
    assert "(GC)" not in diagnoses[0]["summary"]


def test_baseline_is_healthy_windows_only():
    payload = make_payload()
    d = diagnose_alert(payload["slo"]["alerts"][0], payload,
                       long_windows=1)
    assert d["alert_windows"] == [4, 4]
    assert d["baseline_windows"] == [0, 3]


def test_baseline_span_edge_cases():
    # no healthy window before the alert: all preceding windows
    assert _baseline_span([5.0, 5.0, 5.0], 2) == (0, 1)
    # alert at window 0: nothing to compare
    assert _baseline_span([5.0, 5.0], 0) is None
    # trailing healthy run
    assert _baseline_span([0.2, 3.0, 0.4, 9.0], 3) == (0, 2)


def test_alert_at_window_zero_still_diagnoses():
    payload = make_payload()
    alert = dict(payload["slo"]["alerts"][0], window=0)
    d = diagnose_alert(alert, payload, long_windows=1)
    assert d["baseline_windows"] is None
    assert d["summary"]  # still produces a sentence


def test_no_alerts_no_diagnoses():
    payload = make_payload()
    payload["slo"]["alerts"] = []
    assert diagnose_report(payload) == []
    assert diagnose_report({"series": {}}) == []


def test_diagnosis_without_trace_sections():
    """A payload with no attribution/devices (series-only monitor)
    still yields a stream-level diagnosis."""
    payload = make_payload()
    del payload["attribution"]
    del payload["devices"]
    d = diagnose_report(payload)[0]
    assert d["dominant_layer"] is None
    assert d["dominant_device"] is None
    assert d["dominant_stream"] == "tenant1"
