"""Tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.at(3.0, lambda: seen.append("c"))
    sim.at(1.0, lambda: seen.append("a"))
    sim.at(2.0, lambda: seen.append("b"))
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_run_in_insertion_order():
    sim = Simulator()
    seen = []
    sim.at(1.0, lambda: seen.append("first"))
    sim.at(1.0, lambda: seen.append("second"))
    sim.run()
    assert seen == ["first", "second"]


def test_after_is_relative_to_now():
    sim = Simulator(start_time=5.0)
    seen = []
    sim.after(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [6.5]


def test_events_can_schedule_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.now))
        sim.after(2.0, lambda: seen.append(("second", sim.now)))

    sim.at(1.0, first)
    sim.run()
    assert seen == [("first", 1.0), ("second", 3.0)]


def test_scheduling_in_the_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.at(5.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1.0, lambda: None)


def test_run_until_stops_the_clock():
    sim = Simulator()
    seen = []
    sim.at(1.0, lambda: seen.append(1))
    sim.at(10.0, lambda: seen.append(10))
    sim.run(until=5.0)
    assert seen == [1]
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert seen == [1, 10]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.at(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_callback_may_schedule_at_exactly_now():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.now))
        # same-time events are legal and run after already-queued
        # events at that timestamp, in FIFO scheduling order
        sim.at(sim.now, lambda: seen.append(("chained", sim.now)))

    sim.at(1.0, first)
    sim.at(1.0, lambda: seen.append(("peer", sim.now)))
    sim.run()
    assert seen == [("first", 1.0), ("peer", 1.0), ("chained", 1.0)]


def test_step_from_inside_callback_raises():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.step()
        except SimulationError as exc:
            errors.append(exc)

    sim.at(1.0, reenter)
    sim.at(2.0, lambda: None)
    sim.run()
    assert len(errors) == 1
    # the queued event was not consumed by the illegal step()
    assert sim.now == 2.0


def test_run_via_step_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.at(1.0, reenter)
    while sim.step():
        pass
    assert len(errors) == 1


def test_engine_stays_usable_after_callback_raises():
    sim = Simulator()
    seen = []

    def boom():
        raise RuntimeError("callback failure")

    sim.at(1.0, boom)
    sim.at(2.0, lambda: seen.append(sim.now))
    with pytest.raises(RuntimeError):
        sim.run()
    # the failing event is consumed, the rest of the queue is intact
    assert sim.pending == 1
    sim.run()
    assert seen == [2.0]
    # and the reentrancy guard was not left latched by the exception
    sim.at(3.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.0, 3.0]
