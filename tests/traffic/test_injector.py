"""Open-loop injector gates: admission control, typed sheds, open-loop
latency growth, determinism, fault accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultPlan
from repro.nvm import TINY_TEST
from repro.obs.metrics import MetricsRegistry
from repro.runtime.tileop import TileOp
from repro.runtime.trace import TraceRecorder
from repro.systems import BaselineSystem, SoftwareNdsSystem
from repro.traffic import (SHED_QUEUE_FULL, SHED_THROTTLED, OpenLoopInjector,
                           PoissonProcess, TokenBucket, TrafficStream)

N = 64
HORIZON = 0.02


def _system(cls=SoftwareNdsSystem, **kwargs):
    system = cls(TINY_TEST, store_data=False, **kwargs)
    system.ingest("d", (N, N), 1)
    system.reset_time()
    system._reset_runtime()
    return system


def _read_request(seq, _time):
    row = (seq * 7) % N
    return TileOp.read("d", (row, 0), (1, N))


class TestTokenBucket:
    def test_disabled_bucket_always_admits(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.take(t * 1e-6) for t in range(1000))

    def test_rate_limits_admissions(self):
        bucket = TokenBucket(rate=100.0, burst=1.0)
        admitted = sum(bucket.take(t / 1000.0) for t in range(1000))
        # ~1 second at 100 tokens/s, starting with one burst token
        assert 98 <= admitted <= 101

    def test_burst_allows_back_to_back(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert [bucket.take(0.0) for _ in range(4)] == \
            [True, True, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=10.0, burst=0.5)


class TestAdmissionControl:
    def test_token_bucket_sheds_typed_throttled(self):
        stream = TrafficStream("t", PoissonProcess(5000.0, seed=1),
                               _read_request, token_rate=500.0)
        result = OpenLoopInjector(_system(), [stream],
                                  horizon=HORIZON).run()
        report = result.streams["t"]
        assert report.shed_throttled > 0
        assert report.shed_queue_full == 0
        assert report.admitted + report.shed == report.offered
        assert all(s.reason == SHED_THROTTLED for s in result.sheds)
        # sheds are recorded in arrival order with stream + seq
        assert [s.seq for s in result.sheds] == \
            sorted(s.seq for s in result.sheds)

    def test_bounded_queue_sheds_typed_queue_full(self):
        stream = TrafficStream("t", PoissonProcess(50000.0, seed=2),
                               _read_request, admission_queue=4)
        result = OpenLoopInjector(_system(), [stream],
                                  horizon=HORIZON).run()
        report = result.streams["t"]
        assert report.shed_queue_full > 0
        assert report.shed_throttled == 0
        assert all(s.reason == SHED_QUEUE_FULL for s in result.sheds)
        # completed requests still account for every admitted one
        assert report.completed == report.admitted

    def test_unbounded_queue_never_sheds(self):
        stream = TrafficStream("t", PoissonProcess(50000.0, seed=2),
                               _read_request)
        result = OpenLoopInjector(_system(), [stream],
                                  horizon=HORIZON).run()
        assert result.streams["t"].shed == 0
        assert not result.sheds

    def test_factory_called_only_for_admitted_requests(self):
        calls = []

        def factory(seq, time):
            calls.append(seq)
            return _read_request(seq, time)

        stream = TrafficStream("t", PoissonProcess(50000.0, seed=2),
                               factory, admission_queue=4)
        result = OpenLoopInjector(_system(), [stream],
                                  horizon=HORIZON).run()
        assert len(calls) == result.streams["t"].admitted


class TestOpenLoopProperty:
    def test_latency_grows_past_saturation(self):
        """The defining open-loop behaviour: offered load beyond
        capacity makes latency grow without bound instead of slowing
        the generator down (no coordinated omission)."""
        def tail(rate):
            stream = TrafficStream("t", PoissonProcess(rate, seed=3),
                                   _read_request)
            result = OpenLoopInjector(_system(), [stream],
                                      horizon=HORIZON).run()
            return result.streams["t"]

        light = tail(2000.0)
        heavy = tail(80000.0)
        assert light.p99_latency < heavy.p99_latency / 10
        assert heavy.max_latency > 10 * light.max_latency
        # goodput saturates far below the offered rate
        assert heavy.goodput_rps < heavy.offered_rate / 2
        assert light.goodput_rps == pytest.approx(light.offered_rate,
                                                  rel=0.05)

    def test_requests_execute_at_arrival_time(self):
        stream = TrafficStream("t", PoissonProcess(500.0, seed=4),
                               _read_request)
        system = _system()
        result = OpenLoopInjector(system, [stream], horizon=HORIZON).run()
        arrivals = stream.arrivals.times(HORIZON)
        executed = [op for op in system.scheduler.executed
                    if op.stream == "t"]
        assert [op.submit_time for op in executed] == arrivals

    def test_request_fanout_counts_ops_not_requests(self):
        def fanout(seq, _time):
            return [TileOp.read("d", ((seq * 3) % N, 0), (1, N)),
                    TileOp.read("d", ((seq * 3 + 1) % N, 0), (1, N))]

        stream = TrafficStream("t", PoissonProcess(1000.0, seed=5),
                               fanout)
        result = OpenLoopInjector(_system(), [stream],
                                  horizon=HORIZON).run()
        report = result.streams["t"]
        assert report.ops == 2 * report.completed
        assert report.useful_bytes == report.ops * N


class TestDeterminismAndAccounting:
    def test_two_runs_identical(self):
        def run():
            streams = [
                TrafficStream("a", PoissonProcess(3000.0, seed=6),
                              _read_request, admission_queue=8),
                TrafficStream("b", PoissonProcess(1500.0, seed=7),
                              _read_request, token_rate=1000.0),
            ]
            result = OpenLoopInjector(_system(), streams,
                                      horizon=HORIZON).run()
            return {name: report.to_dict()
                    for name, report in result.streams.items()}

        assert run() == run()

    def test_multi_stream_reports_are_separate(self):
        streams = [
            TrafficStream("a", PoissonProcess(2000.0, seed=8),
                          _read_request),
            TrafficStream("b", PoissonProcess(1000.0, seed=9),
                          _read_request),
        ]
        result = OpenLoopInjector(_system(), streams,
                                  horizon=HORIZON).run()
        assert result.streams["a"].offered > result.streams["b"].offered
        assert result.offered == (result.streams["a"].offered
                                  + result.streams["b"].offered)
        assert result.goodput_rps > 0

    def test_metrics_and_trace_marks(self):
        metrics = MetricsRegistry()
        trace = TraceRecorder()
        stream = TrafficStream("t", PoissonProcess(5000.0, seed=10),
                               _read_request, token_rate=1000.0)
        system = _system()
        result = OpenLoopInjector(system, [stream], horizon=HORIZON,
                                  trace=trace, metrics=metrics,
                                  marks=4).run()
        report = result.streams["t"]
        counters = metrics.snapshot()["counters"]
        assert counters["traffic.offered"] == report.offered
        assert counters["traffic.admitted"] == report.admitted
        assert counters["traffic.shed_throttled"] == report.shed_throttled
        marks = [s for s in trace.spans
                 if s.instant and s.name == "offered_load"]
        assert len(marks) >= 4

    def test_failed_requests_counted_not_raised(self):
        faults = FaultConfig(
            parity=False, plan=FaultPlan().corrupt_page(0, 0, 0, 0,
                                                        at=0.0001))
        system = BaselineSystem(TINY_TEST, store_data=True, faults=faults)
        data = np.random.default_rng(1).integers(
            0, 256, size=(N, N), dtype=np.uint8)
        system.ingest("d", (N, N), 1, data=data)
        system.reset_time()
        # every request reads row 0 — the corrupted page
        stream = TrafficStream("t", PoissonProcess(2000.0, seed=11),
                               lambda seq, t: TileOp.read("d", (0, 0),
                                                          (1, N)))
        result = OpenLoopInjector(system, [stream], horizon=HORIZON).run()
        report = result.streams["t"]
        assert report.failed > 0
        assert report.completed + report.failed == report.admitted

    def test_report_rates(self):
        stream = TrafficStream("t", PoissonProcess(2000.0, seed=12),
                               _read_request)
        result = OpenLoopInjector(_system(), [stream],
                                  horizon=HORIZON).run()
        report = result.streams["t"]
        assert report.offered_rate == pytest.approx(
            report.offered / HORIZON)
        span = max(HORIZON, report.makespan)
        assert report.goodput_rps == pytest.approx(
            report.completed / span)
        assert report.shed_rate == 0.0

    def test_validation(self):
        stream = TrafficStream("t", PoissonProcess(100.0), _read_request)
        with pytest.raises(ValueError):
            OpenLoopInjector(_system(), [stream], horizon=0.0)
        with pytest.raises(ValueError):
            OpenLoopInjector(_system(), [], horizon=1.0)
        with pytest.raises(ValueError):
            OpenLoopInjector(_system(), [stream, stream], horizon=1.0)
        with pytest.raises(ValueError):
            TrafficStream("t", PoissonProcess(100.0), _read_request,
                          admission_queue=0)
