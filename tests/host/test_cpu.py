"""Tests for the host CPU cost model."""

import pytest

from repro.host import HostCpu, MemoryModel


class TestIssueLine:
    def test_issue_costs_serialize(self):
        cpu = HostCpu(per_io_cost=2e-6)
        first = cpu.issue_io(0.0)
        second = cpu.issue_io(0.0)
        assert first == pytest.approx(2e-6)
        assert second == pytest.approx(4e-6)

    def test_issue_work(self):
        cpu = HostCpu()
        end = cpu.run_issue_work(1.0, 5e-6)
        assert end == pytest.approx(1.0 + 5e-6)

    def test_stats(self):
        cpu = HostCpu()
        cpu.issue_io(0.0)
        cpu.issue_io(0.0)
        assert cpu.stats.get_count("host_ios") == 2


class TestCopyLine:
    def test_copies_use_memory_model(self):
        memory = MemoryModel(copy_bandwidth=1e9, per_copy_overhead=0.0)
        cpu = HostCpu(memory=memory)
        end = cpu.copy(1000, 0.0)
        assert end == pytest.approx(1e-6)

    def test_copies_do_not_block_issue(self):
        cpu = HostCpu(per_io_cost=1e-6)
        cpu.copy(10**9, 0.0)  # long copy on the copy core
        assert cpu.issue_io(0.0) == pytest.approx(1e-6)

    def test_multiple_copy_cores(self):
        memory = MemoryModel(copy_bandwidth=1e9, per_copy_overhead=0.0)
        one = HostCpu(memory=memory, copy_cores=1)
        two = HostCpu(memory=memory, copy_cores=2)
        one.copy(10**6, 0.0)
        end_one = one.copy(10**6, 0.0)
        two.copy(10**6, 0.0)
        end_two = two.copy(10**6, 0.0)
        assert end_two < end_one

    def test_stats_track_bytes(self):
        cpu = HostCpu()
        cpu.copy(1234, 0.0)
        assert cpu.stats.get_count("host_copied_bytes") == 1234


def test_reset_time():
    cpu = HostCpu()
    cpu.issue_io(0.0)
    cpu.copy(1000, 0.0)
    cpu.reset_time()
    assert cpu.issue_line.free_at == 0.0
    assert cpu.copy_lines.max_free_at() == 0.0


def test_negative_per_io_rejected():
    with pytest.raises(ValueError):
        HostCpu(per_io_cost=-1.0)
