"""Arrival-process gates: golden streams per seed, determinism, shape.

The golden ``float.hex`` prefixes pin the exact per-seed streams —
CPython's Mersenne Twister is part of the language spec, so these must
never drift across platforms or refactors (the open-loop experiments'
byte-stable JSON depends on it).
"""

from __future__ import annotations

import math

import pytest

from repro.traffic import DiurnalProcess, MmppProcess, PoissonProcess

HORIZON = 0.05

# first five arrivals of each process at seed 42, float.hex()
GOLDEN = {
    "poisson": ['0x1.0b67164b908f1p-10', '0x1.120ae06fbf35ep-10',
                '0x1.665ab3c8a38f7p-10', '0x1.a891796947466p-10',
                '0x1.8314ae8993f36p-9'],
    "mmpp": ['0x1.099795a74a0fcp-14', '0x1.c6c213715f01cp-11',
             '0x1.88e9f7ca48ca3p-10', '0x1.3cb96c3cbe96dp-8',
             '0x1.f5ba5f191b4d6p-8'],
    "diurnal": ['0x1.4e40dbde74b2dp-11', '0x1.b7a4a40d9222cp-11',
                '0x1.b6514050f575ap-10', '0x1.919e3e174f299p-9',
                '0x1.be839a8153c6fp-9'],
}
GOLDEN_COUNTS = {"poisson": 60, "mmpp": 41, "diurnal": 47}


def _processes(seed: int = 42):
    return {
        "poisson": PoissonProcess(1000.0, seed=seed),
        "mmpp": MmppProcess((400.0, 1600.0), (0.01, 0.01), seed=seed),
        "diurnal": DiurnalProcess(1000.0, period=0.02, amplitude=0.6,
                                  seed=seed),
    }


@pytest.mark.parametrize("kind", sorted(GOLDEN))
def test_golden_streams_per_seed(kind):
    times = _processes()[kind].times(HORIZON)
    assert len(times) == GOLDEN_COUNTS[kind]
    assert [t.hex() for t in times[:5]] == GOLDEN[kind]


@pytest.mark.parametrize("kind", sorted(GOLDEN))
def test_streams_are_deterministic_and_reusable(kind):
    proc = _processes()[kind]
    first = proc.times(HORIZON)
    # times() builds a fresh private RNG per call: same object, same
    # stream — and a same-seed sibling matches exactly
    assert proc.times(HORIZON) == first
    assert _processes()[kind].times(HORIZON) == first
    assert _processes(seed=43)[kind].times(HORIZON) != first


@pytest.mark.parametrize("kind", sorted(GOLDEN))
def test_streams_are_sorted_within_horizon(kind):
    times = _processes()[kind].times(HORIZON)
    assert all(0.0 <= t < HORIZON for t in times)
    assert times == sorted(times)


def test_poisson_mean_rate_statistics():
    # 200k expected arrivals: the sample mean must sit within ~1 %
    times = PoissonProcess(2000.0, seed=7).times(100.0)
    rate = len(times) / 100.0
    assert rate == pytest.approx(2000.0, rel=0.02)


def test_mmpp_exact_states_bound_the_rate():
    proc = MmppProcess((400.0, 1600.0), (0.01, 0.01), seed=7)
    assert proc.mean_rate == pytest.approx(1000.0)
    times = proc.times(50.0)
    rate = len(times) / 50.0
    # long-run mean between the state rates, near the dwell-weighted mean
    assert 400.0 < rate < 1600.0
    assert rate == pytest.approx(proc.mean_rate, rel=0.05)


def test_mmpp_is_burstier_than_poisson():
    """Index of dispersion of counts > 1 distinguishes MMPP bursts."""
    def dispersion(times, horizon, bins):
        width = horizon / bins
        counts = [0] * bins
        for t in times:
            counts[min(int(t / width), bins - 1)] += 1
        mean = sum(counts) / bins
        var = sum((c - mean) ** 2 for c in counts) / bins
        return var / mean

    poisson = dispersion(PoissonProcess(1000.0, seed=3).times(20.0),
                         20.0, 400)
    mmpp = dispersion(
        MmppProcess((200.0, 1800.0), (0.05, 0.05), seed=3).times(20.0),
        20.0, 400)
    assert poisson < 1.5  # Poisson: variance ≈ mean
    assert mmpp > 2.0     # bursty: clearly over-dispersed


def test_diurnal_rate_modulation_shows_in_counts():
    proc = DiurnalProcess(1000.0, period=10.0, amplitude=0.8, seed=5)
    times = proc.times(10.0)
    peak_window = [t for t in times if 1.5 <= t < 3.5]    # sin ≈ +1
    trough_window = [t for t in times if 6.5 <= t < 8.5]  # sin ≈ -1
    assert len(peak_window) > 3 * len(trough_window)
    assert proc.rate_at(2.5) == pytest.approx(1800.0)
    assert proc.rate_at(7.5) == pytest.approx(200.0)
    assert min(proc.rate_at(t / 100) for t in range(1000)) >= 0.0


@pytest.mark.parametrize("kind", sorted(GOLDEN))
def test_scaled_preserves_seed_and_scales_rate(kind):
    proc = _processes()[kind]
    double = proc.scaled(2.0)
    assert double.seed == proc.seed
    assert double.mean_rate == pytest.approx(2.0 * proc.mean_rate)
    n = len(proc.times(HORIZON))
    assert len(double.times(HORIZON)) == pytest.approx(2 * n, rel=0.5)


def test_validation():
    with pytest.raises(ValueError):
        PoissonProcess(0.0)
    with pytest.raises(ValueError):
        MmppProcess((100.0,), (0.01,))
    with pytest.raises(ValueError):
        MmppProcess((100.0, 200.0), (0.01,))
    with pytest.raises(ValueError):
        MmppProcess((0.0, 0.0), (0.01, 0.01))
    with pytest.raises(ValueError):
        MmppProcess((100.0, 200.0), (0.0, 0.01))
    with pytest.raises(ValueError):
        DiurnalProcess(100.0, period=0.0)
    with pytest.raises(ValueError):
        DiurnalProcess(100.0, period=1.0, amplitude=1.0)
    with pytest.raises(ValueError):
        DiurnalProcess(0.0, period=1.0)


def test_mean_rate_definitions():
    assert PoissonProcess(123.0).mean_rate == 123.0
    assert DiurnalProcess(55.0, period=1.0).mean_rate == 55.0
    mmpp = MmppProcess((100.0, 300.0), (0.03, 0.01))
    expected = (100.0 * 0.03 + 300.0 * 0.01) / 0.04
    assert mmpp.mean_rate == pytest.approx(expected)
