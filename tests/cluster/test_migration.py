"""Online extent migration and hot-shard rebalancing."""

import numpy as np
import pytest

from repro.cluster import RebalancePolicy
from repro.nvm import TINY_TEST
from repro.systems import SoftwareNdsSystem

N = 64


def _system(**kwargs):
    return SoftwareNdsSystem(TINY_TEST, store_data=True, devices=4, **kwargs)


def _ingest(system, seed=21):
    data = np.random.default_rng(seed).integers(
        0, 2**31, size=(N, N), dtype=np.int32)
    system.ingest("M", (N, N), 4, data=data)
    return data


def test_migrate_extent_preserves_bytes():
    system = _system()
    data = _ingest(system)
    cluster = system.cluster
    layout = next(iter(cluster.layouts.values()))
    extent = layout.extents[0]
    source = extent.device
    target = next(d for d in layout.devices if d != source)
    end = cluster.migrate_extent(layout, extent, target, now=0.01)
    assert end > 0.01
    assert extent.device == target
    assert extent.generation == 1
    result = system.read_tile("M", (0, 0), (N, N), start_time=end,
                              with_data=True, dtype=np.dtype(np.int32))
    assert np.array_equal(result.data, data)
    report = system.device_report()
    assert report[f"d{source}"]["migrations_out"] == 1
    assert report[f"d{target}"]["migrations_in"] == 1


def test_migrate_validates_target():
    system = _system()
    _ingest(system)
    cluster = system.cluster
    layout = next(iter(cluster.layouts.values()))
    extent = layout.extents[0]
    with pytest.raises(ValueError, match="home"):
        cluster.migrate_extent(layout, extent, extent.device, now=0.01)
    cluster.pool.kill_now(3)
    if extent.device != 3:
        with pytest.raises(ValueError, match="dead"):
            cluster.migrate_extent(layout, extent, 3, now=0.01)


def test_migrate_stays_inside_placement_set():
    from repro.cluster import PoolShardSpec

    system = _system(extents_per_device=2)
    data = np.random.default_rng(2).integers(
        0, 2**31, size=(N, 16), dtype=np.int32)
    system.ingest("M", (N, 16), 4, data=data,
                  shard=PoolShardSpec(devices=(0, 1)))
    cluster = system.cluster
    layout = next(iter(cluster.layouts.values()))
    with pytest.raises(ValueError, match="outside"):
        cluster.migrate_extent(layout, layout.extents[0], 2, now=0.01)


def test_rebalance_moves_hot_extent():
    """Hammering one extent makes its device hot; the policy migrates
    the hot extent toward a cold device and the bytes survive."""
    policy = RebalancePolicy(check_interval=4, ratio=1.5, min_heat=2.0,
                             decay=1.0)
    system = _system(rebalance=policy)
    data = _ingest(system)
    layout = next(iter(system.cluster.layouts.values()))
    hot_extent = layout.extents[0]
    before = hot_extent.device
    now = 0.01
    for _ in range(16):
        result = system.read_tile("M", (hot_extent.row_start, 0), (16, N),
                                  start_time=now, with_data=True,
                                  dtype=np.dtype(np.int32))
        assert np.array_equal(
            result.data, data[hot_extent.row_start:hot_extent.row_start + 16])
        now = result.end_time
    counters = system.fault_counters() or {}
    assert counters.get("cluster_migrations", 0) >= 1
    assert hot_extent.generation >= 1, (
        f"hot extent never moved off d{before}")
    # full read-back still byte-exact after the move
    result = system.read_tile("M", (0, 0), (N, N), start_time=now,
                              with_data=True, dtype=np.dtype(np.int32))
    assert np.array_equal(result.data, data)


def test_rebalance_policy_validates():
    with pytest.raises(ValueError):
        RebalancePolicy(check_interval=0)
    with pytest.raises(ValueError):
        RebalancePolicy(ratio=0.5)
