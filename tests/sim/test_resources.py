"""Tests for FCFS resource timelines."""

import pytest

from repro.sim import MultiTimeline, Timeline


class TestTimeline:
    def test_back_to_back_reservations(self):
        line = Timeline("t")
        assert line.reserve(0.0, 2.0) == (0.0, 2.0)
        assert line.reserve(0.0, 3.0) == (2.0, 5.0)
        assert line.free_at == 5.0

    def test_gap_when_arrival_is_late(self):
        line = Timeline("t")
        line.reserve(0.0, 1.0)
        start, end = line.reserve(10.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_busy_time_excludes_gaps(self):
        line = Timeline("t")
        line.reserve(0.0, 1.0)
        line.reserve(5.0, 2.0)
        assert line.busy_time == pytest.approx(3.0)
        assert line.utilization(10.0) == pytest.approx(0.3)

    def test_zero_duration_allowed(self):
        line = Timeline("t")
        assert line.reserve(1.0, 0.0) == (1.0, 1.0)

    def test_negative_duration_rejected(self):
        line = Timeline("t")
        with pytest.raises(ValueError):
            line.reserve(0.0, -1.0)

    def test_peek_does_not_reserve(self):
        line = Timeline("t")
        line.reserve(0.0, 4.0)
        assert line.peek(1.0) == 4.0
        assert line.free_at == 4.0

    def test_reset(self):
        line = Timeline("t")
        line.reserve(0.0, 4.0)
        line.reset()
        assert line.free_at == 0.0
        assert line.busy_time == 0.0
        assert line.ops == 0

    def test_utilization_clamps_to_one(self):
        line = Timeline("t")
        line.reserve(0.0, 5.0)
        assert line.utilization(1.0) == 1.0

    def test_utilization_of_empty_horizon(self):
        assert Timeline("t").utilization(0.0) == 0.0


class TestMultiTimeline:
    def test_dispatches_to_earliest_available(self):
        pool = MultiTimeline(2, "p")
        s1, e1, i1 = pool.reserve(0.0, 5.0)
        s2, e2, i2 = pool.reserve(0.0, 5.0)
        s3, e3, i3 = pool.reserve(0.0, 5.0)
        assert (s1, s2) == (0.0, 0.0)
        assert i1 != i2
        assert s3 == 5.0  # both busy until 5

    def test_reserve_on_pins_a_server(self):
        pool = MultiTimeline(3, "p")
        pool.reserve_on(1, 0.0, 4.0)
        start, _end = pool.reserve_on(1, 0.0, 1.0)
        assert start == 4.0

    def test_needs_at_least_one_server(self):
        with pytest.raises(ValueError):
            MultiTimeline(0)

    def test_aggregate_utilization(self):
        pool = MultiTimeline(2, "p")
        pool.reserve(0.0, 4.0)
        assert pool.utilization(4.0) == pytest.approx(0.5)
        assert pool.busy_time() == pytest.approx(4.0)

    def test_reset(self):
        pool = MultiTimeline(2, "p")
        pool.reserve(0.0, 4.0)
        pool.reset()
        assert pool.max_free_at() == 0.0
