"""The flash array: functional page store + timed operation scheduling.

This is the lowest substrate layer. It models:

* **Structure** — channels × banks × blocks × pages (:class:`Geometry`).
* **Timing** — FCFS scheduling over per-bank and per-channel
  :class:`~repro.sim.resources.Timeline` servers. A read occupies the
  bank for ``t_read`` and then the channel for the page transfer; a
  program transfers over the channel first and then occupies the bank
  for ``t_program``. Banks behind one channel pipeline naturally; this
  reproduces the channel-level and bank-level parallelism the paper's
  STL exploits (§2.1, §4.1).
* **Semantics** — program-once/erase-block NAND rules. Programming a
  page that is already programmed raises; erases reset a whole block.
  This keeps the FTL and the STL honest.
* **Data** — optional byte-accurate page contents (numpy ``uint8``
  arrays) so that every higher layer can be verified functionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.faults.errors import (EraseFailError, ProgramFailError,
                                 UncorrectableError)
from repro.nvm.address import PhysicalPageAddress, ppa_to_index
from repro.nvm.geometry import Geometry
from repro.nvm.timing import NvmTiming
from repro.sim.resources import Timeline
from repro.sim.stats import StatSet

__all__ = ["FlashArray", "FlashOpResult", "FlashStateError", "EccError"]


class FlashStateError(RuntimeError):
    """Violation of NAND program/erase semantics."""


def _page_checksum(page: "np.ndarray") -> int:
    """Cheap ECC stand-in: XOR-fold of the page's 32-bit words."""
    words = page[: (page.size // 4) * 4].view(np.uint32)
    folded = int(np.bitwise_xor.reduce(words)) if words.size else 0
    return folded ^ int(page[(page.size // 4) * 4:].sum())


class EccError(RuntimeError):
    """Uncorrectable bit error detected on a page read.

    Real NAND pages carry ECC in their out-of-band area; the model keeps
    a checksum per programmed page and raises when a read encounters
    injected corruption — the hook for failure-injection tests."""


@dataclass
class FlashOpResult:
    """Outcome of a batch of page operations.

    ``start_time`` is when the batch was issued, ``end_time`` when the
    last page finished. ``completions`` holds per-page completion times
    in issue order.
    """

    start_time: float
    end_time: float
    completions: List[float] = field(default_factory=list)
    stats: StatSet = field(default_factory=StatSet)

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time


class FlashArray:
    """A multi-channel, multi-bank NVM array.

    Parameters
    ----------
    geometry, timing:
        Structure and latency parameters.
    store_data:
        When True (default) page contents are kept and NAND semantics
        are enforced; timing-only mode skips both for speed.
    """

    def __init__(self, geometry: Geometry, timing: NvmTiming,
                 store_data: bool = True) -> None:
        self.geometry = geometry
        self.timing = timing
        self.store_data = store_data
        self.channel_lines = [Timeline(f"ch{c}") for c in range(geometry.channels)]
        self.bank_lines = [
            [Timeline(f"ch{c}/bk{b}") for b in range(geometry.banks_per_channel)]
            for c in range(geometry.channels)
        ]
        self._pages: Dict[int, np.ndarray] = {}
        self._programmed: set = set()
        #: page-index -> checksum of the programmed content (the ECC
        #: model); pages whose content diverges raise on verified reads
        self._checksums: Dict[int, int] = {}
        self.stats = StatSet()
        #: optional per-layer span recorder (set via the owning
        #: system's ``set_trace``): records channel/bank occupancy
        self.trace = None
        #: optional metrics registry (set via ``set_metrics``)
        self.metrics = None
        #: optional :class:`~repro.faults.injector.FaultInjector`; with
        #: None (default) every path is bit-identical to the fault-free
        #: model — no bookkeeping, no draws, no extra reservations
        self.faults = None
        #: batched fan-out switch: when True (default) and no faults /
        #: trace / metrics are attached, read and program batches run an
        #: inlined reserve chain that performs the exact same float
        #: operations in the exact same order as the per-page path —
        #: bit-identical timings, a fraction of the interpreter work.
        #: Set False to force the per-page path (A/B equivalence tests).
        self.fast_path = True

    def attach_faults(self, injector) -> None:
        """Attach a fault injector (None detaches). Attach before any
        timed operations so wear/retention bookkeeping is complete."""
        self.faults = injector

    # ------------------------------------------------------------------
    # functional access
    # ------------------------------------------------------------------
    def page_data(self, ppa: PhysicalPageAddress,
                  verify: bool = True) -> np.ndarray:
        """Contents of a programmed page (zero-filled if never written
        with data, e.g. timing-only programs).

        ``verify`` checks the page's ECC checksum and raises
        :class:`EccError` on injected corruption."""
        idx = ppa_to_index(ppa, self.geometry)
        data = self._pages.get(idx)
        if data is None:
            return np.zeros(self.geometry.page_size, dtype=np.uint8)
        if verify and idx in self._checksums:
            if _page_checksum(data) != self._checksums[idx]:
                raise EccError(f"uncorrectable bit error in {ppa}")
        return data

    def corrupt_page(self, ppa: PhysicalPageAddress,
                     byte_offset: int = 0) -> None:
        """Failure injection: flip bits in a programmed page's stored
        content so the next verified read raises :class:`EccError`."""
        idx = ppa_to_index(ppa, self.geometry)
        data = self._pages.get(idx)
        if data is None:
            raise FlashStateError(f"page {ppa} holds no data to corrupt")
        data[byte_offset % data.size] ^= 0xFF

    def is_programmed(self, ppa: PhysicalPageAddress) -> bool:
        return ppa_to_index(ppa, self.geometry) in self._programmed

    # ------------------------------------------------------------------
    # timed operations
    # ------------------------------------------------------------------
    def read_pages(self, ppas: Sequence[PhysicalPageAddress],
                   start_time: float = 0.0) -> FlashOpResult:
        """Read a batch of pages issued in order at ``start_time``.

        Returns per-page completion times; the scheduler exposes exactly
        as much channel/bank parallelism as the addresses allow, which
        is the effect the paper's Figures 1 and 5 are about.
        """
        result = FlashOpResult(start_time=start_time, end_time=start_time)
        if (self.fast_path and self.faults is None and self.trace is None
                and self.metrics is None):
            result.end_time = self._read_chain(ppas, start_time,
                                               result.completions)
        else:
            for ppa in ppas:
                end = self._read_one(ppa, start_time)
                result.completions.append(end)
                if end > result.end_time:
                    result.end_time = end
        result.stats.count("pages_read", len(ppas))
        self.stats.count("pages_read", len(ppas))
        return result

    def program_pages(self, ppas: Sequence[PhysicalPageAddress],
                      start_time: float = 0.0,
                      data: Optional[Sequence[Optional[np.ndarray]]] = None,
                      ) -> FlashOpResult:
        """Program a batch of pages issued in order at ``start_time``.

        ``data[i]``, when given, must be at most ``page_size`` bytes and
        is stored (zero-padded) for functional read-back.
        """
        result = FlashOpResult(start_time=start_time, end_time=start_time)
        if (self.fast_path and self.faults is None and self.trace is None
                and self.metrics is None):
            result.end_time = self._program_chain(ppas, start_time, data,
                                                  result.completions)
        else:
            for position, ppa in enumerate(ppas):
                payload = data[position] if data is not None else None
                end = self._program_one(ppa, start_time, payload)
                result.completions.append(end)
                if end > result.end_time:
                    result.end_time = end
        result.stats.count("pages_programmed", len(ppas))
        self.stats.count("pages_programmed", len(ppas))
        return result

    def erase_block(self, channel: int, bank: int, block: int,
                    start_time: float = 0.0) -> FlashOpResult:
        """Erase one block: the bank is busy for ``t_erase`` and all
        pages in the block return to the erased state."""
        faults = self.faults
        verdict = None
        if faults is not None:
            faults.advance(start_time)
            verdict = faults.erase_check((channel, bank, block))
        line = self.bank_lines[channel][bank]
        start, end = line.reserve(start_time, self.timing.t_erase)
        if verdict is not None:
            self.stats.count("erase_fails")
            faults.stats.count("erase_fails")
            raise EraseFailError(channel, bank, block, fail_time=end,
                                 reason=verdict)
        if self.store_data:
            base = PhysicalPageAddress(channel, bank, block, 0)
            base_idx = ppa_to_index(base, self.geometry)
            for offset in range(self.geometry.pages_per_block):
                self._programmed.discard(base_idx + offset)
                self._pages.pop(base_idx + offset, None)
                self._checksums.pop(base_idx + offset, None)
        if faults is not None:
            base = PhysicalPageAddress(channel, bank, block, 0)
            faults.note_erase((channel, bank, block),
                              ppa_to_index(base, self.geometry),
                              self.geometry.pages_per_block, end)
        self.stats.count("blocks_erased")
        if self.metrics is not None:
            self.metrics.observe("flash.erase", end - start)
            self.metrics.count("flash.blocks_erased")
        result = FlashOpResult(start_time=start, end_time=end, completions=[end])
        result.stats.count("blocks_erased")
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _read_chain(self, ppas: Sequence[PhysicalPageAddress],
                    start_time: float,
                    completions: Optional[List[float]] = None) -> float:
        """Batched fan-out of a read batch: the same bank→channel
        reserve chain as :meth:`_read_one` for every page, in the same
        FCFS issue order, with the Timeline bookkeeping inlined. Every
        float operation happens in the identical sequence, so timings
        are bit-identical to the per-page path. ``completions``, when
        given, receives the per-page completion times; callers that only
        need the batch end time (the engine fast path) pass None. The
        caller accounts ``pages_read`` stats."""
        timing = self.timing
        t_read = timing.t_read
        issue = start_time + timing.t_cmd
        xfer = timing.transfer_time(self.geometry.page_size)
        channel_lines = self.channel_lines
        bank_lines = self.bank_lines
        append = completions.append if completions is not None else None
        end_time = start_time
        for ppa in ppas:
            c = ppa.channel
            channel = channel_lines[c]
            bank = bank_lines[c][ppa.bank]
            if bank.observer is not None or channel.observer is not None:
                # a reservation observer is attached outside set_metrics:
                # take the instrumented path for this page
                xfer_end = self._read_one(ppa, start_time)
            else:
                read_start = bank.free_at
                if read_start < issue:
                    read_start = issue
                read_end = read_start + t_read
                bank.busy_time += t_read
                bank.ops += 1
                xfer_start = channel.free_at
                if xfer_start < read_end:
                    xfer_start = read_end
                xfer_end = xfer_start + xfer
                channel.free_at = xfer_end
                channel.busy_time += xfer
                channel.ops += 1
                # the die's page register is held until the transfer
                # drains
                bank.free_at = xfer_end
            if append is not None:
                append(xfer_end)
            if xfer_end > end_time:
                end_time = xfer_end
        return end_time

    def _program_chain(self, ppas: Sequence[PhysicalPageAddress],
                       start_time: float,
                       data: Optional[Sequence[Optional[np.ndarray]]],
                       completions: List[float]) -> float:
        """Batched fan-out of a program batch (see :meth:`_read_chain`):
        channel→bank reserve chain per page, inlined, bit-identical."""
        timing = self.timing
        t_program = timing.t_program
        issue = start_time + timing.t_cmd
        geometry = self.geometry
        xfer = timing.transfer_time(geometry.page_size)
        channel_lines = self.channel_lines
        bank_lines = self.bank_lines
        store = self.store_data
        append = completions.append
        end_time = start_time
        for position, ppa in enumerate(ppas):
            c = ppa.channel
            channel = channel_lines[c]
            bank = bank_lines[c][ppa.bank]
            if bank.observer is not None or channel.observer is not None:
                payload = data[position] if data is not None else None
                prog_end = self._program_one(ppa, start_time, payload)
                append(prog_end)
                if prog_end > end_time:
                    end_time = prog_end
                continue
            if store:
                idx = ppa_to_index(ppa, geometry)
                if idx in self._programmed:
                    raise FlashStateError(
                        f"program to already-programmed page {ppa} "
                        f"(erase first)")
                self._programmed.add(idx)
                payload = data[position] if data is not None else None
                if payload is not None:
                    page = np.zeros(geometry.page_size, dtype=np.uint8)
                    raw = np.asarray(payload, dtype=np.uint8).ravel()
                    if raw.size > geometry.page_size:
                        raise ValueError(
                            f"payload of {raw.size} B exceeds page size")
                    page[: raw.size] = raw
                    self._pages[idx] = page
                    self._checksums[idx] = _page_checksum(page)
            xfer_start = channel.free_at
            if xfer_start < issue:
                xfer_start = issue
            xfer_end = xfer_start + xfer
            channel.free_at = xfer_end
            channel.busy_time += xfer
            channel.ops += 1
            prog_start = bank.free_at
            if prog_start < xfer_end:
                prog_start = xfer_end
            prog_end = prog_start + t_program
            bank.free_at = prog_end
            bank.busy_time += t_program
            bank.ops += 1
            append(prog_end)
            if prog_end > end_time:
                end_time = prog_end
        return end_time

    def _read_one(self, ppa: PhysicalPageAddress, issue_time: float) -> float:
        faults = self.faults
        if faults is not None:
            faults.advance(issue_time)
            if faults.channel_dead(ppa.channel):
                faults.stats.count("dead_channel_reads")
                raise UncorrectableError(ppa, fail_time=issue_time,
                                         reason="channel_dead")
        channel = self.channel_lines[ppa.channel]
        bank = self.bank_lines[ppa.channel][ppa.bank]
        # The command reaches the die after t_cmd (latency only: command
        # packets are tiny and interleave with data on the bus), the die
        # senses for t_read, then the page moves over the channel bus.
        read_start, read_end = bank.reserve(issue_time + self.timing.t_cmd,
                                            self.timing.t_read)
        xfer = self.timing.transfer_time(self.geometry.page_size)
        xfer_start, xfer_end = channel.reserve(read_end, xfer)
        # The die's page register is held until the transfer drains.
        if bank.free_at < xfer_end:
            bank.free_at = xfer_end
        if self.trace is not None:
            self.trace.span(bank.name, read_start, read_end, name="nand_read")
            self.trace.span(channel.name, xfer_start, xfer_end,
                            name="page_out", bytes=self.geometry.page_size)
        if self.metrics is not None:
            self.metrics.observe("flash.nand_read", read_end - read_start)
            self.metrics.observe("flash.page_out", xfer_end - xfer_start)
            self.metrics.count("flash.pages_read")
        if faults is None:
            return xfer_end
        return self._apply_read_faults(ppa, bank, channel, xfer,
                                       read_start, xfer_end)

    def _apply_read_faults(self, ppa: PhysicalPageAddress, bank: Timeline,
                           channel: Timeline, xfer: float,
                           sense_start: float, first_end: float) -> float:
        """Walk the ECC read-retry ladder: each retry re-senses at a
        tuned reference voltage (longer than a default sense) and moves
        the page out again so the ECC engine can re-decode."""
        idx = ppa_to_index(ppa, self.geometry)
        plan = self.faults.read_plan(
            idx, (ppa.channel, ppa.bank, ppa.block, ppa.page), sense_start)
        end = first_end
        for factor in plan.sense_factors:
            retry_start, retry_end = bank.reserve(end,
                                                  self.timing.t_read * factor)
            xfer_start, xfer_end = channel.reserve(retry_end, xfer)
            if bank.free_at < xfer_end:
                bank.free_at = xfer_end
            if self.trace is not None:
                self.trace.span(bank.name, retry_start, retry_end,
                                name="read_retry")
                self.trace.span(channel.name, xfer_start, xfer_end,
                                name="page_out_retry",
                                bytes=self.geometry.page_size)
            if self.metrics is not None:
                self.metrics.observe("flash.read_retry",
                                     retry_end - retry_start)
            end = xfer_end
        if plan.retries:
            self.stats.count("read_retries", plan.retries)
            self.faults.stats.count("read_retries", plan.retries)
            if self.metrics is not None:
                self.metrics.count("flash.read_retries", plan.retries)
        if plan.uncorrectable:
            self.stats.count("uncorrectable_reads")
            self.faults.stats.count("uncorrectable_reads")
            raise UncorrectableError(ppa, fail_time=end,
                                     retries=plan.retries,
                                     reason=plan.reason)
        return end

    def _program_one(self, ppa: PhysicalPageAddress, issue_time: float,
                     payload: Optional[np.ndarray]) -> float:
        faults = self.faults
        verdict = None
        if faults is not None:
            faults.advance(issue_time)
            idx = ppa_to_index(ppa, self.geometry)
            verdict = faults.program_check(
                idx, (ppa.channel, ppa.bank, ppa.block, ppa.page))
        if self.store_data and verdict is None:
            idx = ppa_to_index(ppa, self.geometry)
            if idx in self._programmed:
                raise FlashStateError(
                    f"program to already-programmed page {ppa} (erase first)")
            self._programmed.add(idx)
            if payload is not None:
                page = np.zeros(self.geometry.page_size, dtype=np.uint8)
                raw = np.asarray(payload, dtype=np.uint8).ravel()
                if raw.size > self.geometry.page_size:
                    raise ValueError(
                        f"payload of {raw.size} B exceeds page size")
                page[: raw.size] = raw
                self._pages[idx] = page
                self._checksums[idx] = _page_checksum(page)
        channel = self.channel_lines[ppa.channel]
        bank = self.bank_lines[ppa.channel][ppa.bank]
        xfer = self.timing.transfer_time(self.geometry.page_size)
        xfer_start, xfer_end = channel.reserve(issue_time + self.timing.t_cmd,
                                               xfer)
        prog_start, prog_end = bank.reserve(xfer_end, self.timing.t_program)
        if self.trace is not None:
            self.trace.span(channel.name, xfer_start, xfer_end,
                            name="page_in", bytes=self.geometry.page_size)
            self.trace.span(bank.name, prog_start, prog_end,
                            name="nand_program")
        if self.metrics is not None:
            self.metrics.observe("flash.page_in", xfer_end - xfer_start)
            self.metrics.observe("flash.nand_program", prog_end - prog_start)
            self.metrics.count("flash.pages_programmed")
        if verdict is not None:
            # the attempt cost real bus and array time before the status
            # register reported the failure
            self.stats.count("program_fails")
            faults.stats.count("program_fails")
            raise ProgramFailError(ppa, fail_time=prog_end, reason=verdict)
        if faults is not None:
            faults.note_program(ppa_to_index(ppa, self.geometry), prog_end)
        return prog_end

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def channel_utilization(self, horizon: float) -> List[float]:
        return [line.utilization(horizon) for line in self.channel_lines]

    def reset_time(self) -> None:
        """Reset all timelines to t=0 (page contents are preserved)."""
        for line in self.channel_lines:
            line.reset()
        for bank_row in self.bank_lines:
            for line in bank_row:
                line.reset()
        if self.faults is not None:
            self.faults.note_time_reset()
