"""Bounded message-queue pipelines.

§5.3.2: the NDS controller's pipeline elements "use a message-passing
interface with dedicated message-queue pairs between each neighboring
element to avoid locking and race conditions". Finite queues introduce
*backpressure*: a stage that finishes an item cannot hand it over while
the downstream queue is full, and stalls (production blocking).

:func:`bounded_pipeline` schedules items through such a pipeline; with
infinite queues it reduces exactly to
:func:`repro.host.pipeline.run_pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["BoundedPipelineResult", "bounded_pipeline"]


@dataclass
class BoundedPipelineResult:
    """Schedule of a pipeline with finite inter-stage queues."""

    total_time: float
    stage_busy: List[float]
    #: time each stage spent blocked on a full downstream queue
    stage_blocked: List[float]
    finish_times: List[List[float]] = field(repr=False,
                                            default_factory=list)


def bounded_pipeline(stage_times: Sequence[Sequence[float]],
                     queue_capacities: Optional[Sequence[int]] = None,
                     ) -> BoundedPipelineResult:
    """Schedule ``items × stages`` through bounded queues.

    ``queue_capacities[s]`` bounds the queue in front of stage ``s+1``
    (length ``stages - 1``; None = unbounded everywhere). An item
    departs stage ``s`` when the downstream queue has a free slot —
    i.e. when item ``i - capacity`` has *entered* stage ``s+1``.
    """
    items = len(stage_times)
    if items == 0:
        return BoundedPipelineResult(0.0, [], [], [])
    stages = len(stage_times[0])
    for row in stage_times:
        if len(row) != stages:
            raise ValueError("ragged stage_times")
    if queue_capacities is None:
        capacities: List[Optional[int]] = [None] * max(0, stages - 1)
    else:
        capacities = list(queue_capacities)
        if len(capacities) != stages - 1:
            raise ValueError("need one queue capacity per stage boundary")
        for capacity in capacities:
            if capacity is not None and capacity < 1:
                raise ValueError("queue capacity must be >= 1")

    enter = [[0.0] * stages for _ in range(items)]
    depart = [[0.0] * stages for _ in range(items)]
    busy = [0.0] * stages
    blocked = [0.0] * stages
    for i in range(items):
        for s in range(stages):
            ready = depart[i][s - 1] if s > 0 else 0.0
            stage_free = depart[i - 1][s] if i > 0 else 0.0
            start = max(ready, stage_free)
            finish = start + stage_times[i][s]
            if stage_times[i][s] < 0:
                raise ValueError("negative stage duration")
            busy[s] += stage_times[i][s]
            # departure: wait for downstream queue space
            leave = finish
            if s < stages - 1:
                capacity = capacities[s]
                if capacity is not None and i >= capacity:
                    # slot frees when item (i - capacity) enters stage s+1
                    leave = max(leave, enter[i - capacity][s + 1])
            blocked[s] += leave - finish
            enter[i][s] = start
            depart[i][s] = leave
    total = depart[-1][-1]
    return BoundedPipelineResult(total_time=total, stage_busy=busy,
                                 stage_blocked=blocked,
                                 finish_times=depart)
