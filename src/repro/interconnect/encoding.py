"""Binary encoding of the NDS/NVMe command extension (§5.3.1).

The paper's wire format, reproduced faithfully:

* a standard 64-byte NVMe submission-queue entry;
* extended commands set a **reserved bit in the first 64-bit command
  word** to distinguish themselves from conventional commands;
* for extended reads/writes "the second 64-bit command word points to
  a memory page that contains the coordinates and sub-dimensionality
  from the application's perspective" — with 4 KB pages one page holds
  up to 32 dimensions of 2**64 elements each;
* ``open_space`` carries a pointer to a page listing the space's
  dimensionality and returns a 64-bit identifier.

A device receiving a conventional command (extension bit clear) treats
it as a one-dimensional request — backwards compatibility is free.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.interconnect.nvme import MAX_DIMENSIONS, NVME_LIMITS, NvmeOpcode

__all__ = ["SQE_BYTES", "COORDINATE_PAGE_BYTES", "EXTENSION_BIT",
           "OPCODE_VALUES", "EncodedCommand", "encode_command",
           "decode_command", "encode_coordinate_page",
           "decode_coordinate_page", "encode_dimensionality_page",
           "decode_dimensionality_page"]

#: NVMe submission queue entry size
SQE_BYTES = 64
#: host memory page carrying coordinates / dimensionality
COORDINATE_PAGE_BYTES = 4096
#: the reserved bit in the first 64-bit command word that flags an
#: extended command
EXTENSION_BIT = 1 << 15

#: opcode byte values: conventional NVMe I/O opcodes, vendor-specific
#: range (0xC0+) for the NDS management commands
OPCODE_VALUES = {
    NvmeOpcode.WRITE: 0x01,
    NvmeOpcode.READ: 0x02,
    NvmeOpcode.TRIM: 0x09,       # dataset management
    NvmeOpcode.ND_WRITE: 0x01,   # same opcodes, extension bit set
    NvmeOpcode.ND_READ: 0x02,
    NvmeOpcode.OPEN_SPACE: 0xC0,
    NvmeOpcode.CLOSE_SPACE: 0xC1,
    NvmeOpcode.DELETE_SPACE: 0xC2,
}
_VALUE_TO_EXT_OPCODE = {
    (0x01, True): NvmeOpcode.ND_WRITE,
    (0x02, True): NvmeOpcode.ND_READ,
    (0x01, False): NvmeOpcode.WRITE,
    (0x02, False): NvmeOpcode.READ,
    (0x09, False): NvmeOpcode.TRIM,
    (0xC0, True): NvmeOpcode.OPEN_SPACE,
    (0xC1, True): NvmeOpcode.CLOSE_SPACE,
    (0xC2, True): NvmeOpcode.DELETE_SPACE,
}


@dataclass(frozen=True)
class EncodedCommand:
    """One submission-queue entry plus its out-of-band payload page."""

    sqe: bytes
    payload_page: Optional[bytes] = None

    def __post_init__(self) -> None:
        if len(self.sqe) != SQE_BYTES:
            raise ValueError(f"SQE must be {SQE_BYTES} bytes")
        if (self.payload_page is not None
                and len(self.payload_page) != COORDINATE_PAGE_BYTES):
            raise ValueError(
                f"payload page must be {COORDINATE_PAGE_BYTES} bytes")


def encode_coordinate_page(coordinate: Sequence[int],
                           sub_dim: Sequence[int]) -> bytes:
    """The page the second command word points to: rank, then 32 slots
    of (coordinate, sub-dimensionality) pairs as unsigned 64-bit."""
    NVME_LIMITS.validate_dimensionality(sub_dim)
    if len(coordinate) != len(sub_dim):
        raise ValueError("coordinate and sub-dimensionality ranks differ")
    rank = len(coordinate)
    page = bytearray(COORDINATE_PAGE_BYTES)
    struct.pack_into("<I", page, 0, rank)
    offset = 8
    for axis in range(MAX_DIMENSIONS):
        c = coordinate[axis] if axis < rank else 0
        f = sub_dim[axis] if axis < rank else 0
        struct.pack_into("<QQ", page, offset + axis * 16,
                         c, f % 2**64)
    return bytes(page)


def decode_coordinate_page(page: bytes) -> Tuple[Tuple[int, ...],
                                                 Tuple[int, ...]]:
    if len(page) != COORDINATE_PAGE_BYTES:
        raise ValueError("coordinate page has the wrong size")
    (rank,) = struct.unpack_from("<I", page, 0)
    if not (1 <= rank <= MAX_DIMENSIONS):
        raise ValueError(f"invalid rank {rank}")
    coordinate = []
    sub_dim = []
    for axis in range(rank):
        c, f = struct.unpack_from("<QQ", page, 8 + axis * 16)
        coordinate.append(c)
        sub_dim.append(f if f != 0 else 2**64)
    return tuple(coordinate), tuple(sub_dim)


def encode_dimensionality_page(dims: Sequence[int]) -> bytes:
    """The ``open_space`` payload: rank, then 32 dimension sizes."""
    NVME_LIMITS.validate_dimensionality(dims)
    page = bytearray(COORDINATE_PAGE_BYTES)
    struct.pack_into("<I", page, 0, len(dims))
    for axis, size in enumerate(dims):
        struct.pack_into("<Q", page, 8 + axis * 8, size % 2**64)
    return bytes(page)


def decode_dimensionality_page(page: bytes) -> Tuple[int, ...]:
    if len(page) != COORDINATE_PAGE_BYTES:
        raise ValueError("dimensionality page has the wrong size")
    (rank,) = struct.unpack_from("<I", page, 0)
    if not (1 <= rank <= MAX_DIMENSIONS):
        raise ValueError(f"invalid rank {rank}")
    dims = []
    for axis in range(rank):
        (size,) = struct.unpack_from("<Q", page, 8 + axis * 8)
        dims.append(size if size != 0 else 2**64)
    return tuple(dims)


def encode_command(opcode: NvmeOpcode, space_id: int = 0,
                   coordinate: Sequence[int] = (),
                   sub_dim: Sequence[int] = (),
                   dims: Sequence[int] = (),
                   lba: int = 0, length: int = 0) -> EncodedCommand:
    """Build the 64-byte SQE (+ payload page for extended commands).

    Layout (little-endian): word0 = opcode byte | flags (bit 15 =
    extension) | space id in the upper half; word1 = payload-page
    pointer (modelled as a token); conventional commands put LBA/length
    in words 5–6 like real NVMe.
    """
    value = OPCODE_VALUES[opcode]
    flags = EXTENSION_BIT if opcode.is_extended else 0
    sqe = bytearray(SQE_BYTES)
    struct.pack_into("<HHI", sqe, 0, value, flags, space_id % 2**32)

    payload: Optional[bytes] = None
    if opcode in (NvmeOpcode.ND_READ, NvmeOpcode.ND_WRITE):
        payload = encode_coordinate_page(coordinate, sub_dim)
    elif opcode == NvmeOpcode.OPEN_SPACE:
        payload = encode_dimensionality_page(dims)
    if payload is not None:
        # the second 64-bit command word carries the page pointer; we
        # tag it with a non-zero token
        struct.pack_into("<Q", sqe, 8, 0x5D5_0000 | len(payload))
    if not opcode.is_extended:
        struct.pack_into("<QI", sqe, 40, lba, length % 2**32)
    return EncodedCommand(sqe=bytes(sqe), payload_page=payload)


def decode_command(encoded: EncodedCommand):
    """Inverse of :func:`encode_command`.

    Returns ``(opcode, space_id, details)`` where ``details`` is
    ``(coordinate, sub_dim)`` for nd I/O, ``dims`` for open_space,
    ``(lba, length)`` for conventional I/O, else None.
    """
    value, flags, space_id = struct.unpack_from("<HHI", encoded.sqe, 0)
    extended = bool(flags & EXTENSION_BIT)
    opcode = _VALUE_TO_EXT_OPCODE.get((value, extended))
    if opcode is None:
        raise ValueError(f"unknown opcode {value:#x} (extended={extended})")
    if opcode in (NvmeOpcode.ND_READ, NvmeOpcode.ND_WRITE):
        if encoded.payload_page is None:
            raise ValueError("extended I/O command lacks its payload page")
        return opcode, space_id, decode_coordinate_page(encoded.payload_page)
    if opcode == NvmeOpcode.OPEN_SPACE:
        if encoded.payload_page is None:
            raise ValueError("open_space lacks its dimensionality page")
        return opcode, space_id, decode_dimensionality_page(
            encoded.payload_page)
    if not opcode.is_extended:
        lba, length = struct.unpack_from("<QI", encoded.sqe, 40)
        return opcode, space_id, (lba, length)
    return opcode, space_id, None
