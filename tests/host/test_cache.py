"""Tests for the host page cache and its baseline-system integration."""

import pytest

from repro.host.cache import PageCache
from repro.nvm import TINY_TEST
from repro.systems import BaselineSystem


class TestPageCache:
    def test_cold_then_warm(self):
        cache = PageCache(capacity_pages=8)
        first = cache.access([1, 2, 3])
        assert first.misses == (1, 2, 3)
        second = cache.access([2, 3, 4])
        assert second.hits == (2, 3)
        assert second.misses == (4,)
        assert second.hit_ratio == pytest.approx(2 / 3)

    def test_lru_eviction(self):
        cache = PageCache(capacity_pages=2)
        cache.access([1, 2])
        cache.access([3])          # evicts 1
        outcome = cache.access([1, 2, 3])
        assert 1 in outcome.misses
        assert set(outcome.hits) <= {2, 3}

    def test_access_refreshes_recency(self):
        cache = PageCache(capacity_pages=2)
        cache.access([1, 2])
        cache.access([1])           # 1 becomes most recent
        cache.access([3])           # evicts 2, not 1
        outcome = cache.access([1, 2])
        assert outcome.hits == (1,)
        assert outcome.misses == (2,)

    def test_invalidate(self):
        cache = PageCache(capacity_pages=4)
        cache.access([1, 2])
        cache.invalidate([1])
        outcome = cache.access([1, 2])
        assert outcome.misses == (1,)

    def test_disabled_cache_never_hits(self):
        cache = PageCache(capacity_pages=0)
        cache.access([1])
        assert cache.access([1]).hits == ()
        assert cache.resident_pages == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageCache(-1)

    def test_global_hit_ratio(self):
        cache = PageCache(capacity_pages=8)
        cache.access([1, 2])
        cache.access([1, 2])
        assert cache.hit_ratio == pytest.approx(0.5)


class TestBaselineWithCache:
    def test_repeated_column_fetch_speeds_up(self):
        """§7.1: the cache serves later column requests without the SSD
        — adjacent column stripes reuse the fetched pages."""
        system = BaselineSystem(TINY_TEST, store_data=False,
                                cache_pages=10**6)
        system.ingest("m", (128, 128), 4)
        system.reset_time()
        cold = system.read_tile("m", (0, 0), (128, 16))
        system.reset_time()
        warm = system.read_tile("m", (0, 16), (128, 16))  # same pages
        assert warm.elapsed < cold.elapsed / 2
        assert system.cache.hit_count > 0

    def test_write_invalidates(self):
        system = BaselineSystem(TINY_TEST, store_data=False,
                                cache_pages=10**6)
        system.ingest("m", (64, 64), 4)
        system.reset_time()
        system.read_tile("m", (0, 0), (16, 64))
        system.write_tile("m", (0, 0), (16, 64))
        system.reset_time()
        again = system.read_tile("m", (0, 0), (16, 64))
        assert again.fetched_bytes > 0  # went back to the device

    def test_functional_mode_with_cache_rejected(self, rng):
        import numpy as np
        system = BaselineSystem(TINY_TEST, store_data=True,
                                cache_pages=100)
        data = rng.integers(0, 99, (32, 32)).astype(np.int32)
        system.ingest("m", (32, 32), 4, data=data)
        with pytest.raises(NotImplementedError):
            system.read_tile("m", (0, 0), (8, 8), with_data=True)

    def test_default_cache_disabled(self):
        system = BaselineSystem(TINY_TEST)
        assert system.cache.capacity == 0
