"""Unit tests for the seeded error model and fault plans."""

from __future__ import annotations

import pytest

from repro.faults import ErrorModel, FaultConfig, FaultEvent, FaultPlan
from repro.faults.model import stable_unit


class TestStableUnit:
    def test_deterministic_and_in_unit_interval(self):
        values = [stable_unit(1, 2, 3), stable_unit(1, 2, 3)]
        assert values[0] == values[1]
        assert 0.0 <= values[0] < 1.0

    def test_key_sensitivity(self):
        assert stable_unit(1, 2, 3) != stable_unit(1, 2, 4)
        assert stable_unit(1, 2, 3) != stable_unit(3, 2, 1)

    def test_spread(self):
        """Draws cover the unit interval roughly uniformly."""
        draws = [stable_unit(0xF417, i) for i in range(2000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55
        assert min(draws) < 0.02 and max(draws) > 0.98


class TestErrorModel:
    def test_rber_monotone_in_wear_and_retention(self):
        model = ErrorModel(FaultConfig())
        assert model.rber(100, 0.0) > model.rber(0, 0.0)
        assert model.rber(0, 1e6) > model.rber(0, 0.0)

    def test_clean_read_below_ecc_threshold(self):
        model = ErrorModel(FaultConfig())
        plan = model.read_outcome(0.5, 1e-6)
        assert plan.retries == 0 and not plan.uncorrectable

    def test_ladder_escalates_with_rber(self):
        config = FaultConfig(jitter_log2=0.0)  # no per-read jitter
        model = ErrorModel(config)
        retries = [model.read_outcome(0.5, config.ecc_rber * gain * 0.99
                                      ).retries
                   for gain in (1.0, *config.retry_rber_gain)]
        assert retries == sorted(retries)
        hopeless = model.read_outcome(
            0.5, config.ecc_rber * config.retry_rber_gain[-1] * 2)
        assert hopeless.uncorrectable
        assert hopeless.retries == len(config.retry_rber_gain)

    def test_full_ladder_is_uncorrectable(self):
        model = ErrorModel(FaultConfig())
        plan = model.full_ladder("corrupt")
        assert plan.uncorrectable and plan.reason == "corrupt"
        assert plan.retries == len(model.config.retry_rber_gain)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(rber_base=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(retry_rber_gain=(2.0,), retry_sense_factors=(1.5, 2.0))


class TestFaultPlan:
    def test_builder_chains_and_sorts(self):
        plan = (FaultPlan()
                .mark_block_bad(0, 1, 2, at=3.0)
                .kill_channel(1, at=1.0)
                .corrupt_page(2, 0, 1, 5, at=2.0))
        times = [event.time for event in plan.sorted_events()]
        assert times == sorted(times)
        assert len(plan) == 3

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "meteor_strike")
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "kill_channel", channel=0)
