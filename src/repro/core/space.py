"""Multi-dimensional address spaces (§3).

A space is defined by the three essential properties of the paper:
a **space identifier**, an **element size**, and a **dimensionality**.
On creation the STL derives the building-block dimensionality from the
device geometry (Eq. 1–4); the block grid then tiles the space.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.building_block import block_dims, pages_per_block
from repro.core.errors import InvalidCoordinateError
from repro.interconnect.nvme import NVME_LIMITS
from repro.nvm.geometry import Geometry

__all__ = ["Space"]


@dataclass
class Space:
    """One NDS address space plus its derived building-block layout.

    Attributes
    ----------
    space_id:
        The 64-bit identifier returned by ``open_space`` (§5.3.1).
    dims:
        Size of each dimension, highest order first.
    element_size:
        Bytes per element.
    bb:
        Building-block dimensionality (same rank as ``dims``).
    """

    space_id: int
    dims: Tuple[int, ...]
    element_size: int
    bb: Tuple[int, ...]
    pages_per_block: int
    open_views: int = 0
    deleted: bool = False
    _grid: Tuple[int, ...] = field(init=False)
    #: memoized translation results, keyed by ``(origin, extents)`` /
    #: ``block_slice``. Both caches are pure functions of the geometry
    #: fields above, so they never need churn invalidation; ``resize``
    #: builds a fresh Space, which starts with empty caches. Ordered so
    #: the translator can evict the least-recently-used entry when a
    #: cache reaches the capacity limit.
    _region_cache: OrderedDict = field(init=False, repr=False, compare=False)
    _pages_cache: OrderedDict = field(init=False, repr=False, compare=False)
    #: per-space hit/miss counters for both memo caches (module-level
    #: ``translation_cache_stats()`` aggregates these for compat)
    _translation_stats: Dict[str, int] = field(init=False, repr=False,
                                               compare=False)

    def __post_init__(self) -> None:
        NVME_LIMITS.validate_dimensionality(self.dims)
        if self.element_size < 1:
            raise ValueError("element_size must be >= 1")
        if len(self.bb) != len(self.dims):
            raise ValueError("building-block rank must match space rank")
        self._grid = tuple(-(-d // b) for d, b in zip(self.dims, self.bb))
        self._region_cache = OrderedDict()
        self._pages_cache = OrderedDict()
        self._translation_stats = {"region_hits": 0, "region_misses": 0,
                                   "pages_hits": 0, "pages_misses": 0}

    def clear_translation_caches(self) -> None:
        """Drop this space's memoized translation results."""
        self._region_cache.clear()
        self._pages_cache.clear()

    def translation_cache_stats(self) -> Dict[str, int]:
        """This space's own hit/miss counters (independent of every
        other space, system, and pooled device)."""
        return dict(self._translation_stats)

    def reset_translation_cache_stats(self) -> None:
        for key in self._translation_stats:
            self._translation_stats[key] = 0

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, space_id: int, dims: Sequence[int], element_size: int,
               geometry: Geometry,
               bb_override: Optional[Sequence[int]] = None,
               use_3d_blocks: bool = False) -> "Space":
        """Create a space, deriving the block shape from the geometry."""
        dims = tuple(int(d) for d in dims)
        bb = block_dims(dims, element_size, geometry, override=bb_override,
                        use_3d=use_3d_blocks)
        ppb = pages_per_block(bb, element_size, geometry)
        return cls(space_id=space_id, dims=dims, element_size=element_size,
                   bb=bb, pages_per_block=ppb)

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def volume(self) -> int:
        product = 1
        for extent in self.dims:
            product *= extent
        return product

    @property
    def total_bytes(self) -> int:
        return self.volume * self.element_size

    @property
    def grid(self) -> Tuple[int, ...]:
        """Building-block grid: blocks per dimension (ceil division)."""
        return self._grid

    @property
    def total_blocks(self) -> int:
        product = 1
        for extent in self._grid:
            product *= extent
        return product

    @property
    def block_bytes(self) -> int:
        product = self.element_size
        for extent in self.bb:
            product *= extent
        return product

    # ------------------------------------------------------------------
    def validate_request(self, coordinate: Sequence[int],
                         sub_dim: Sequence[int]) -> None:
        """Check a (coordinate, sub-dimensionality) pair against bounds.

        The coordinate indexes *partitions* of the space: partition
        ``c`` spans elements ``[c_i * f_i, (c_i + 1) * f_i)`` (§3 (2)).
        """
        if len(coordinate) != self.rank or len(sub_dim) != self.rank:
            raise InvalidCoordinateError(
                f"rank mismatch: space is {self.rank}-D, request is "
                f"({len(coordinate)}, {len(sub_dim)})")
        for axis, (c, f, d) in enumerate(zip(coordinate, sub_dim, self.dims)):
            if f < 1:
                raise InvalidCoordinateError(
                    f"sub-dimension {f} on axis {axis} must be >= 1")
            if c < 0 or (c * f) >= d or (c + 1) * f > d:
                raise InvalidCoordinateError(
                    f"partition {c}×{f} on axis {axis} exceeds extent {d}")

    def request_origin(self, coordinate: Sequence[int],
                       sub_dim: Sequence[int]) -> Tuple[int, ...]:
        return tuple(c * f for c, f in zip(coordinate, sub_dim))
