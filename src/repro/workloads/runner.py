"""Pipelined end-to-end execution of workloads on a storage system.

§6.2: "Each application is pipelined so that its I/O and data
restructuring overlap with the compute kernels." The runner:

1. ingests the workload's datasets into the system (oracle systems get
   one tile-major copy per distinct fetch shape);
2. measures the isolated I/O duration of each distinct fetch shape
   (sampling a few origins — fetches of one shape are statistically
   identical);
3. schedules the tile plan through the 3-stage pipeline
   ``I/O → host-to-device copy → compute kernel`` and reports total
   latency plus the idle time before the compute kernel (Fig. 10(b)).

:func:`co_run_workloads` goes beyond the paper's single-application
setting: several workloads become tenant streams on one shared device.
Each stream submits its tile plan as
:class:`~repro.runtime.tileop.TileOp`s through the system's
:class:`~repro.runtime.scheduler.RequestScheduler` under a per-stream
queue depth; cross-tenant contention emerges from the shared resource
timelines, and per-stream I/O completions feed each workload's own
3-stage pipeline model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accelerator.gpu import GpuModel, RTX2080
from repro.accelerator.kernels import KernelModel
from repro.host.pipeline import PipelineResult, run_pipeline
from repro.runtime.qos import QosSpec
from repro.runtime.scheduler import percentile
from repro.runtime.tileop import TileOp
from repro.runtime.trace import TraceRecorder
from repro.systems.base import StorageSystem
from repro.systems.oracle import OracleSystem
from repro.workloads.base import TileFetch, Workload

__all__ = ["WorkloadRunResult", "run_workload", "speedup",
           "StreamRunResult", "CoRunResult", "co_run_workloads"]

STAGE_NAMES = ("io", "h2d", "kernel")


@dataclass
class WorkloadRunResult:
    """End-to-end outcome of one (workload, system) pair."""

    workload_name: str
    system_name: str
    total_time: float
    io_busy: float
    h2d_busy: float
    kernel_busy: float
    kernel_idle: float
    tiles: int
    pipeline: PipelineResult = field(repr=False, default=None)
    io_time_by_shape: Dict[Tuple[str, Tuple[int, ...]], float] = field(
        default_factory=dict, repr=False)

    @property
    def io_bound(self) -> bool:
        return self.io_busy >= max(self.h2d_busy, self.kernel_busy)


def speedup(baseline: WorkloadRunResult, other: WorkloadRunResult) -> float:
    """End-to-end speedup of ``other`` over ``baseline`` (Fig. 10(a))."""
    if other.total_time <= 0:
        return float("inf")
    return baseline.total_time / other.total_time


def ingest_datasets(workload: Workload, system: StorageSystem) -> None:
    """Store every dataset (oracle: one copy per distinct fetch shape)."""
    plan = workload.tile_plan()
    if isinstance(system, OracleSystem):
        shapes: Dict[str, List[Tuple[int, ...]]] = {}
        for fetch in plan:
            shapes.setdefault(fetch.dataset, [])
            if fetch.extents not in shapes[fetch.dataset]:
                shapes[fetch.dataset].append(fetch.extents)
        for ds in workload.datasets():
            for shape in shapes.get(ds.name, [ds.dims]):
                system.ingest(ds.name, ds.dims, ds.element_size, tile=shape)
        return
    for ds in workload.datasets():
        system.ingest(ds.name, ds.dims, ds.element_size)


def measure_io_times(workload: Workload, system: StorageSystem,
                     plan: Sequence[TileFetch],
                     samples: int = 4) -> Dict[Tuple[str, Tuple[int, ...]], float]:
    """Steady-state streaming I/O duration per distinct (dataset,
    extents) shape.

    Applications issue tile fetches asynchronously (double buffering),
    so consecutive fetches overlap inside the storage stack. We measure
    the *throughput increment*: ``samples`` fetches of one shape are all
    issued at t=0 against shared resource timelines; the steady per-tile
    time is the spacing between consecutive completions. (An isolated
    single-fetch latency would deny NDS — one command per tile — the
    cross-tile overlap the baseline already enjoys through its queue
    depth.)
    """
    groups: Dict[Tuple[str, Tuple[int, ...]], List[TileFetch]] = {}
    for fetch in plan:
        groups.setdefault(fetch.shape_key, []).append(fetch)
    durations: Dict[Tuple[str, Tuple[int, ...]], float] = {}
    for key, fetches in groups.items():
        count = max(2, samples)
        step = max(1, len(fetches) // count)
        picked = [fetches[(i * step) % len(fetches)] for i in range(count)]
        system.reset_time()
        ends: List[float] = []
        for fetch in picked:
            result = system.read_tile(fetch.dataset, fetch.origin,
                                      fetch.extents, start_time=0.0)
            ends.append(result.end_time)
        steady = (ends[-1] - ends[0]) / (len(ends) - 1)
        durations[key] = max(steady, 1e-9)
    return durations


@dataclass
class StreamRunResult:
    """One tenant's outcome inside a multi-workload co-run."""

    workload_name: str
    stream: str
    tiles: int
    #: last I/O completion of this stream (device-side makespan)
    io_makespan: float
    mean_io_latency: float
    max_io_latency: float
    completions: List[float] = field(repr=False, default_factory=list)
    #: 3-stage pipeline totals fed by the contended I/O completions
    total_time: float = 0.0
    kernel_idle: float = 0.0
    pipeline: PipelineResult = field(repr=False, default=None)
    #: QoS accounting (weighted arbitration / latency SLOs)
    weight: float = 1.0
    service_time: float = 0.0
    p50_io_latency: float = 0.0
    p95_io_latency: float = 0.0
    latency_target: Optional[float] = None
    slo_met: int = 0
    slo_violated: int = 0


@dataclass
class CoRunResult:
    """Outcome of several workloads sharing one storage system."""

    streams: Dict[str, StreamRunResult]
    #: end-to-end latency of the slowest tenant pipeline
    total_time: float
    #: last I/O completion over all tenants
    io_makespan: float
    arbitration: str
    queue_depth: int
    trace: Optional[TraceRecorder] = field(repr=False, default=None)
    #: per-workload QoS specs the run was configured with
    qos: Optional[Dict[str, QosSpec]] = field(repr=False, default=None)
    #: per-device accounting when the system runs over a device pool
    #: (None for single-device systems)
    devices: Optional[Dict[str, Dict[str, object]]] = field(
        repr=False, default=None)

    def stream(self, workload_name: str) -> StreamRunResult:
        return self.streams[workload_name]


def _dataset_shards(workloads: Sequence[Workload],
                    system: StorageSystem,
                    qos: Optional[Dict[str, QosSpec]]) -> Dict[str, object]:
    """Map dataset name -> shard from its owning tenants' QoS specs.

    A shared dataset must be shard-consistent across tenants; sharding
    requires an STL system (baseline/oracle have no space allocator to
    pin)."""
    shards: Dict[str, object] = {}
    if not qos:
        return shards
    for workload in workloads:
        spec = qos.get(workload.name)
        if spec is None or spec.shard is None:
            continue
        if (getattr(system, "stl", None) is None
                and getattr(system, "cluster", None) is None):
            raise ValueError(
                f"per-tenant sharding needs an STL system or a device "
                f"pool; {system.name!r} has no space allocator to pin")
        for ds in workload.datasets():
            existing = shards.get(ds.name)
            if existing is not None and existing != spec.shard:
                raise ValueError(
                    f"dataset {ds.name!r} is shared across tenants with "
                    f"conflicting shards")
            shards[ds.name] = spec.shard
    return shards


def _co_ingest(workloads: Sequence[Workload],
               system: StorageSystem,
               qos: Optional[Dict[str, QosSpec]] = None) -> None:
    """Ingest every dataset once; workloads may share datasets by name
    (identical dims/element size), the oracle gets one tile-major copy
    per distinct (dataset, fetch shape). Tenants with a QoS shard get
    their datasets pinned to that shard (STL systems only)."""
    shards = _dataset_shards(workloads, system, qos)
    if isinstance(system, OracleSystem):
        done = set()
        for workload in workloads:
            shapes: Dict[str, List[Tuple[int, ...]]] = {}
            for fetch in workload.tile_plan():
                shapes.setdefault(fetch.dataset, [])
                if fetch.extents not in shapes[fetch.dataset]:
                    shapes[fetch.dataset].append(fetch.extents)
            for ds in workload.datasets():
                for shape in shapes.get(ds.name, [ds.dims]):
                    if (ds.name, shape) in done:
                        continue
                    done.add((ds.name, shape))
                    system.ingest(ds.name, ds.dims, ds.element_size,
                                  tile=shape)
        return
    seen: Dict[str, Tuple[Tuple[int, ...], int]] = {}
    for workload in workloads:
        for ds in workload.datasets():
            signature = (ds.dims, ds.element_size)
            if ds.name in seen:
                if seen[ds.name] != signature:
                    raise ValueError(
                        f"dataset {ds.name!r} declared with conflicting "
                        f"shapes across co-run workloads")
                continue
            seen[ds.name] = signature
            if ds.name in shards:
                system.ingest(ds.name, ds.dims, ds.element_size,
                              shard=shards[ds.name])
            else:
                system.ingest(ds.name, ds.dims, ds.element_size)


def co_run_workloads(workloads: Sequence[Workload], system: StorageSystem,
                     queue_depth: int = 8,
                     arbitration: str = "round_robin",
                     gpu: GpuModel = RTX2080,
                     kernels: Optional[KernelModel] = None,
                     trace: Optional[TraceRecorder] = None,
                     ingest: bool = True,
                     qos: Optional[Dict[str, QosSpec]] = None) -> CoRunResult:
    """Run several workloads concurrently on one shared system.

    Each workload becomes a tenant stream: its whole tile plan is
    submitted at t=0 and the scheduler admits ops under ``queue_depth``
    in-flight per stream, arbitrating FIFO, round-robin or weighted
    shares across tenants. Contention is carried by the shared resource
    timelines, so per-stream latencies reflect exactly what the
    co-tenant costs. Pass a :class:`TraceRecorder` to capture the
    per-layer Chrome trace of the co-run (ingest is excluded from the
    trace).

    ``qos`` maps workload names to :class:`~repro.runtime.qos.QosSpec`:
    the spec's ``weight`` feeds ``"weighted"`` arbitration, its
    ``latency_target`` arms per-op SLO accounting, and its ``shard``
    pins the tenant's datasets to a disjoint channel/bank subset
    (STL systems only — hard isolation).
    """
    if arbitration not in ("fifo", "round_robin", "weighted"):
        raise ValueError(f"unknown arbitration {arbitration!r}")
    workloads = list(workloads)
    names = [workload.name for workload in workloads]
    if len(set(names)) != len(names):
        raise ValueError("co-run workloads must have distinct names")
    qos = dict(qos) if qos else {}
    unknown = set(qos) - set(names)
    if unknown:
        raise ValueError(f"qos specs for unknown workloads: {sorted(unknown)}")
    kernels = kernels if kernels is not None else KernelModel(gpu)
    if ingest:
        _co_ingest(workloads, system, qos)
    system.reset_time()
    if trace is not None:
        system.set_trace(trace)

    scheduler = system.scheduler
    scheduler.arbitration = arbitration
    for workload in workloads:
        spec = qos.get(workload.name)
        scheduler.stream(workload.name, queue_depth,
                         weight=spec.weight if spec else None,
                         latency_target=spec.latency_target if spec else None)
        for fetch in workload.tile_plan():
            scheduler.submit(TileOp.read(fetch.dataset, fetch.origin,
                                         fetch.extents, submit_time=0.0,
                                         stream=workload.name))
    scheduler.drain()

    streams: Dict[str, StreamRunResult] = {}
    for workload in workloads:
        handle = scheduler.streams[workload.name]
        completions = handle.completions
        latencies = handle.latencies
        plan = workload.tile_plan()
        stage_times: List[List[float]] = []
        previous = 0.0
        for fetch, completion in zip(plan, completions):
            io = max(completion - previous, 0.0)
            previous = completion
            stage_times.append([io, gpu.h2d_time(workload.tile_bytes(fetch)),
                                workload.kernel_time(kernels, fetch)])
        pipeline = run_pipeline(stage_times, STAGE_NAMES, trace=trace,
                                stream=workload.name)
        streams[workload.name] = StreamRunResult(
            workload_name=workload.name,
            stream=workload.name,
            tiles=len(plan),
            io_makespan=handle.makespan,
            mean_io_latency=handle.mean_latency,
            max_io_latency=max(latencies) if latencies else 0.0,
            completions=completions,
            total_time=pipeline.total_time,
            kernel_idle=pipeline.idle_of("kernel"),
            pipeline=pipeline,
            weight=handle.weight,
            service_time=handle.service_time,
            p50_io_latency=percentile(latencies, 0.50),
            p95_io_latency=percentile(latencies, 0.95),
            latency_target=handle.latency_target,
            slo_met=handle.slo_met,
            slo_violated=handle.slo_violated,
        )
    return CoRunResult(
        streams=streams,
        total_time=max((s.total_time for s in streams.values()), default=0.0),
        io_makespan=max((s.io_makespan for s in streams.values()),
                        default=0.0),
        arbitration=arbitration,
        queue_depth=queue_depth,
        trace=trace,
        qos=qos or None,
        devices=scheduler.device_report(),
    )


def run_workload(workload: Workload, system: StorageSystem,
                 gpu: GpuModel = RTX2080,
                 kernels: Optional[KernelModel] = None,
                 samples: int = 3,
                 ingest: bool = True) -> WorkloadRunResult:
    """Execute one workload end to end on one system (timing model)."""
    kernels = kernels if kernels is not None else KernelModel(gpu)
    if ingest:
        ingest_datasets(workload, system)
    plan = workload.tile_plan()
    io_times = measure_io_times(workload, system, plan, samples=samples)
    stage_times: List[List[float]] = []
    for fetch in plan:
        io = io_times[fetch.shape_key]
        h2d = gpu.h2d_time(workload.tile_bytes(fetch))
        kernel = workload.kernel_time(kernels, fetch)
        stage_times.append([io, h2d, kernel])
    pipeline = run_pipeline(stage_times, STAGE_NAMES)
    return WorkloadRunResult(
        workload_name=workload.name,
        system_name=system.name,
        total_time=pipeline.total_time,
        io_busy=pipeline.busy_of("io"),
        h2d_busy=pipeline.busy_of("h2d"),
        kernel_busy=pipeline.busy_of("kernel"),
        kernel_idle=pipeline.idle_of("kernel"),
        tiles=len(plan),
        pipeline=pipeline,
        io_time_by_shape=io_times,
    )
