"""Open-loop injection of arrival-driven traffic into the request spine.

A :class:`TrafficStream` binds one tenant to an arrival process and a
request factory; the :class:`OpenLoopInjector` replays the merged
arrival schedule against one storage system. Each admitted request is
executed through the system's
:class:`~repro.runtime.scheduler.RequestScheduler` on an **ungated**
stream at its arrival timestamp — *not* completion-gated, so when
arrivals outpace service capacity the shared resource timelines back
up and latencies grow without bound. That is the defining open-loop
property; closed-loop harnesses (bounded queue depth) silently slow
their own offered load down at saturation and under-report tails
(coordinated omission).

Admission control sits in front of the spine:

* a per-stream :class:`TokenBucket` rate-limits admissions (requests
  above the configured rate are shed with reason
  :data:`SHED_THROTTLED`);
* a bounded **admission queue** sheds when too many admitted requests
  are still in flight at a new arrival (:data:`SHED_QUEUE_FULL`) —
  the backpressure a real frontend applies instead of queueing
  unboundedly.

Every shed is a typed :class:`ShedRecord`; per-stream totals, goodput
and latency tails (p50/p99/p999) land in :class:`StreamTrafficReport`.
With a metrics registry attached the injector counts
``traffic.offered`` / ``traffic.admitted`` / ``traffic.shed_throttled``
/ ``traffic.shed_queue_full`` / ``traffic.failed`` and observes
``traffic.backlog``; with a trace recorder it emits ``offered_load``
instant marks per reporting window. Neither feeds back into timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.faults.errors import FaultError
from repro.runtime.scheduler import percentile
from repro.runtime.tileop import TileOp
from repro.traffic.arrivals import ArrivalProcess

__all__ = ["TokenBucket", "TrafficStream", "ShedRecord",
           "StreamTrafficReport", "TrafficRunResult", "OpenLoopInjector",
           "SHED_THROTTLED", "SHED_QUEUE_FULL"]

#: shed reasons (typed accounting; every shed carries exactly one)
SHED_THROTTLED = "throttled"
SHED_QUEUE_FULL = "queue_full"

#: a request factory maps (sequence index, arrival time) to the TileOp
#: — or ops — that one logical request performs
RequestFactory = Callable[[int, float], Union[TileOp, Sequence[TileOp]]]


class TokenBucket:
    """Deterministic token-bucket rate limiter.

    ``rate`` tokens/second refill continuously up to ``burst``;
    ``take(now)`` consumes one token if available. ``rate=None``
    disables throttling entirely.
    """

    def __init__(self, rate: Optional[float] = None,
                 burst: float = 1.0) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("token rate must be > 0 (or None)")
        if burst < 1.0:
            raise ValueError("burst must allow at least one token")
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0

    def take(self, now: float) -> bool:
        """Consume one token at model time ``now`` (monotone calls)."""
        if self.rate is None:
            return True
        if now > self._last:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate)
            self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class TrafficStream:
    """One tenant's open-loop traffic specification.

    Parameters
    ----------
    name:
        The scheduler stream the requests execute on.
    arrivals:
        The seeded :class:`~repro.traffic.arrivals.ArrivalProcess`.
    request_ops:
        ``(seq, time) -> TileOp | [TileOp]`` — the ops one logical
        request performs (e.g. one pooled embedding lookup = several
        row reads). Called exactly once per *admitted* request, in
        arrival order, so seeded factories stay deterministic even
        when admission control sheds.
    token_rate / token_burst:
        Token-bucket admission (None = no throttle).
    admission_queue:
        Maximum admitted-but-incomplete requests; an arrival beyond
        the bound is shed (None = unbounded).
    weight / latency_target:
        Passed through to the scheduler stream (QoS accounting).
    """

    def __init__(self, name: str, arrivals: ArrivalProcess,
                 request_ops: RequestFactory, *,
                 token_rate: Optional[float] = None,
                 token_burst: float = 1.0,
                 admission_queue: Optional[int] = None,
                 weight: float = 1.0,
                 latency_target: Optional[float] = None) -> None:
        if admission_queue is not None and admission_queue < 1:
            raise ValueError("admission queue bound must be >= 1 (or None)")
        self.name = name
        self.arrivals = arrivals
        self.request_ops = request_ops
        self.token_rate = token_rate
        self.token_burst = token_burst
        self.admission_queue = admission_queue
        self.weight = weight
        self.latency_target = latency_target


@dataclass(frozen=True)
class ShedRecord:
    """One rejected request (typed backpressure accounting)."""

    time: float
    stream: str
    seq: int
    reason: str  # SHED_THROTTLED or SHED_QUEUE_FULL


@dataclass
class StreamTrafficReport:
    """One tenant's open-loop outcome."""

    stream: str
    #: requests generated by the arrival process inside the horizon
    offered: int = 0
    admitted: int = 0
    shed_throttled: int = 0
    shed_queue_full: int = 0
    #: admitted requests that raised a typed storage fault
    failed: int = 0
    #: admitted requests that completed
    completed: int = 0
    #: TileOps executed (>= completed when requests fan out)
    ops: int = 0
    useful_bytes: int = 0
    #: last completion time of this stream (0.0 when nothing completed)
    makespan: float = 0.0
    #: mean offered arrival rate over the horizon
    offered_rate: float = 0.0
    #: completed requests / max(horizon, makespan)
    goodput_rps: float = 0.0
    goodput_bytes_per_second: float = 0.0
    #: request latencies (arrival -> last op completion)
    mean_latency: float = 0.0
    p50_latency: float = 0.0
    p95_latency: float = 0.0
    p99_latency: float = 0.0
    p999_latency: float = 0.0
    max_latency: float = 0.0
    #: scheduler-level queue-wait vs service split of those latencies
    mean_queue_wait: float = 0.0
    p99_queue_wait: float = 0.0
    mean_service: float = 0.0
    p99_service: float = 0.0
    latencies: List[float] = field(repr=False, default_factory=list)

    @property
    def shed(self) -> int:
        return self.shed_throttled + self.shed_queue_full

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (byte-stable: plain floats and ints)."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_throttled": self.shed_throttled,
            "shed_queue_full": self.shed_queue_full,
            "shed_rate": self.shed_rate,
            "failed": self.failed,
            "completed": self.completed,
            "ops": self.ops,
            "useful_bytes": self.useful_bytes,
            "makespan": self.makespan,
            "offered_rate": self.offered_rate,
            "goodput_rps": self.goodput_rps,
            "goodput_bytes_per_second": self.goodput_bytes_per_second,
            "mean_latency": self.mean_latency,
            "p50_latency": self.p50_latency,
            "p95_latency": self.p95_latency,
            "p99_latency": self.p99_latency,
            "p999_latency": self.p999_latency,
            "max_latency": self.max_latency,
            "mean_queue_wait": self.mean_queue_wait,
            "p99_queue_wait": self.p99_queue_wait,
            "mean_service": self.mean_service,
            "p99_service": self.p99_service,
        }


@dataclass
class TrafficRunResult:
    """Outcome of one open-loop injection run."""

    horizon: float
    streams: Dict[str, StreamTrafficReport]
    sheds: List[ShedRecord] = field(repr=False, default_factory=list)

    @property
    def offered(self) -> int:
        return sum(s.offered for s in self.streams.values())

    @property
    def admitted(self) -> int:
        return sum(s.admitted for s in self.streams.values())

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.streams.values())

    @property
    def makespan(self) -> float:
        return max((s.makespan for s in self.streams.values()), default=0.0)

    @property
    def goodput_rps(self) -> float:
        span = max(self.horizon, self.makespan)
        return self.completed / span if span > 0 else 0.0

    @property
    def goodput_bytes_per_second(self) -> float:
        span = max(self.horizon, self.makespan)
        total = sum(s.useful_bytes for s in self.streams.values())
        return total / span if span > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "horizon": self.horizon,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "makespan": self.makespan,
            "goodput_rps": self.goodput_rps,
            "goodput_bytes_per_second": self.goodput_bytes_per_second,
            "streams": {name: report.to_dict()
                        for name, report in sorted(self.streams.items())},
        }


class OpenLoopInjector:
    """Replays merged arrival schedules against one storage system.

    The injector is an *admission frontend*: it never adds model time
    of its own, so the timing a request experiences is exactly what the
    spine's shared timelines charge — admission decisions and shed
    accounting are free, like the scheduler's sequencing.

    ``marks`` > 0 splits the horizon into that many reporting windows;
    at each boundary an ``offered_load`` instant mark (per stream:
    offered / admitted / shed counts in the window) lands in the trace.
    """

    def __init__(self, system, streams: Sequence[TrafficStream],
                 horizon: float, trace=None, metrics=None,
                 marks: int = 0, monitor=None) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be > 0 seconds")
        if marks < 0:
            raise ValueError("marks must be >= 0")
        names = [s.name for s in streams]
        if len(set(names)) != len(names):
            raise ValueError("traffic streams must have distinct names")
        if not streams:
            raise ValueError("need at least one traffic stream")
        self.system = system
        self.streams = list(streams)
        self.horizon = float(horizon)
        self.trace = trace
        self.metrics = metrics
        self.marks = marks
        #: optional :class:`~repro.obs.monitor.Monitor`; arrival /
        #: admission / shed events stream into it and it is attached to
        #: the scheduler for op completions. Observation only — it
        #: never feeds back into admission or timing.
        self.monitor = monitor

    # ------------------------------------------------------------------
    def run(self) -> TrafficRunResult:
        scheduler = self.system.scheduler
        if self.trace is not None:
            self.system.set_trace(self.trace)
        if self.metrics is not None:
            self.system.set_metrics(self.metrics)
        if self.monitor is not None:
            self.monitor.attach(self.system, horizon=self.horizon,
                                request_driven=True)
            scheduler.monitor = self.monitor

        # merged arrival schedule: (time, stream index, per-stream seq);
        # stream order breaks exact-time ties deterministically
        schedule: List[tuple] = []
        for index, stream in enumerate(self.streams):
            scheduler.stream(stream.name, None, weight=stream.weight,
                             latency_target=stream.latency_target)
            for seq, time in enumerate(stream.arrivals.times(self.horizon)):
                schedule.append((time, index, seq))
        schedule.sort()

        buckets = [TokenBucket(s.token_rate, s.token_burst)
                   for s in self.streams]
        backlogs: List[List[float]] = [[] for _ in self.streams]
        reports = {s.name: StreamTrafficReport(stream=s.name)
                   for s in self.streams}
        sheds: List[ShedRecord] = []
        window = self.horizon / self.marks if self.marks else None
        window_end = window if window is not None else None
        window_counts: Dict[str, List[int]] = {
            s.name: [0, 0, 0] for s in self.streams}  # offered/admitted/shed

        def flush_marks(boundary: float) -> None:
            if self.trace is None:
                return
            for index, stream in enumerate(self.streams):
                offered, admitted, shed = window_counts[stream.name]
                self.trace.instant(
                    "traffic", boundary, name="offered_load",
                    stream=stream.name, op_id=-1, offered=offered,
                    admitted=admitted, shed=shed)
                # Perfetto counter tracks alongside the spans
                self.trace.counter("counters", boundary, "queue_depth",
                                   stream=stream.name,
                                   depth=len(backlogs[index]))
                self.trace.counter("counters", boundary, "offered",
                                   stream=stream.name, offered=offered,
                                   shed=shed)
                window_counts[stream.name] = [0, 0, 0]
            dirty = self.system.cache_dirty_bytes() \
                if hasattr(self.system, "cache_dirty_bytes") else None
            if dirty is not None:
                self.trace.counter("counters", boundary, "dirty_bytes",
                                   stream="main", dirty_bytes=dirty)

        for time, index, seq in schedule:
            stream = self.streams[index]
            report = reports[stream.name]
            counts = window_counts[stream.name]
            while window_end is not None and time >= window_end:
                flush_marks(window_end)
                window_end += window
            report.offered += 1
            counts[0] += 1
            if self.metrics is not None:
                self.metrics.count("traffic.offered")
            if self.monitor is not None:
                self.monitor.note_offered(stream.name, time)
            # admission control, in frontend order: throttle, then queue
            if not buckets[index].take(time):
                report.shed_throttled += 1
                counts[2] += 1
                sheds.append(ShedRecord(time, stream.name, seq,
                                        SHED_THROTTLED))
                if self.metrics is not None:
                    self.metrics.count("traffic.shed_throttled")
                if self.monitor is not None:
                    self.monitor.note_shed(stream.name, time, SHED_THROTTLED)
                continue
            backlog = backlogs[index]
            while backlog and backlog[0] <= time:
                heappop(backlog)
            if self.metrics is not None:
                self.metrics.observe("traffic.backlog", float(len(backlog)))
            if self.monitor is not None:
                self.monitor.note_backlog(stream.name, time, len(backlog))
            if (stream.admission_queue is not None
                    and len(backlog) >= stream.admission_queue):
                report.shed_queue_full += 1
                counts[2] += 1
                sheds.append(ShedRecord(time, stream.name, seq,
                                        SHED_QUEUE_FULL))
                if self.metrics is not None:
                    self.metrics.count("traffic.shed_queue_full")
                if self.monitor is not None:
                    self.monitor.note_shed(stream.name, time, SHED_QUEUE_FULL)
                continue
            report.admitted += 1
            counts[1] += 1
            if self.metrics is not None:
                self.metrics.count("traffic.admitted")
            ops = stream.request_ops(seq, time)
            if isinstance(ops, TileOp):
                ops = [ops]
            finish = time
            failed = False
            for op in ops:
                op.stream = stream.name
                op.submit_time = time
                try:
                    scheduler.execute(op)
                except FaultError:
                    failed = True
                    break
                report.ops += 1
                report.useful_bytes += op.result.useful_bytes
                finish = max(finish, op.complete_time)
            heappush(backlog, finish)
            if failed:
                report.failed += 1
                if self.metrics is not None:
                    self.metrics.count("traffic.failed")
                continue
            report.completed += 1
            report.makespan = max(report.makespan, finish)
            report.latencies.append(finish - time)
            if self.monitor is not None:
                self.monitor.note_request(stream.name, time, finish)
        if window_end is not None:
            flush_marks(window_end)

        self._summarize(scheduler, reports)
        return TrafficRunResult(horizon=self.horizon, streams=reports,
                                sheds=sheds)

    # ------------------------------------------------------------------
    def _summarize(self, scheduler,
                   reports: Dict[str, StreamTrafficReport]) -> None:
        for name, report in reports.items():
            report.offered_rate = report.offered / self.horizon
            span = max(self.horizon, report.makespan)
            report.goodput_rps = report.completed / span if span else 0.0
            report.goodput_bytes_per_second = (
                report.useful_bytes / span if span else 0.0)
            latencies = report.latencies
            if latencies:
                report.mean_latency = sum(latencies) / len(latencies)
                report.p50_latency = percentile(latencies, 0.50)
                report.p95_latency = percentile(latencies, 0.95)
                report.p99_latency = percentile(latencies, 0.99)
                report.p999_latency = percentile(latencies, 0.999)
                report.max_latency = max(latencies)
            handle = scheduler.streams.get(name)
            if handle is None:
                continue
            waits = handle.queue_waits
            services = handle.service_times
            if waits:
                report.mean_queue_wait = sum(waits) / len(waits)
                report.p99_queue_wait = percentile(waits, 0.99)
            if services:
                report.mean_service = sum(services) / len(services)
                report.p99_service = percentile(services, 0.99)
