"""Perf baseline for the report path: ``BENCH_report.json``.

Times one ``build_report`` over all four systems on a fixed small GEMM
and records both costs that matter for later PRs:

* **wall-clock** — how long the profiler pipeline itself takes (the
  only nondeterministic number in the whole observability stack, which
  is why it lives in a BENCH artifact and not in the report JSON);
* **simulated time** — per-system service time and makespan, which
  must NOT move when someone optimises the analyzer.

Later PRs diff their ``BENCH_report.json`` against this baseline:
wall-clock may improve, simulated numbers must hold.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.report import build_report
from repro.workloads.gemm import GemmWorkload

OUT = Path(__file__).resolve().parent.parent / "BENCH_report.json"

SYSTEMS = ("baseline", "software-nds", "hardware-nds", "software-oracle")


def test_report_smoke(benchmark):
    def build():
        return build_report(
            workload=GemmWorkload(n=256, tile=64, max_tiles=12),
            systems=SYSTEMS, queue_depth=4, windows=8)

    start = time.perf_counter()
    report = benchmark.pedantic(build, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    simulated = {}
    for name in SYSTEMS:
        totals = report["systems"][name]["attribution"]["totals"]
        streams = report["systems"][name]["streams"]["GEMM"]
        simulated[name] = {
            "ops": totals["ops"],
            "service_time_s": totals["service_time"],
            "queue_wait_s": totals["queue_wait"],
            "io_makespan_s": streams["makespan"],
        }
        assert totals["service_time"] > 0.0

    OUT.write_text(json.dumps({
        "workload": "GEMM n=256 tile=64 max_tiles=12 qd=4",
        "wallclock_s": round(wall, 4),
        "simulated": simulated,
    }, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUT} (wall-clock {wall:.2f}s)")
