"""Per-workload compute-kernel time models.

The end-to-end experiments (Fig. 10) pipeline storage I/O against GPU
kernels; the kernels themselves are unchanged between the baseline and
NDS configurations (§6), so each workload only needs a *time* for its
kernel on one tile. Dense tensor kernels (GEMM, TC) ride the Tensor-
Core curve; stencils and vector passes are memory-bandwidth bound on
the CUDA engine; graph/data-mining passes are modelled as streaming
passes over their tile bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.gpu import GpuModel

__all__ = ["KernelModel"]


@dataclass(frozen=True)
class KernelModel:
    """Kernel-time helpers bound to one GPU model.

    ``stream_bandwidth`` is the effective device-memory streaming rate
    of bandwidth-bound kernels (stencils, reductions, traversal passes);
    an RTX 2080 streams ~400 GB/s from GDDR6.
    """

    gpu: GpuModel
    stream_bandwidth: float = 400e9

    def _stream(self, num_bytes: int, passes: float = 1.0) -> float:
        return (self.gpu.kernel_launch_overhead
                + passes * num_bytes / self.stream_bandwidth)

    # -- dense linear/tensor algebra ----------------------------------
    def gemm(self, m: int, n: int, k: int, element_size: int = 4,
             use_tensor_cores: bool = True) -> float:
        """Blocked GEMM on an (m×k)·(k×n) tile pair."""
        data = (m * k + k * n + m * n) * element_size
        tile_dim = max(8, round((m * n) ** 0.5))
        return self.gpu.kernel_time(data, tile_dim, use_tensor_cores)

    def tensor_contraction(self, dim: int, depth: int,
                           element_size: int = 4) -> float:
        """TC: contraction over ``depth`` slabs of dim×dim tiles."""
        per_slab = self.gemm(dim, dim, dim, element_size, use_tensor_cores=True)
        return per_slab * max(1, depth)

    def tensor_times_vector(self, rows: int, cols: int,
                            element_size: int = 4) -> float:
        """TTV: one streaming pass over the tile plus the vector."""
        return self._stream((rows * cols + cols) * element_size)

    # -- stencils ------------------------------------------------------
    def stencil(self, rows: int, cols: int, element_size: int = 4,
                iterations: int = 1, points: int = 5) -> float:
        """Hotspot / Conv2D-style stencil: read + write per iteration,
        ``points`` neighbours served from cache."""
        num_bytes = rows * cols * element_size
        return self._stream(num_bytes, passes=2.0 * iterations)

    # -- graph ----------------------------------------------------------
    def traversal_pass(self, rows: int, cols: int,
                       element_size: int = 4) -> float:
        """BFS/SSSP frontier expansion over an adjacency sub-block."""
        return self._stream(rows * cols * element_size)

    def spmv_pass(self, rows: int, cols: int, element_size: int = 4) -> float:
        """PageRank-style rank propagation over a sub-block."""
        return self._stream(rows * cols * element_size, passes=1.5)

    # -- data mining -----------------------------------------------------
    def kmeans_assign(self, points: int, attributes: int, clusters: int,
                      element_size: int = 4) -> float:
        """Distance computation: each point reads all cluster centres."""
        num_bytes = points * attributes * element_size
        work_factor = max(1.0, clusters / 16.0)
        return self._stream(num_bytes, passes=work_factor)

    def knn_distances(self, points: int, attributes: int,
                      element_size: int = 4) -> float:
        return self._stream(points * attributes * element_size, passes=1.0)
