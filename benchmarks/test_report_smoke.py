"""Perf baseline for the report path: ``BENCH_report.json``.

Times one ``build_report`` over all four systems on a fixed small GEMM
and records both costs that matter for later PRs:

* **wall-clock** — how long the profiler pipeline itself takes (the
  only nondeterministic number in the whole observability stack, which
  is why it lives in a BENCH artifact and not in the report JSON);
* **simulated time** — per-system service time and makespan, which
  must NOT move when someone optimises the analyzer.

Later PRs diff their ``BENCH_report.json`` against this baseline:
wall-clock may improve, simulated numbers must hold.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.report import build_report
from repro.workloads.gemm import GemmWorkload

OUT = Path(__file__).resolve().parent.parent / "BENCH_report.json"

SYSTEMS = ("baseline", "software-nds", "hardware-nds", "software-oracle")


def test_report_smoke(benchmark):
    def build():
        return build_report(
            workload=GemmWorkload(n=256, tile=64, max_tiles=12),
            systems=SYSTEMS, queue_depth=4, windows=8)

    start = time.perf_counter()
    report = benchmark.pedantic(build, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    simulated = {}
    for name in SYSTEMS:
        totals = report["systems"][name]["attribution"]["totals"]
        streams = report["systems"][name]["streams"]["GEMM"]
        simulated[name] = {
            "ops": totals["ops"],
            "service_time_s": totals["service_time"],
            "queue_wait_s": totals["queue_wait"],
            "io_makespan_s": streams["makespan"],
        }
        assert totals["service_time"] > 0.0

    OUT.write_text(json.dumps({
        "workload": "GEMM n=256 tile=64 max_tiles=12 qd=4",
        "wallclock_s": round(wall, 4),
        "simulated": simulated,
    }, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUT} (wall-clock {wall:.2f}s)")


def test_monitor_overhead_cell():
    """Attaching a live :class:`~repro.obs.monitor.Monitor` must stay
    under 10 % wall overhead on an open-loop serving run (best-of-N to
    shave scheduler jitter). The cell merges into ``BENCH_report.json``
    next to the report-path baseline."""
    from repro.analysis.loadline_sweep import run_load_point
    from repro.obs.slo import SloPolicy

    import gc

    def one_wall(policy):
        gc.collect()
        start = time.process_time()
        run_load_point("software-nds", 4000.0, horizon=0.05,
                       arrival="mmpp", attribute_layers=False,
                       monitor=policy)
        return time.process_time() - start

    policy = SloPolicy(latency_target=500e-6)
    one_wall(None)  # warm translation caches / imports
    one_wall(policy)
    # time back-to-back pairs with the allocator quiesced and keep the
    # best pair ratio: adjacent runs share clock/thermal state, so the
    # ratio isolates the hook cost from this box's ±20 % wall jitter
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        pairs = [(one_wall(None), one_wall(policy)) for _ in range(9)]
    finally:
        if gc_was_enabled:
            gc.enable()
    unmonitored = min(base for base, _ in pairs)
    monitored = min(mon for _, mon in pairs)
    overhead = min(mon / base for base, mon in pairs) - 1.0

    payload = json.loads(OUT.read_text()) if OUT.exists() else {}
    payload["monitor_overhead"] = {
        "workload": "embedding load point, mmpp 4000 req/s, "
                    "horizon 0.05 s",
        "method": "best of 9 gc-quiesced process-time pairs; "
                  "overhead_fraction is the best paired ratio",
        "unmonitored_wall_s": round(unmonitored, 4),
        "monitored_wall_s": round(monitored, 4),
        "overhead_fraction": round(overhead, 4),
    }
    OUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nmonitor overhead: {overhead:+.1%} "
          f"({unmonitored:.3f}s -> {monitored:.3f}s)")
    assert overhead < 0.10, (
        f"monitor hooks cost {overhead:.1%} wall overhead (>10%)")
