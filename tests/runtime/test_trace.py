"""TraceRecorder tests: span recording, op context, metrics, and the
Chrome ``trace_event`` export contract."""

from __future__ import annotations

import json

import pytest

from repro.nvm.profiles import TINY_TEST
from repro.runtime import TraceRecorder
from repro.systems import BaselineSystem, HardwareNdsSystem


def test_span_records_current_op_context():
    trace = TraceRecorder()
    trace.span("link", 0.0, 1.0)                 # outside any op
    trace.push_op("tenant", 7)
    trace.span("link", 1.0, 2.0, name="xfer", bytes=4096)
    trace.pop_op()
    outside, inside = trace.spans
    assert outside.stream == "main" and outside.op_id == -1
    assert inside.stream == "tenant" and inside.op_id == 7
    assert dict(inside.args) == {"bytes": 4096}


def test_span_rejects_negative_interval():
    trace = TraceRecorder()
    with pytest.raises(ValueError):
        trace.span("link", 2.0, 1.0)


def test_resource_metrics_aggregate():
    trace = TraceRecorder()
    trace.span("link", 0.0, 1.0, bytes=100)
    trace.span("link", 2.0, 4.0, bytes=300)
    trace.span("ch0", 0.0, 0.5)
    metrics = trace.resource_metrics()
    assert metrics["link"]["busy_time"] == pytest.approx(3.0)
    assert metrics["link"]["spans"] == 2
    assert metrics["link"]["bytes"] == 400
    assert metrics["ch0"]["busy_time"] == pytest.approx(0.5)


def test_chrome_export_contract(tmp_path):
    trace = TraceRecorder()
    trace.push_op("t0", 0)
    trace.span("link", 0.0, 1e-6, name="xfer", bytes=64)
    trace.pop_op()
    trace.op_span("t0", 0, "read d", 0.0, 2e-6, kind="read")
    path = trace.save(tmp_path / "trace.json")

    loaded = json.loads(path.read_text())
    events = loaded["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    processes = [e for e in meta if e["name"] == "process_name"]
    threads = [e for e in meta if e["name"] == "thread_name"]
    sort_keys = [e for e in meta if e["name"] == "thread_sort_index"]
    assert {e["args"]["name"] for e in processes} == {"stream:t0"}
    # the trace_event spec types tid as an integer; resources map to
    # numeric thread ids announced by thread_name metadata
    assert {e["args"]["name"] for e in threads} == {"ops", "link"}
    assert all(isinstance(e["tid"], int) for e in meta + spans)
    assert {e["args"]["sort_index"] for e in sort_keys} == \
        {e["tid"] for e in threads}
    by_name = {e["name"]: e for e in spans}
    assert by_name["xfer"]["ts"] == pytest.approx(0.0)
    assert by_name["xfer"]["dur"] == pytest.approx(1.0)   # microseconds
    assert by_name["xfer"]["args"]["op_id"] == 0
    assert by_name["read d"]["cat"] == "op"
    assert by_name["xfer"]["cat"] == "resource"
    # spans land on the tids their thread_name metadata announced
    tid_of = {e["args"]["name"]: e["tid"] for e in threads}
    assert by_name["read d"]["tid"] == tid_of["ops"]
    assert by_name["xfer"]["tid"] == tid_of["link"]
    # all spans of one stream share the pid announced by its metadata
    pid = processes[0]["pid"]
    assert all(e["pid"] == pid for e in spans)


def test_component_spans_nest_inside_their_op():
    """Every component span recorded during an op lies inside the op's
    parent span for all four span-emitting layers of a real system."""
    system = HardwareNdsSystem(TINY_TEST, store_data=False)
    system.ingest("d", (64, 64), 4)
    system.reset_time()
    trace = TraceRecorder()
    system.set_trace(trace)
    system.read_tile("d", (16, 16), (32, 32))
    system.write_tile("d", (0, 0), (16, 16))

    ops = [s for s in trace.spans if s.resource == "ops"]
    assert len(ops) == 2
    for op in ops:
        children = trace.op_children(op.op_id)
        assert children, f"op {op.name} produced no component spans"
        for child in children:
            assert child.start >= op.start - 1e-12
            assert child.end <= op.end + 1e-12
    # the read touched controller, flash and link layers
    read_resources = {s.resource for s in trace.op_children(ops[0].op_id)}
    assert "ctrl_translate" in read_resources
    assert "link" in read_resources
    assert any(r.startswith("ch") for r in read_resources)


def test_baseline_spans_cover_host_layers():
    system = BaselineSystem(TINY_TEST, store_data=False)
    system.ingest("d", (64, 64), 4)
    system.reset_time()
    trace = TraceRecorder()
    system.set_trace(trace)
    system.read_tile("d", (16, 16), (16, 16))
    resources = {s.resource for s in trace.spans}
    # host marshalling is the baseline's defining cost: issue + copy
    assert "host_issue" in resources
    assert "host_copy" in resources
    assert "device_ctrl" in resources


def test_clear_empties_spans_and_context():
    trace = TraceRecorder()
    trace.push_op("t", 1)
    trace.span("link", 0.0, 1.0)
    trace.clear()
    assert trace.spans == []
    assert trace.current_stream == "main"
