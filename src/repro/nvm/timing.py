"""Timing parameters of an NVM device.

All times are in seconds. Defaults are calibrated TLC-NAND numbers:
the paper (§7.3) quotes 30–100 µs page reads; TLC page programs are in
the low milliseconds; ONFI-class channel buses move a 4 KB page in ~10 µs.
The calibration in :mod:`repro.nvm.profiles` tunes these so the modelled
device reproduces the paper's internal:external bandwidth ratio of 8:5
(§7.2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NvmTiming"]


@dataclass(frozen=True)
class NvmTiming:
    """Latency/bandwidth parameters for one NVM device.

    Attributes
    ----------
    t_read:
        Cell-array sensing time for one page read (bank busy).
    t_program:
        Programming time for one page write (bank busy).
    t_erase:
        Block erase time (bank busy).
    channel_bandwidth:
        Bytes/second a channel bus moves between flash and controller.
    t_cmd:
        Fixed per-page command issue overhead inside the device
        (controller -> channel handler -> die).
    """

    t_read: float = 60e-6
    t_program: float = 2.4e-3
    t_erase: float = 5e-3
    channel_bandwidth: float = 400e6
    t_cmd: float = 0.5e-6

    def __post_init__(self) -> None:
        for name in ("t_read", "t_program", "t_erase", "channel_bandwidth"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.t_cmd < 0:
            raise ValueError("t_cmd must be non-negative")

    def transfer_time(self, num_bytes: int) -> float:
        """Time to move ``num_bytes`` over one channel bus."""
        return num_bytes / self.channel_bandwidth

    def internal_read_bandwidth(self, channels: int, banks_per_channel: int,
                                page_size: int) -> float:
        """Steady-state aggregate read bandwidth of the flash back-end.

        With ``b`` banks pipelined behind one channel, a page completes
        per channel every ``max(xfer, t_read / b)`` seconds.
        """
        xfer = self.transfer_time(page_size)
        cycle = max(xfer, self.t_read / banks_per_channel)
        return channels * page_size / cycle

    def internal_write_bandwidth(self, channels: int, banks_per_channel: int,
                                 page_size: int) -> float:
        """Steady-state aggregate program bandwidth of the flash back-end."""
        xfer = self.transfer_time(page_size)
        cycle = max(xfer, self.t_program / banks_per_channel)
        return channels * page_size / cycle
