"""The STL's per-space B-tree index (§4.2, Fig. 6).

For an N-D space the STL keeps an N-level tree: the root level indexes
the highest-order dimension, each level below the next dimension, and
leaf entries point to the ordered list of physical access units (pages)
of one building block. The node degree at level *i* is
``ceil(d_i / bb_i)`` — the block-grid extent of that dimension.

The index also carries the per-block allocation usage counters the
space allocator's least-used-channel/bank rules need, and it counts
node visits so the systems layer can charge translation latency
(the §7.3 worst-case adders: 41 µs software / 17 µs hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.space import Space
from repro.nvm.address import PhysicalPageAddress

__all__ = ["BlockEntry", "BTreeNode", "BTreeIndex", "LookupResult"]


@dataclass
class BlockEntry:
    """Leaf payload: the physical pages of one building block.

    ``pages[i]`` holds the unit storing the block's i-th page-sized
    slice (row-major order inside the block, §4.2: "sorted according to
    the sequential order of the units in the building block").
    """

    coord: Tuple[int, ...]
    pages: List[Optional[PhysicalPageAddress]]
    channel_use: Dict[int, int] = field(default_factory=dict)
    bank_use: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: ``bank_use`` re-indexed per bank (bank → channel → count) so the
    #: allocator's per-unit channel scan avoids tuple-key lookups
    bank_channels: Dict[int, Dict[int, int]] = field(default_factory=dict)
    last_alloc: Optional[PhysicalPageAddress] = None
    #: when the space is compressed (§5.3.4): stored bytes including the
    #: codec header; None = uncompressed block
    stored_bytes: Optional[int] = None
    #: columnar mirror of the usage dicts for the allocator's placement
    #: scans: ``(key_grid, bank_tot)`` where ``key_grid[b][c]`` is the
    #: combined sort key ``bank_use[(c, b)] * M + channel_use[c]`` with
    #: ``M = len(pages) + 1`` (channel_use never reaches M, so one
    #: ``min`` over the row reproduces the lexicographic
    #: least-bank-use-then-least-channel-use tie-break), and
    #: ``bank_tot[b]`` sums ``bank_use`` over the bank. Built lazily by
    #: the allocator; None until the first placement scan needs it.
    place_cols: Optional[Tuple[List[List[int]], List[int]]] = None

    def record_alloc(self, ppa: PhysicalPageAddress, position: int) -> None:
        self.pages[position] = ppa
        self.channel_use[ppa.channel] = self.channel_use.get(ppa.channel, 0) + 1
        key = (ppa.channel, ppa.bank)
        self.bank_use[key] = self.bank_use.get(key, 0) + 1
        per_bank = self.bank_channels.get(ppa.bank)
        if per_bank is None:
            per_bank = {}
            self.bank_channels[ppa.bank] = per_bank
        per_bank[ppa.channel] = per_bank.get(ppa.channel, 0) + 1
        self.last_alloc = ppa
        cols = self.place_cols
        if cols is not None:
            key_grid, bank_tot = cols
            c = ppa.channel
            for row in key_grid:
                row[c] += 1
            key_grid[ppa.bank][c] += len(self.pages) + 1
            bank_tot[ppa.bank] += 1

    def record_release(self, position: int) -> Optional[PhysicalPageAddress]:
        ppa = self.pages[position]
        if ppa is None:
            return None
        self.pages[position] = None
        self.channel_use[ppa.channel] -= 1
        if self.channel_use[ppa.channel] == 0:
            del self.channel_use[ppa.channel]
        key = (ppa.channel, ppa.bank)
        self.bank_use[key] -= 1
        if self.bank_use[key] == 0:
            del self.bank_use[key]
        per_bank = self.bank_channels[ppa.bank]
        per_bank[ppa.channel] -= 1
        if per_bank[ppa.channel] == 0:
            del per_bank[ppa.channel]
            if not per_bank:
                del self.bank_channels[ppa.bank]
        cols = self.place_cols
        if cols is not None:
            key_grid, bank_tot = cols
            c = ppa.channel
            for row in key_grid:
                row[c] -= 1
            key_grid[ppa.bank][c] -= len(self.pages) + 1
            bank_tot[ppa.bank] -= 1
        return ppa

    def allocated_pages(self) -> List[PhysicalPageAddress]:
        return [p for p in self.pages if p is not None]

    @property
    def is_empty(self) -> bool:
        return all(p is None for p in self.pages)


@dataclass
class BTreeNode:
    """One tree node; entries are keyed by the block-grid index of this
    node's dimension."""

    level: int
    children: Dict[int, "BTreeNode"] = field(default_factory=dict)
    leaves: Dict[int, BlockEntry] = field(default_factory=dict)


@dataclass
class LookupResult:
    entry: Optional[BlockEntry]
    nodes_visited: int
    nodes_created: int = 0


class BTreeIndex:
    """Coordinate → building-block index for one space."""

    #: modelled bytes per tree-node entry / page pointer, for the §7.3
    #: space-overhead accounting
    POINTER_BYTES = 8
    NODE_OVERHEAD_BYTES = 64

    def __init__(self, space: Space) -> None:
        self.space = space
        self.root = BTreeNode(level=0)
        self.node_count = 1
        self.entry_count = 0

    # ------------------------------------------------------------------
    def lookup(self, block_coord: Tuple[int, ...]) -> LookupResult:
        """Walk the tree without allocating; one visit per level."""
        self._check_coord(block_coord)
        node = self.root
        visited = 1
        for axis in range(self.space.rank - 1):
            child = node.children.get(block_coord[axis])
            if child is None:
                return LookupResult(entry=None, nodes_visited=visited)
            node = child
            visited += 1
        entry = node.leaves.get(block_coord[-1])
        return LookupResult(entry=entry, nodes_visited=visited)

    def ensure(self, block_coord: Tuple[int, ...]) -> LookupResult:
        """Walk the tree, allocating nodes/entries along the path (§4.2:
        "the STL will allocate all necessary tree nodes along the
        traversal path")."""
        self._check_coord(block_coord)
        node = self.root
        visited = 1
        created = 0
        for axis in range(self.space.rank - 1):
            child = node.children.get(block_coord[axis])
            if child is None:
                child = BTreeNode(level=axis + 1)
                node.children[block_coord[axis]] = child
                self.node_count += 1
                created += 1
            node = child
            visited += 1
        entry = node.leaves.get(block_coord[-1])
        if entry is None:
            entry = BlockEntry(
                coord=block_coord,
                pages=[None] * self.space.pages_per_block,
            )
            node.leaves[block_coord[-1]] = entry
            self.entry_count += 1
        return LookupResult(entry=entry, nodes_visited=visited,
                            nodes_created=created)

    def remove(self, block_coord: Tuple[int, ...]) -> Optional[BlockEntry]:
        """Detach a leaf entry (used by delete_space)."""
        self._check_coord(block_coord)
        node = self.root
        for axis in range(self.space.rank - 1):
            child = node.children.get(block_coord[axis])
            if child is None:
                return None
            node = child
        entry = node.leaves.pop(block_coord[-1], None)
        if entry is not None:
            self.entry_count -= 1
        return entry

    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[BlockEntry]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            yield from node.leaves.values()

    def memory_bytes(self) -> int:
        """Modelled DRAM footprint of the index (§7.3: the whole STL
        lookup structure occupies ~0.1 % of storage in the worst case)."""
        total = self.node_count * self.NODE_OVERHEAD_BYTES
        stack = [self.root]
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            total += (len(node.children) + len(node.leaves)) * self.POINTER_BYTES
            for entry in node.leaves.values():
                total += len(entry.pages) * self.POINTER_BYTES
        return total

    # ------------------------------------------------------------------
    def _check_coord(self, block_coord: Tuple[int, ...]) -> None:
        if len(block_coord) != self.space.rank:
            raise ValueError(
                f"block coordinate rank {len(block_coord)} != space rank "
                f"{self.space.rank}")
        for axis, (c, g) in enumerate(zip(block_coord, self.space.grid)):
            if not (0 <= c < g):
                raise ValueError(
                    f"block coordinate {c} out of grid extent {g} on axis {axis}")
