"""Extent declustering of one dataset over a device pool.

The host translation layer splits every dataset along axis 0 into
*extents* — contiguous row slabs aligned to the owning architecture's
natural quantum (building-block rows for the NDS systems, the stored
tile height for the oracle) — and spreads them round-robin over the
allowed devices. Each extent lives on its device as an ordinary
device-local dataset, so per-device translation stays fully independent
(the FMMU argument: devices never serialize on a shared map).

With cross-device parity enabled the extents form RAID-5-style rotated
parity groups: each group holds ``width - 1`` data extents on distinct
devices plus one XOR parity extent on the remaining device, zero-padded
to the tallest member. Any single device can die and every byte of the
group is still reconstructable from the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Extent", "ParityExtent", "ClusterLayout", "partition_rows",
           "build_layout"]


@dataclass
class Extent:
    """One contiguous axis-0 slab of a dataset on one device."""

    index: int
    row_start: int
    row_end: int
    device: int
    store_key: str
    #: parity group this extent belongs to (-1 = unprotected)
    group: int = -1
    #: bumped on every migration/rebuild so the device-local dataset
    #: name never collides with a previous incarnation
    generation: int = 0

    @property
    def rows(self) -> int:
        return self.row_end - self.row_start


@dataclass
class ParityExtent:
    """The XOR parity slab of one parity group."""

    group: int
    rows: int
    device: int
    store_key: str
    #: data extent indices this parity covers
    members: Tuple[int, ...] = ()
    generation: int = 0

    @property
    def index(self) -> int:  # uniform addressing next to Extent
        return -1 - self.group


@dataclass
class ClusterLayout:
    """Where one dataset's extents (and parity) live in the pool."""

    dataset: str
    dims: Tuple[int, ...]
    element_size: int
    align: int
    ordinal: int
    #: device ids the dataset is allowed to occupy (its outer shard
    #: tier) — rebuilds and migrations must stay inside this set
    devices: Tuple[int, ...] = ()
    extents: List[Extent] = field(default_factory=list)
    parity: List[ParityExtent] = field(default_factory=list)
    #: keywords forwarded verbatim to every device-local ingest
    #: (oracle ``tile=``, baseline ``layout=``, inner ``shard=``)
    inner_params: Dict[str, object] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        total = self.element_size
        for dim in self.dims:
            total *= dim
        return total

    def parity_of(self, extent: Extent) -> Optional[ParityExtent]:
        if extent.group < 0 or not self.parity:
            return None
        return self.parity[extent.group]

    def group_devices(self, group: int) -> Tuple[int, ...]:
        """Devices currently hosting members of ``group``."""
        devices = [x.device for x in self.extents if x.group == group]
        if 0 <= group < len(self.parity):
            devices.append(self.parity[group].device)
        return tuple(devices)

    def subregions(self, origin: Sequence[int], extents: Sequence[int],
                   ) -> List[Tuple[Extent, Tuple[int, ...],
                                   Tuple[int, ...], int]]:
        """Decompose a region into per-extent local sub-regions.

        Returns ``(extent, local_origin, local_extents, out_row)``
        tuples where ``out_row`` is the sub-region's axis-0 offset in
        the caller's assembled output buffer.
        """
        lo, hi = int(origin[0]), int(origin[0]) + int(extents[0])
        rest_origin = tuple(int(o) for o in origin[1:])
        rest_extents = tuple(int(e) for e in extents[1:])
        out = []
        for extent in self.extents:
            clip_lo = max(lo, extent.row_start)
            clip_hi = min(hi, extent.row_end)
            if clip_lo < clip_hi:
                out.append((extent,
                            (clip_lo - extent.row_start,) + rest_origin,
                            (clip_hi - clip_lo,) + rest_extents,
                            clip_lo - lo))
        return out


def partition_rows(rows: int, align: int, width: int,
                   extents_per_device: int) -> List[Tuple[int, int]]:
    """Axis-0 extent boundaries: contiguous, align-quantized, as even
    as possible, at most ``width * extents_per_device`` extents."""
    if rows < 1:
        raise ValueError("datasets need at least one row to decluster")
    align = max(1, int(align))
    units = -(-rows // align)
    count = max(1, min(units, width * max(1, extents_per_device)))
    base, remainder = divmod(units, count)
    bounds: List[Tuple[int, int]] = []
    row = 0
    for index in range(count):
        step = (base + (1 if index < remainder else 0)) * align
        start = row
        row = min(rows, row + step)
        bounds.append((start, row))
    bounds[-1] = (bounds[-1][0], rows)
    return bounds


def _store_key(dataset: str, ordinal: int, tag: str, generation: int) -> str:
    return f"{dataset}#l{ordinal}{tag}.g{generation}"


def build_layout(dataset: str, dims: Sequence[int], element_size: int,
                 align: int, devices: Sequence[int], ordinal: int,
                 extents_per_device: int = 1, parity: bool = False,
                 inner_params: Optional[Dict[str, object]] = None,
                 ) -> ClusterLayout:
    """Place a dataset's extents (round-robin, RAID-5 rotated parity
    when enabled) over ``devices``."""
    dims = tuple(int(d) for d in dims)
    devices = tuple(devices)
    width = len(devices)
    if width < 1:
        raise ValueError("device pool has no live devices to place on")
    if parity and width < 2:
        raise ValueError(
            f"cross-device parity needs at least 2 devices, got {width}")
    layout = ClusterLayout(dataset=dataset, dims=dims,
                           element_size=int(element_size), align=align,
                           ordinal=ordinal, devices=devices,
                           inner_params=dict(inner_params or {}))
    bounds = partition_rows(dims[0], align, width, extents_per_device)
    if not parity:
        for index, (start, end) in enumerate(bounds):
            layout.extents.append(Extent(
                index=index, row_start=start, row_end=end,
                device=devices[index % width],
                store_key=_store_key(dataset, ordinal, f"e{index}", 0)))
        return layout
    stripe = width - 1
    for index, (start, end) in enumerate(bounds):
        group = index // stripe
        parity_device = devices[(width - 1 - group) % width]
        data_devices = [d for d in devices if d != parity_device]
        layout.extents.append(Extent(
            index=index, row_start=start, row_end=end,
            device=data_devices[index % stripe], group=group,
            store_key=_store_key(dataset, ordinal, f"e{index}", 0)))
    groups = -(-len(bounds) // stripe)
    for group in range(groups):
        members = tuple(x.index for x in layout.extents if x.group == group)
        rows = max(layout.extents[i].rows for i in members)
        layout.parity.append(ParityExtent(
            group=group, rows=rows,
            device=devices[(width - 1 - group) % width],
            store_key=_store_key(dataset, ordinal, f"p{group}", 0),
            members=members))
    return layout
