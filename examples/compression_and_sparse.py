#!/usr/bin/env python3
"""Optional device features: compression (§5.3.4), sparse data (§8),
and encryption compatibility (§5.3.3).

NDS composes with standard storage-device services because building
blocks are its only unit of content: compression shrinks blocks to
fewer access units, sparse (all-zero) pages are never materialized, and
block-cipher sections fit inside any realistic block dimension.

Run:  python examples/compression_and_sparse.py
"""

import numpy as np

from repro.core import (BlockCipherModel, NdsApi, SpaceTranslationLayer,
                        ZlibCompressor, check_space_compatibility)
from repro.core.api import array_to_bytes, bytes_to_array
from repro.nvm import PAPER_PROTOTYPE, FlashArray


def compression_demo() -> None:
    print("== building-block compression (5.3.4) ==")
    profile = PAPER_PROTOTYPE
    codec = ZlibCompressor(level=1)
    flash = FlashArray(profile.geometry, profile.timing, store_data=True)
    stl = SpaceTranslationLayer(flash, compressor=codec)
    space = stl.create_space((1024, 1024), element_size=4)

    # a quantized dataset: a few distinct values, highly compressible
    rng = np.random.default_rng(11)
    data = (rng.integers(0, 8, (1024, 1024)) * 1000).astype(np.int32)
    result = stl.write(space.space_id, (0, 0), (1024, 1024),
                       data=array_to_bytes(data))
    raw_pages = space.total_blocks * space.pages_per_block
    used = sum(block.units_allocated for block in result.blocks)
    print(f"  stored {data.nbytes >> 20} MiB in {used} pages "
          f"(uncompressed: {raw_pages}) — codec ratio "
          f"{codec.stats.ratio:.2f}")
    read = stl.read_region(space.space_id, (100, 200), (64, 64))
    assert np.array_equal(bytes_to_array(read.data, np.int32),
                          data[100:164, 200:264])
    print("  partial reads of compressed blocks verify byte-exact")


def sparse_demo() -> None:
    print("\n== sparse page-zero elision (8) ==")
    profile = PAPER_PROTOTYPE
    flash = FlashArray(profile.geometry, profile.timing, store_data=True)
    stl = SpaceTranslationLayer(flash, elide_zero_pages=True)
    space = stl.create_space((2048, 2048), element_size=4)

    # a banded matrix: non-zeros within 64 of the diagonal (a classic
    # stencil/FEM sparsity structure)
    rng = np.random.default_rng(13)
    sparse = np.zeros((2048, 2048), dtype=np.int32)
    for offset in range(-64, 65):
        diag = np.diagonal(sparse, offset)
        values = rng.integers(1, 1000, diag.size).astype(np.int32)
        rows = np.arange(diag.size) + max(0, -offset)
        cols = np.arange(diag.size) + max(0, offset)
        sparse[rows, cols] = values
    result = stl.write(space.space_id, (0, 0), (2048, 2048),
                       data=array_to_bytes(sparse))
    used = sum(block.units_allocated for block in result.blocks)
    total = space.total_blocks * space.pages_per_block
    elided = stl.stats.get_count("stl_pages_elided")
    print(f"  banded matrix ({(sparse != 0).mean():.1%} dense): "
          f"{used}/{total} pages programmed "
          f"({elided} all-zero pages elided)")
    read = stl.read(space.space_id, (0, 0), (2048, 2048))
    assert np.array_equal(bytes_to_array(read.data, np.int32), sparse)
    print("  read-back (zeros synthesized for elided pages) verifies")


def crypto_demo() -> None:
    print("\n== block-cipher compatibility (5.3.3) ==")
    profile = PAPER_PROTOTYPE
    flash = FlashArray(profile.geometry, profile.timing, store_data=True)
    api = NdsApi(SpaceTranslationLayer(flash))
    for element_size in (1, 2, 4, 8):
        sid = api.create_space((4096, 4096), element_size)
        space = api.space(sid)
        ok = check_space_compatibility(space)
        print(f"  element {element_size} B -> block {space.bb}: "
              f"{'compatible' if ok else 'INCOMPATIBLE'} with 256-bit "
              f"sections")
    cipher = BlockCipherModel(key=0xFEED)
    page = np.arange(4096, dtype=np.uint8)
    assert np.array_equal(cipher.decrypt(cipher.encrypt(page, 5), 5), page)
    print(f"  per-page crypt cost: {cipher.crypt_time(4096) * 1e6:.2f} us "
          f"(engine keeps up with the flash back-end)")


def main() -> None:
    compression_demo()
    sparse_demo()
    crypto_demo()
    print("done.")


if __name__ == "__main__":
    main()
