"""The NDS core: spaces, building blocks, B-tree, translator, STL, API."""

from repro.core.allocator import NdsAllocator
from repro.core.api import NdsApi, NdsHandle, array_to_bytes, bytes_to_array
from repro.core.btree import BlockEntry, BTreeIndex, BTreeNode, LookupResult
from repro.core.building_block import (bb_size_min, bb_size_min_3d,
                                       block_bytes, block_dims, block_volume,
                                       pages_per_block)
from repro.core.compression import (BlockCompressor, CompressionStats,
                                    ZlibCompressor)
from repro.core.controller import ControllerTiming, NdsController
from repro.core.crypto import (SECTION_BYTES, BlockCipherModel,
                               check_space_compatibility)
from repro.core.device import Completion, NdsDevice
from repro.core.errors import (CapacityError, InvalidCoordinateError,
                               NdsError, SpaceClosedError,
                               SpaceNotFoundError, ViewVolumeError)
from repro.core.gc import NdsGarbageCollector, NdsGcResult
from repro.core.sharding import ShardSpec
from repro.core.space import Space
from repro.core.stl import BlockOpResult, SpaceTranslationLayer, StlOpResult
from repro.core.translator import (BlockAccess, pages_for_region, translate,
                                   translate_region)
from repro.core.views import (IdentityView, RegionMap, ReshapeView,
                              TileGridView, View, linear_range_to_boxes)

__all__ = [
    "Space",
    "ShardSpec",
    "SpaceTranslationLayer",
    "StlOpResult",
    "BlockOpResult",
    "NdsApi",
    "NdsHandle",
    "array_to_bytes",
    "bytes_to_array",
    "NdsAllocator",
    "NdsGarbageCollector",
    "NdsGcResult",
    "NdsController",
    "ControllerTiming",
    "BlockCompressor",
    "ZlibCompressor",
    "CompressionStats",
    "BlockCipherModel",
    "check_space_compatibility",
    "SECTION_BYTES",
    "NdsDevice",
    "Completion",
    "BTreeIndex",
    "BTreeNode",
    "BlockEntry",
    "LookupResult",
    "BlockAccess",
    "translate",
    "translate_region",
    "pages_for_region",
    "bb_size_min",
    "bb_size_min_3d",
    "block_dims",
    "block_volume",
    "block_bytes",
    "pages_per_block",
    "View",
    "IdentityView",
    "ReshapeView",
    "TileGridView",
    "RegionMap",
    "linear_range_to_boxes",
    "NdsError",
    "SpaceNotFoundError",
    "SpaceClosedError",
    "InvalidCoordinateError",
    "ViewVolumeError",
    "CapacityError",
]
