"""Per-layer span recording with Chrome ``trace_event`` export.

Every timed component (link, host CPU, SSD controller pipeline, flash
channels/banks, I/O engine) accepts an optional recorder and emits one
span per resource reservation: STL translation, FTL mapping,
channel/bank occupancy, link transfers, host copies. The scheduler
wraps each executed :class:`~repro.runtime.tileop.TileOp` in a parent
span, so component spans nest inside the op that caused them.

Export targets ``chrome://tracing`` / Perfetto: complete events
(``"ph": "X"``) with microsecond timestamps, one process per tenant
stream and one thread per resource. :meth:`TraceRecorder.
resource_metrics` aggregates the same spans into per-resource busy
time / span counts for quick reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["TraceSpan", "TraceRecorder", "ScopedTraceRecorder"]


@dataclass(frozen=True)
class TraceSpan:
    """One half-open busy interval ``[start, end)`` on one resource.

    ``instant=True`` marks a point event (SLO violation, fault mark):
    ``start == end`` and the Chrome export uses an instant event."""

    name: str
    resource: str
    stream: str
    start: float
    end: float
    op_id: int = -1
    args: Tuple[Tuple[str, Union[int, float, str]], ...] = ()
    instant: bool = False
    #: ``counter=True`` marks a Chrome counter sample (``"ph": "C"``):
    #: ``args`` holds the numeric series values at ``start``. Counter
    #: spans are also ``instant`` so every busy-time consumer
    #: (utilization, critical path, resource metrics) skips them.
    counter: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects spans; exports Chrome trace JSON and resource metrics."""

    def __init__(self) -> None:
        self.spans: List[TraceSpan] = []
        #: (stream, op_id, label) context stack maintained by the
        #: scheduler while an op executes; component spans recorded with
        #: no explicit context inherit the innermost frame.
        self._context: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    # context management (scheduler side)
    # ------------------------------------------------------------------
    def push_op(self, stream: str, op_id: int) -> None:
        self._context.append((stream, op_id))

    def pop_op(self) -> None:
        self._context.pop()

    @property
    def current_stream(self) -> str:
        return self._context[-1][0] if self._context else "main"

    @property
    def current_op(self) -> int:
        return self._context[-1][1] if self._context else -1

    # ------------------------------------------------------------------
    # recording (component side)
    # ------------------------------------------------------------------
    def span(self, resource: str, start: float, end: float,
             name: Optional[str] = None, **args) -> None:
        """Record one busy interval on ``resource``; the current op
        context tags the span with its tenant stream and op id."""
        if end < start:
            raise ValueError(f"span on {resource!r} ends before it starts")
        self.spans.append(TraceSpan(
            name=name if name is not None else resource,
            resource=resource, stream=self.current_stream,
            start=start, end=end, op_id=self.current_op,
            args=tuple(sorted(args.items()))))

    def op_span(self, stream: str, op_id: int, label: str,
                start: float, end: float, **args) -> None:
        """Record the parent span of one executed TileOp."""
        self.spans.append(TraceSpan(
            name=label, resource="ops", stream=stream,
            start=start, end=end, op_id=op_id,
            args=tuple(sorted(args.items()))))

    def instant(self, resource: str, time: float,
                name: Optional[str] = None, stream: Optional[str] = None,
                op_id: Optional[int] = None, **args) -> None:
        """Record a point event (e.g. an SLO violation mark) on
        ``resource`` at ``time``; stream/op context default to the
        innermost executing op."""
        self.spans.append(TraceSpan(
            name=name if name is not None else resource,
            resource=resource,
            stream=stream if stream is not None else self.current_stream,
            start=time, end=time,
            op_id=op_id if op_id is not None else self.current_op,
            args=tuple(sorted(args.items())), instant=True))

    def counter(self, resource: str, time: float, name: str,
                stream: Optional[str] = None, **series) -> None:
        """Record a Chrome counter sample (``"ph": "C"``): one or more
        named numeric series values at ``time``. Perfetto renders each
        distinct ``name`` as a stacked-area track, so queue depth,
        offered load, and cache dirty bytes become live timelines next
        to the spans."""
        self.spans.append(TraceSpan(
            name=name, resource=resource,
            stream=stream if stream is not None else self.current_stream,
            start=time, end=time, op_id=-1,
            args=tuple(sorted(series.items())), instant=True,
            counter=True))

    def instants(self, resource: Optional[str] = None) -> List[TraceSpan]:
        """All point events, optionally filtered by resource (counter
        samples excluded — see :meth:`counters`)."""
        return [s for s in self.spans if s.instant and not s.counter
                and (resource is None or s.resource == resource)]

    def counters(self, name: Optional[str] = None) -> List[TraceSpan]:
        """All counter samples, optionally filtered by counter name."""
        return [s for s in self.spans if s.counter
                and (name is None or s.name == name)]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def resource_metrics(self) -> Dict[str, Dict[str, float]]:
        """Aggregate busy time / span count / byte count per resource."""
        metrics: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            if span.counter:
                continue  # samples, not busy time
            entry = metrics.setdefault(
                span.resource, {"busy_time": 0.0, "spans": 0, "bytes": 0})
            entry["busy_time"] += span.duration
            entry["spans"] += 1
            for key, value in span.args:
                # a non-numeric "bytes" arg (loaded trace, custom span)
                # must not poison the whole aggregation
                if (key == "bytes" and isinstance(value, (int, float))
                        and not isinstance(value, bool)):
                    entry["bytes"] += value
        return metrics

    def stream_spans(self, stream: str) -> List[TraceSpan]:
        return [s for s in self.spans if s.stream == stream]

    def op_children(self, op_id: int) -> List[TraceSpan]:
        """Component spans recorded while ``op_id`` was executing."""
        return [s for s in self.spans
                if s.op_id == op_id and s.resource != "ops"]

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    @staticmethod
    def _tid_sort_key(resource: str) -> Tuple[int, str]:
        """"ops" threads sort first; every other resource by name."""
        return (0 if resource == "ops" else 1, resource)

    def to_chrome(self) -> Dict[str, object]:
        """Chrome ``trace_event`` JSON object (complete events).

        The trace_event spec types ``tid`` as an integer, so resources
        get numeric thread ids plus ``thread_name`` /
        ``thread_sort_index`` metadata events — the form both
        chrome://tracing and Perfetto load.
        """
        streams = sorted({span.stream for span in self.spans})
        pids = {stream: index + 1 for index, stream in enumerate(streams)}
        resources = sorted({span.resource for span in self.spans},
                           key=self._tid_sort_key)
        tids = {resource: index + 1
                for index, resource in enumerate(resources)}
        events: List[Dict[str, object]] = []
        by_stream: Dict[str, set] = {stream: set() for stream in streams}
        for span in self.spans:
            by_stream[span.stream].add(span.resource)
        for stream, pid in pids.items():
            events.append({"ph": "M", "pid": pid, "tid": 0,
                           "name": "process_name",
                           "args": {"name": f"stream:{stream}"}})
            for resource in sorted(by_stream[stream],
                                   key=self._tid_sort_key):
                tid = tids[resource]
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_name",
                               "args": {"name": resource}})
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_sort_index",
                               "args": {"sort_index": tid}})
        for span in self.spans:
            if span.counter:
                events.append({
                    "ph": "C",
                    "pid": pids[span.stream],
                    "tid": tids[span.resource],
                    "name": span.name,
                    "cat": "counter",
                    "ts": span.start * 1e6,
                    "args": dict(span.args),
                })
                continue
            if span.instant:
                events.append({
                    "ph": "i",
                    "s": "t",
                    "pid": pids[span.stream],
                    "tid": tids[span.resource],
                    "name": span.name,
                    "cat": "mark",
                    "ts": span.start * 1e6,
                    "args": dict(span.args, op_id=span.op_id),
                })
                continue
            events.append({
                "ph": "X",
                "pid": pids[span.stream],
                "tid": tids[span.resource],
                "name": span.name,
                "cat": "op" if span.resource == "ops" else "resource",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": dict(span.args, op_id=span.op_id),
            })
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def save(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace JSON (byte-stable: sorted keys);
        returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), sort_keys=True))
        return path

    @classmethod
    def from_chrome(cls, payload: Dict[str, object]) -> "TraceRecorder":
        """Rebuild a recorder from a Chrome trace object previously
        produced by :meth:`to_chrome` (the ``repro report --trace``
        path). Timestamps come back in seconds; metadata events are
        consumed, not replayed."""
        events = payload.get("traceEvents", [])
        streams: Dict[int, str] = {}
        resources: Dict[Tuple[int, int], str] = {}
        for event in events:
            if event.get("ph") != "M":
                continue
            if event.get("name") == "process_name":
                name = event["args"]["name"]
                if name.startswith("stream:"):
                    name = name[len("stream:"):]
                streams[event["pid"]] = name
            elif event.get("name") == "thread_name":
                resources[(event["pid"], event["tid"])] = \
                    event["args"]["name"]
        recorder = cls()
        for event in events:
            phase = event.get("ph")
            if phase not in ("X", "i", "C"):
                continue
            pid, tid = event["pid"], event["tid"]
            stream = streams.get(pid, str(pid))
            resource = resources.get((pid, tid), str(tid))
            args = dict(event.get("args", {}))
            op_id = args.pop("op_id", -1)
            start = event["ts"] / 1e6
            end = start + (event.get("dur", 0.0) / 1e6)
            recorder.spans.append(TraceSpan(
                name=event.get("name", resource), resource=resource,
                stream=stream, start=start, end=end, op_id=op_id,
                args=tuple(sorted(args.items())),
                instant=(phase in ("i", "C")),
                counter=(phase == "C")))
        return recorder

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceRecorder":
        """Load a saved Chrome trace JSON file back into a recorder."""
        return cls.from_chrome(json.loads(Path(path).read_text()))

    def clear(self) -> None:
        self.spans.clear()
        self._context.clear()


class ScopedTraceRecorder:
    """A device-scoped view of a shared :class:`TraceRecorder`.

    A :class:`~repro.cluster.DevicePool` hands one of these to each
    member system so every component span lands in the shared recorder
    with the device's label prefixed to the resource (``d0:ch3/bk1``,
    ``d2:link``). Op context is owned by the *host-level* scheduler:
    ``push_op``/``pop_op``/``op_span`` are deliberately no-ops here —
    the inner systems' synchronous facades must not override the
    executing host op (and a per-device "ops" lane would register as an
    unattributed child in critical-path sweeps).
    """

    def __init__(self, parent: TraceRecorder, prefix: str) -> None:
        self.parent = parent
        self.prefix = prefix

    # context is owned by the host-level scheduler
    def push_op(self, stream: str, op_id: int) -> None:
        pass

    def pop_op(self) -> None:
        pass

    @property
    def current_stream(self) -> str:
        return self.parent.current_stream

    @property
    def current_op(self) -> int:
        return self.parent.current_op

    def span(self, resource: str, start: float, end: float,
             name: Optional[str] = None, **args) -> None:
        self.parent.span(self.prefix + resource, start, end,
                         name=name, **args)

    def op_span(self, stream: str, op_id: int, label: str,
                start: float, end: float, **args) -> None:
        pass

    def instant(self, resource: str, time: float,
                name: Optional[str] = None, stream: Optional[str] = None,
                op_id: Optional[int] = None, **args) -> None:
        self.parent.instant(self.prefix + resource, time, name=name,
                            stream=stream, op_id=op_id, **args)

    def counter(self, resource: str, time: float, name: str,
                stream: Optional[str] = None, **series) -> None:
        self.parent.counter(self.prefix + resource, time, name=name,
                            stream=stream, **series)
