"""Property-based tests on storage round-trips and timing invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SpaceTranslationLayer
from repro.core.api import array_to_bytes, bytes_to_array
from repro.core.building_block import bb_size_min, block_bytes, block_dims
from repro.host import run_pipeline
from repro.nvm import FlashArray, Geometry, TINY_TEST
from repro.sim import Timeline

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@SETTINGS
@given(st.data())
def test_stl_write_read_roundtrip(data):
    """Anything written at any coordinate reads back identically."""
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                       store_data=True)
    stl = SpaceTranslationLayer(flash)
    dims = (data.draw(st.integers(8, 40)), data.draw(st.integers(8, 40)))
    space = stl.create_space(dims, 4)
    origin = tuple(data.draw(st.integers(0, d - 1)) for d in dims)
    extents = tuple(data.draw(st.integers(1, d - o))
                    for o, d in zip(origin, dims))
    seed = data.draw(st.integers(0, 2**31 - 1))
    payload = np.random.default_rng(seed).integers(
        0, 2**31, extents).astype(np.int32)
    stl.write_region(space.space_id, origin, extents,
                     data=array_to_bytes(payload))
    result = stl.read_region(space.space_id, origin, extents)
    assert np.array_equal(bytes_to_array(result.data, np.int32), payload)


@SETTINGS
@given(st.data())
def test_two_writes_last_wins(data):
    """Overlapping writes resolve to the last write's bytes, with
    untouched regions preserved."""
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                       store_data=True)
    stl = SpaceTranslationLayer(flash)
    dims = (24, 24)
    space = stl.create_space(dims, 4)
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
    base = rng.integers(0, 2**31, dims).astype(np.int32)
    stl.write_region(space.space_id, (0, 0), dims,
                     data=array_to_bytes(base))
    o = (data.draw(st.integers(0, 20)), data.draw(st.integers(0, 20)))
    e = (data.draw(st.integers(1, 24 - o[0])),
         data.draw(st.integers(1, 24 - o[1])))
    patch = rng.integers(0, 2**31, e).astype(np.int32)
    stl.write_region(space.space_id, o, e, data=array_to_bytes(patch))
    result = stl.read_region(space.space_id, (0, 0), dims)
    merged = bytes_to_array(result.data, np.int32)
    expected = base.copy()
    expected[o[0]:o[0] + e[0], o[1]:o[1] + e[1]] = patch
    assert np.array_equal(merged, expected)


@settings(max_examples=60, deadline=None)
@given(channels=st.integers(1, 64), banks=st.integers(1, 16),
       page=st.sampled_from([512, 2048, 4096, 8192]),
       element=st.sampled_from([1, 2, 4, 8, 16]),
       rank=st.integers(1, 4))
def test_block_sizing_invariants(channels, banks, page, element, rank):
    """Eq. 1–4: blocks always cover at least one unit per channel and
    have power-of-two dimensions (ignoring pinned 1-axes)."""
    geometry = Geometry(channels=channels, banks_per_channel=banks,
                        page_size=page)
    dims = tuple([1024] * rank)
    for use_3d in (False, True):
        bb = block_dims(dims, element, geometry, use_3d=use_3d)
        assert len(bb) == rank
        assert block_bytes(bb, element) >= bb_size_min(geometry)
        for extent in bb:
            assert extent & (extent - 1) == 0  # power of two (incl. 1)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1e-3), st.floats(0, 1e-3),
                          st.floats(0, 1e-3)), min_size=1, max_size=20))
def test_pipeline_invariants(rows):
    """Total latency bounds: at least the bottleneck stage's busy time
    and the slowest single item; at most the fully serial sum."""
    stage_times = [list(row) for row in rows]
    result = run_pipeline(stage_times)
    serial = sum(sum(row) for row in stage_times)
    assert result.total_time <= serial + 1e-12
    assert result.total_time >= max(result.stage_busy) - 1e-12
    assert result.total_time >= max(sum(row) for row in stage_times) - 1e-12
    assert all(idle >= -1e-12 for idle in result.stage_idle)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1e-2), st.floats(1e-9, 1e-3)),
                min_size=1, max_size=30))
def test_timeline_reservations_never_overlap(requests):
    line = Timeline("t")
    intervals = []
    for earliest, duration in requests:
        start, end = line.reserve(earliest, duration)
        assert start >= earliest
        intervals.append((start, end))
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1 - 1e-15  # FCFS, no overlap
