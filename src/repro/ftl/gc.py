"""Greedy garbage collection for the page-mapped FTL.

The paper's prototype reserves 10 % of capacity as over-provisioning for
background GC (§6.1) and triggers collection when the free units of a
(channel, bank) combination drop below a threshold, "typically 10 %"
(§4.2). Victim selection is greedy (fewest live pages); valid pages are
relocated within the same (channel, bank) so the striping (FTL) or
building-block placement (STL) invariants survive collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ftl.mapping import OutOfSpaceError, PageMapFTL
from repro.nvm.address import PhysicalPageAddress, ppa_to_index
from repro.nvm.flash import FlashArray
from repro.sim.stats import StatSet

__all__ = ["GarbageCollector", "GcResult"]


@dataclass
class GcResult:
    """What one GC invocation did and how long it took."""

    ran: bool
    end_time: float
    pages_relocated: int = 0
    blocks_erased: int = 0
    stats: StatSet = field(default_factory=StatSet)


class GarbageCollector:
    """Greedy per-(channel, bank) garbage collector.

    Keeps the reverse PPA→LPN table needed to patch the forward map when
    live pages move. (For NDS the analogous reverse lookup maps physical
    units back to building blocks, §4.2; see :mod:`repro.core.gc`.)
    """

    def __init__(self, ftl: PageMapFTL, flash: FlashArray,
                 threshold: float = 0.10, policy: str = "greedy") -> None:
        if not (0.0 < threshold < 1.0):
            raise ValueError("GC threshold must be in (0, 1)")
        if policy not in ("greedy", "fifo", "cost-benefit"):
            raise ValueError(f"unknown GC policy {policy!r}")
        self.ftl = ftl
        self.flash = flash
        self.threshold = threshold
        self.policy = policy
        self.reverse: Dict[int, int] = {}
        self.total_relocated = 0
        self.total_erased = 0

    # ------------------------------------------------------------------
    # reverse-map maintenance (called by the SSD on every map change)
    # ------------------------------------------------------------------
    def note_alloc(self, lpn: int, ppa: PhysicalPageAddress,
                   old: Optional[PhysicalPageAddress]) -> None:
        if old is not None:
            self.reverse.pop(ppa_to_index(old, self.ftl.geometry), None)
        self.reverse[ppa_to_index(ppa, self.ftl.geometry)] = lpn

    def note_trim(self, ppa: Optional[PhysicalPageAddress]) -> None:
        if ppa is not None:
            self.reverse.pop(ppa_to_index(ppa, self.ftl.geometry), None)

    # ------------------------------------------------------------------
    def needs_collection(self, channel: int, bank: int) -> bool:
        return self.ftl.free_fraction(channel, bank) < self.threshold

    def collect(self, channel: int, bank: int, now: float) -> GcResult:
        """Collect victims in one (channel, bank) until above threshold.

        Returns timing (reads + programs + erase are charged to the
        flash timelines) and relocation counts.
        """
        result = GcResult(ran=False, end_time=now)
        plane = self.ftl.planes[(channel, bank)]
        geometry = self.ftl.geometry
        while self.needs_collection(channel, bank):
            victims = plane.victim_candidates(self.policy)
            if not victims:
                break
            victim = victims[0]
            state = plane.blocks[victim]
            moved_any = False
            for page in range(geometry.pages_per_block):
                if not state.valid[page]:
                    continue
                old_ppa = PhysicalPageAddress(channel, bank, victim, page)
                lpn = self.reverse.get(ppa_to_index(old_ppa, geometry))
                read = self.flash.read_pages([old_ppa], result.end_time if moved_any else now)
                payload = None
                if self.flash.store_data:
                    payload = [self.flash.page_data(old_ppa)]
                plane.invalidate(old_ppa)
                try:
                    new_ppa = plane.allocate_page()
                except OutOfSpaceError:
                    # Nothing free in this plane at all: give back and stop.
                    state.valid[page] = True
                    result.end_time = max(result.end_time, read.end_time)
                    return result
                program = self.flash.program_pages([new_ppa], read.end_time,
                                                   data=payload)
                if lpn is not None:
                    self.ftl.map[lpn] = new_ppa
                    self.reverse.pop(ppa_to_index(old_ppa, geometry), None)
                    self.reverse[ppa_to_index(new_ppa, geometry)] = lpn
                result.end_time = max(result.end_time, program.end_time)
                result.pages_relocated += 1
                moved_any = True
            erase = self.flash.erase_block(channel, bank, victim,
                                           result.end_time)
            plane.release_block(victim)
            result.end_time = max(result.end_time, erase.end_time)
            result.blocks_erased += 1
            result.ran = True
        self.total_relocated += result.pages_relocated
        self.total_erased += result.blocks_erased
        result.stats.count("gc_pages_relocated", result.pages_relocated)
        result.stats.count("gc_blocks_erased", result.blocks_erased)
        return result
