"""Cross-device behaviour: NDS works unchanged on any profile ([C1])."""

import numpy as np
import pytest

from repro.nvm import CONSUMER_SSD, PCM_PROTOTYPE, DeviceProfile
from repro.systems import BaselineSystem, HardwareNdsSystem


def _small(profile: DeviceProfile) -> DeviceProfile:
    """Shrink capacity so functional tests stay fast."""
    return profile.scaled_capacity(1 / 64)


@pytest.mark.parametrize("profile", [CONSUMER_SSD, PCM_PROTOTYPE],
                         ids=lambda p: p.name)
class TestAcrossProfiles:
    def test_functional_roundtrip(self, profile, rng):
        system = HardwareNdsSystem(_small(profile), store_data=True)
        data = rng.integers(0, 2**31, (64, 64)).astype(np.int32)
        system.ingest("m", (64, 64), 4, data=data)
        result = system.read_tile("m", (7, 11), (32, 40), with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(result.data, data[7:39, 11:51])

    def test_nds_beats_baseline_on_column_fetch(self, profile):
        small = _small(profile)
        nds = HardwareNdsSystem(small, store_data=False)
        base = BaselineSystem(small, store_data=False)
        n = 512
        for system in (nds, base):
            system.ingest("m", (n, n), 4)
            system.reset_time()
        nds_result = nds.read_tile("m", (0, 0), (n, 32))
        base_result = base.read_tile("m", (0, 0), (n, 32))
        assert (nds_result.effective_bandwidth
                > base_result.effective_bandwidth)

    def test_block_shape_derived_from_this_device(self, profile):
        system = HardwareNdsSystem(_small(profile), store_data=False)
        system.ingest("m", (1024, 1024), 4)
        space = system.stl.get_space(1)
        from repro.core.building_block import bb_size_min, block_bytes
        assert block_bytes(space.bb, 4) >= bb_size_min(profile.geometry)


class TestFourDimensionalSpaces:
    def test_4d_roundtrip(self, rng):
        """Spaces beyond 3-D work (blocks pin the extra axes to 1)."""
        from repro.core import SpaceTranslationLayer
        from repro.core.api import array_to_bytes, bytes_to_array
        from repro.nvm import FlashArray, TINY_TEST
        flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                           store_data=True)
        stl = SpaceTranslationLayer(flash)
        space = stl.create_space((8, 8, 4, 2), 4)
        assert space.bb[2:] == (1, 1)
        data = rng.integers(0, 2**31, (8, 8, 4, 2)).astype(np.int32)
        stl.write(space.space_id, (0, 0, 0, 0), (8, 8, 4, 2),
                  data=array_to_bytes(data))
        result = stl.read_region(space.space_id, (2, 2, 1, 0),
                                 (4, 4, 2, 2))
        assert np.array_equal(bytes_to_array(result.data, np.int32),
                              data[2:6, 2:6, 1:3, 0:2])
