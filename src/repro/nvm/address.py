"""Physical page addressing.

A physical page address (PPA) names one basic access unit:
``(channel, bank, block, page)``. A compact integer linearization is
used as dictionary key by the functional page store and by the FTL/STL
mapping tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nvm.geometry import Geometry

__all__ = ["PhysicalPageAddress", "ppa_to_index", "index_to_ppa"]


@dataclass(frozen=True, order=True)
class PhysicalPageAddress:
    """One basic access unit in the NVM array."""

    channel: int
    bank: int
    block: int
    page: int

    def validate(self, geometry: Geometry) -> None:
        if not (0 <= self.channel < geometry.channels):
            raise ValueError(f"channel {self.channel} out of range")
        if not (0 <= self.bank < geometry.banks_per_channel):
            raise ValueError(f"bank {self.bank} out of range")
        if not (0 <= self.block < geometry.blocks_per_bank):
            raise ValueError(f"block {self.block} out of range")
        if not (0 <= self.page < geometry.pages_per_block):
            raise ValueError(f"page {self.page} out of range")

    def index(self, geometry: Geometry) -> int:
        return ppa_to_index(self, geometry)


def ppa_to_index(ppa: PhysicalPageAddress, geometry: Geometry) -> int:
    """Linearize a PPA: channel-major, then bank, block, page."""
    return ((ppa.channel * geometry.banks_per_channel + ppa.bank)
            * geometry.blocks_per_bank + ppa.block) \
        * geometry.pages_per_block + ppa.page


def index_to_ppa(index: int, geometry: Geometry) -> PhysicalPageAddress:
    """Inverse of :func:`ppa_to_index`."""
    if not (0 <= index < geometry.total_pages):
        raise ValueError(f"page index {index} out of range")
    page = index % geometry.pages_per_block
    index //= geometry.pages_per_block
    block = index % geometry.blocks_per_bank
    index //= geometry.blocks_per_bank
    bank = index % geometry.banks_per_channel
    channel = index // geometry.banks_per_channel
    return PhysicalPageAddress(channel=channel, bank=bank, block=block, page=page)
