"""Flash-array fault integration: retry timing, typed errors, and the
bit-identical-when-clean guarantee."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (EraseFailError, FaultConfig, FaultInjector,
                          FaultPlan, ProgramFailError, UncorrectableError)
from repro.nvm import TINY_TEST
from repro.nvm.address import PhysicalPageAddress
from repro.nvm.flash import FlashArray
from repro.runtime import TraceRecorder


def _flash(config=None) -> FlashArray:
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing, store_data=True)
    if config is not None:
        flash.attach_faults(FaultInjector(config))
    return flash


def _spread_ppas(count: int):
    """Pages spread over channels/banks the way the allocators stripe."""
    geo = TINY_TEST.geometry
    return [PhysicalPageAddress(i % geo.channels,
                                (i // geo.channels) % geo.banks_per_channel,
                                0, i // (geo.channels * geo.banks_per_channel))
            for i in range(count)]


class TestCleanPathIsBitIdentical:
    def test_default_config_matches_detached_timings(self):
        """A healthy-device injector (default config, no plan) must not
        perturb a single completion time: with faults disabled the
        golden timings stay bit-identical."""
        plain, faulted = _flash(), _flash(FaultConfig())
        ppas = _spread_ppas(16)
        payload = [np.full(256, i, dtype=np.uint8) for i in range(16)]
        write_a = plain.program_pages(ppas, 0.0, data=payload)
        write_b = faulted.program_pages(ppas, 0.0, data=payload)
        assert write_a.completions == write_b.completions
        read_a = plain.read_pages(ppas, write_a.end_time)
        read_b = faulted.read_pages(ppas, write_b.end_time)
        assert read_a.completions == read_b.completions
        erase_a = plain.erase_block(0, 0, 0, read_a.end_time)
        erase_b = faulted.erase_block(0, 0, 0, read_b.end_time)
        assert erase_a.end_time == erase_b.end_time
        assert "read_retries" not in faulted.stats.counters


class TestRetryLadder:
    def test_corrupt_page_walks_ladder_then_fails(self):
        flash = _flash(FaultConfig(
            plan=FaultPlan().corrupt_page(0, 0, 0, 0, at=0.0)))
        trace = TraceRecorder()
        flash.trace = trace
        ppa = PhysicalPageAddress(0, 0, 0, 0)
        flash.program_pages([ppa], 0.0, data=[np.arange(256, dtype=np.uint8)])
        clean_end = _flash().read_pages(
            [PhysicalPageAddress(0, 0, 0, 0)], 1.0).end_time
        with pytest.raises(UncorrectableError) as info:
            flash.read_pages([ppa], 1.0)
        err = info.value
        assert err.reason == "corrupt"
        assert err.retries == len(FaultConfig().retry_sense_factors)
        # each retry re-senses and re-transfers: failure is detected
        # strictly after a clean read would have completed
        assert err.fail_time > clean_end
        assert flash.stats.counters["read_retries"] == err.retries
        assert flash.faults.stats.counters["uncorrectable_reads"] == 1
        retry_spans = [s for s in trace.spans if s.name == "read_retry"]
        assert len(retry_spans) == err.retries

    def test_retries_charge_sense_factors(self):
        """A single forced retry extends the read by the configured
        sense multiple plus one extra page transfer."""
        config = FaultConfig(rber_base=1e-2, jitter_log2=0.0,
                             retry_rber_gain=(2.0,),
                             retry_sense_factors=(1.5,))
        flash = _flash(config)
        ppa = PhysicalPageAddress(0, 0, 0, 0)
        flash.program_pages([ppa], 0.0, data=[np.zeros(256, np.uint8)])
        clean = _flash().read_pages([PhysicalPageAddress(0, 0, 0, 0)], 1.0)
        retried = flash.read_pages([ppa], 1.0)
        xfer = TINY_TEST.timing.transfer_time(TINY_TEST.geometry.page_size)
        expected = clean.end_time + 1.5 * TINY_TEST.timing.t_read + xfer
        assert retried.end_time == pytest.approx(expected)


class TestStructuralFailures:
    def test_dead_channel_read_raises_immediately(self):
        flash = _flash(FaultConfig(
            plan=FaultPlan().kill_channel(0, at=0.05)))
        ppa = PhysicalPageAddress(0, 0, 0, 0)
        flash.program_pages([ppa], 0.0, data=[np.zeros(256, np.uint8)])
        with pytest.raises(UncorrectableError) as info:
            flash.read_pages([ppa], 0.1)
        assert info.value.reason == "channel_dead"
        assert flash.faults.stats.counters["dead_channel_reads"] == 1
        # the other channels keep working
        other = PhysicalPageAddress(1, 0, 0, 0)
        flash.program_pages([other], 0.2, data=[np.zeros(256, np.uint8)])
        flash.read_pages([other], 0.3)

    def test_bad_block_program_and_erase_fail_with_charged_time(self):
        flash = _flash(FaultConfig(
            plan=FaultPlan().mark_block_bad(0, 0, 3, at=0.0)))
        ppa = PhysicalPageAddress(0, 0, 3, 0)
        with pytest.raises(ProgramFailError) as info:
            flash.program_pages([ppa], 0.0, data=[np.zeros(256, np.uint8)])
        assert info.value.reason == "bad_block"
        # the failed attempt occupied the bus and the array first
        assert info.value.fail_time > 0.0
        assert not flash.is_programmed(ppa)
        with pytest.raises(EraseFailError) as info:
            flash.erase_block(0, 0, 3, 0.1)
        assert info.value.reason == "bad_block"
        assert flash.faults.stats.counters["program_fails"] == 1
        assert flash.faults.stats.counters["erase_fails"] == 1

    def test_erase_clears_scripted_corruption(self):
        flash = _flash(FaultConfig(
            plan=FaultPlan().corrupt_page(0, 0, 0, 0, at=0.0)))
        ppa = PhysicalPageAddress(0, 0, 0, 0)
        flash.program_pages([ppa], 0.0, data=[np.zeros(256, np.uint8)])
        with pytest.raises(UncorrectableError):
            flash.read_pages([ppa], 0.1)
        end = flash.erase_block(0, 0, 0, 0.2).end_time
        flash.program_pages([ppa], end, data=[np.zeros(256, np.uint8)])
        flash.read_pages([ppa], end + 0.01)  # clean again
        assert flash.faults.erase_count((0, 0, 0)) == 1
