"""NDS garbage collection (§4.2).

"Garbage collection in NDS is similar to that of a conventional NVM
storage device, except that NDS can maintain a reverse lookup table
that records the building blocks associated with the erasing unit."
The reverse table maps each physical unit to ``(space, block
coordinate, position inside the block)`` — modelled as the 8 bytes of
out-of-band metadata per unit the paper describes — so relocations can
patch the B-tree leaf in place. Relocation stays within the same
(channel, bank) to preserve block parallelism.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.allocator import NdsAllocator
from repro.core.btree import BlockEntry
from repro.faults.errors import EraseFailError, ProgramFailError
from repro.faults.parity import PARITY_POSITION
from repro.ftl.mapping import OutOfSpaceError
from repro.nvm.address import PhysicalPageAddress, ppa_to_index
from repro.nvm.flash import FlashArray
from repro.sim.stats import StatSet

__all__ = ["NdsGarbageCollector", "NdsGcResult", "ReverseEntry"]

#: modelled out-of-band bytes consumed per unit by the reverse table
OOB_BYTES_PER_UNIT = 8


@dataclass(frozen=True)
class ReverseEntry:
    space_id: int
    block_coord: Tuple[int, ...]
    position: int


@dataclass
class NdsGcResult:
    ran: bool
    end_time: float
    units_relocated: int = 0
    blocks_erased: int = 0
    stats: StatSet = field(default_factory=StatSet)


class NdsGarbageCollector:
    """Greedy GC over the NDS allocator's planes."""

    def __init__(self, allocator: NdsAllocator, flash: FlashArray,
                 entry_resolver: Callable[[int, Tuple[int, ...]], Optional[BlockEntry]],
                 threshold: float = 0.10, policy: str = "greedy") -> None:
        if not (0.0 < threshold < 1.0):
            raise ValueError("GC threshold must be in (0, 1)")
        if policy not in ("greedy", "fifo", "cost-benefit"):
            raise ValueError(f"unknown GC policy {policy!r}")
        self.policy = policy
        self.allocator = allocator
        self.flash = flash
        self.threshold = threshold
        #: resolves (space_id, block_coord) -> live BlockEntry
        self._entry_resolver = entry_resolver
        self.reverse: Dict[int, ReverseEntry] = {}
        self.total_relocated = 0
        self.total_erased = 0
        self.total_retired = 0
        #: optional metrics registry (set via the owning system's
        #: ``set_metrics``)
        self.metrics = None
        #: optional trace recorder (set via ``set_trace``); collections
        #: are marked as instants, never duration spans — a GC child
        #: span would steal critical-path attribution from the flash
        #: work it triggered
        self.trace = None
        #: relocation callback for parity units (position
        #: :data:`~repro.faults.parity.PARITY_POSITION` in the reverse
        #: table): called as ``parity_patcher(space_id, coord, new_ppa)``
        self.parity_patcher: Optional[Callable] = None

    def _recovery(self):
        """Suppress probabilistic fault draws inside relocation traffic
        (the controller verifies its own moves)."""
        faults = self.flash.faults
        return faults.suppress() if faults is not None else nullcontext()

    # ------------------------------------------------------------------
    def note_alloc(self, ppa: PhysicalPageAddress, space_id: int,
                   block_coord: Tuple[int, ...], position: int) -> None:
        self.reverse[ppa_to_index(ppa, self.allocator.geometry)] = ReverseEntry(
            space_id, block_coord, position)

    def note_release(self, ppa: Optional[PhysicalPageAddress]) -> None:
        if ppa is not None:
            self.reverse.pop(ppa_to_index(ppa, self.allocator.geometry), None)

    def reverse_table_bytes(self) -> int:
        """Modelled OOB footprint of the reverse table."""
        return len(self.reverse) * OOB_BYTES_PER_UNIT

    # ------------------------------------------------------------------
    def needs_collection(self, channel: int, bank: int) -> bool:
        return self.allocator.free_fraction(channel, bank) < self.threshold

    def collect(self, channel: int, bank: int, now: float,
                target_fraction: float = None,
                max_victims: int = None) -> NdsGcResult:
        """Reclaim invalidated units in one (channel, bank).

        ``target_fraction`` overrides the trigger threshold (background
        GC cleans up to a higher watermark); ``max_victims`` bounds the
        work per invocation.
        """
        with self._recovery():
            result = self._collect(channel, bank, now, target_fraction,
                                   max_victims)
        if self.metrics is not None and result.ran:
            self.metrics.observe("stl.gc", result.end_time - now)
            self.metrics.count("stl.gc.collections")
            self.metrics.count("stl.gc.units_relocated",
                               result.units_relocated)
            self.metrics.count("stl.gc.blocks_erased", result.blocks_erased)
        if self.trace is not None and result.ran:
            self.trace.instant(
                "gc", result.end_time, name="gc", start=now,
                duration=result.end_time - now, channel=channel, bank=bank,
                units_relocated=result.units_relocated,
                blocks_erased=result.blocks_erased)
        return result

    def _collect(self, channel: int, bank: int, now: float,
                 target_fraction: float = None,
                 max_victims: int = None) -> NdsGcResult:
        target = (target_fraction if target_fraction is not None
                  else self.threshold)
        result = NdsGcResult(ran=False, end_time=now)
        plane = self.allocator.planes[(channel, bank)]
        geometry = self.allocator.geometry
        while self.allocator.free_fraction(channel, bank) < target:
            if max_victims is not None and result.blocks_erased >= max_victims:
                break
            victims = plane.victim_candidates(self.policy)
            if not victims:
                break
            victim = victims[0]
            state = plane.blocks[victim]
            for page in range(geometry.pages_per_block):
                if not state.valid[page]:
                    continue
                old_ppa = PhysicalPageAddress(channel, bank, victim, page)
                back_ref = self.reverse.get(ppa_to_index(old_ppa, geometry))
                read = self.flash.read_pages([old_ppa], now)
                payload = None
                if self.flash.store_data:
                    payload = [self.flash.page_data(old_ppa)]
                plane.invalidate(old_ppa)
                try:
                    new_ppa = plane.allocate_page()
                except OutOfSpaceError:
                    state.valid[page] = True
                    result.end_time = max(result.end_time, read.end_time)
                    return result
                issue = read.end_time
                while True:
                    try:
                        program = self.flash.program_pages([new_ppa], issue,
                                                           data=payload)
                        break
                    except ProgramFailError as err:
                        plane.invalidate(new_ppa)
                        issue = self.retire_block(channel, bank,
                                                  new_ppa.block,
                                                  err.fail_time)
                        try:
                            new_ppa = plane.allocate_page()
                        except OutOfSpaceError:
                            state.valid[page] = True
                            result.end_time = max(result.end_time, issue)
                            return result
                result.end_time = max(result.end_time, program.end_time)
                result.units_relocated += 1
                if back_ref is not None:
                    self._patch_entry(back_ref, old_ppa, new_ppa)
            try:
                erase = self.flash.erase_block(channel, bank, victim,
                                               result.end_time)
            except EraseFailError as err:
                self._retire(plane, victim)
                result.end_time = max(result.end_time, err.fail_time)
                result.ran = True
                continue
            plane.release_block(victim)
            result.end_time = max(result.end_time, erase.end_time)
            result.blocks_erased += 1
            result.ran = True
        self.total_relocated += result.units_relocated
        self.total_erased += result.blocks_erased
        result.stats.count("nds_gc_units_relocated", result.units_relocated)
        result.stats.count("nds_gc_blocks_erased", result.blocks_erased)
        return result

    def collect_background(self, now: float, budget_seconds: float,
                           watermark: float = None) -> NdsGcResult:
        """Idle-time collection (§6.1: over-provisioning is reserved
        for *background* garbage collection).

        Cleans the fullest planes up to ``watermark`` (default 2× the
        foreground trigger) until the time budget runs out, so later
        foreground writes don't stall on inline GC.
        """
        if watermark is None:
            watermark = min(0.9, 2.0 * self.threshold)
        deadline = now + budget_seconds
        total = NdsGcResult(ran=False, end_time=now)
        planes = sorted(self.allocator.planes,
                        key=lambda key: self.allocator.free_fraction(*key))
        for channel, bank in planes:
            if total.end_time >= deadline:
                break
            if self.allocator.free_fraction(channel, bank) >= watermark:
                continue
            part = self.collect(channel, bank, total.end_time,
                                target_fraction=watermark, max_victims=1)
            total.units_relocated += part.units_relocated
            total.blocks_erased += part.blocks_erased
            total.end_time = max(total.end_time, part.end_time)
            total.ran = total.ran or part.ran
        total.stats.count("nds_gc_units_relocated", total.units_relocated)
        total.stats.count("nds_gc_blocks_erased", total.blocks_erased)
        return total

    def _patch_entry(self, back_ref: ReverseEntry,
                     old_ppa: PhysicalPageAddress,
                     new_ppa: PhysicalPageAddress) -> None:
        geometry = self.allocator.geometry
        self.reverse.pop(ppa_to_index(old_ppa, geometry), None)
        self.reverse[ppa_to_index(new_ppa, geometry)] = back_ref
        if back_ref.position == PARITY_POSITION:
            # parity units live in the STL's parity store, not a B-tree
            if self.parity_patcher is not None:
                self.parity_patcher(back_ref.space_id, back_ref.block_coord,
                                    new_ppa)
            return
        entry = self._entry_resolver(back_ref.space_id, back_ref.block_coord)
        if entry is None:
            return
        entry.record_release(back_ref.position)
        entry.record_alloc(new_ppa, back_ref.position)

    # ------------------------------------------------------------------
    # grown-bad-block management
    # ------------------------------------------------------------------
    def _retire(self, plane, block: int) -> None:
        plane.retire_block(block)
        self.total_retired += 1
        if self.flash.faults is not None:
            self.flash.faults.stats.count("grown_bad_blocks")

    def retire_block(self, channel: int, bank: int, block: int,
                     now: float) -> float:
        """Relocate a grown-bad block's live units within the plane and
        take the block out of service. Returns the finish time."""
        plane = self.allocator.planes[(channel, bank)]
        geometry = self.allocator.geometry
        state = plane._state(block)
        if plane.active_block == block:
            plane.active_block = None
        if block in plane.free_blocks:
            plane.free_blocks.remove(block)
        end = now
        with self._recovery():
            for page in range(geometry.pages_per_block):
                if not state.valid[page]:
                    continue
                old_ppa = PhysicalPageAddress(channel, bank, block, page)
                back_ref = self.reverse.get(ppa_to_index(old_ppa, geometry))
                read = self.flash.read_pages([old_ppa], end)
                payload = None
                if self.flash.store_data:
                    payload = [self.flash.page_data(old_ppa)]
                state.valid[page] = False
                try:
                    new_ppa = plane.allocate_page()
                except OutOfSpaceError:
                    self._collect(channel, bank, read.end_time)
                    new_ppa = plane.allocate_page()
                program = self.flash.program_pages([new_ppa], read.end_time,
                                                   data=payload)
                if back_ref is not None:
                    self._patch_entry(back_ref, old_ppa, new_ppa)
                self.total_relocated += 1
                end = max(end, program.end_time)
            self._retire(plane, block)
        return end
