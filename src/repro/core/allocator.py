"""NDS space allocator — the §4.2 access-unit selection rules.

The allocator hands out physical pages for building-block positions so
that every block spreads over as many channels (then banks) as
possible:

1. first unit of a block → random channel and bank;
2. existing block → the *least-used channel* of that block, in the same
   bank as the block's most recently allocated unit;
3. if the block already uses every channel of that bank → an unused or
   least-used bank;
4. if every (channel, bank) is used → one of the least-used banks, then
   rules 1–3 again.

Overwrites pick a fresh unit from the *same channel and bank* as the
overwritten unit, preserving the block's parallelism.

Free-space bookkeeping reuses the per-(channel, bank) log-structured
:class:`~repro.ftl.mapping.PlaneAllocator`; NDS manages flash like an
FTL underneath, it just *places* differently.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.btree import BlockEntry
from repro.core.errors import CapacityError
from repro.ftl.mapping import OutOfSpaceError, PlaneAllocator
from repro.nvm.geometry import Geometry

__all__ = ["NdsAllocator"]

#: type alias: the (channel, bank) planes a shard may allocate from
Planes = FrozenSet[Tuple[int, int]]


class NdsAllocator:
    """Physical-unit allocation for building blocks."""

    def __init__(self, geometry: Geometry, seed: int = 0x5D5) -> None:
        self.geometry = geometry
        self.rng = random.Random(seed)
        self.planes: Dict[Tuple[int, int], PlaneAllocator] = {
            (c, b): PlaneAllocator(c, b, geometry)
            for c in range(geometry.channels)
            for b in range(geometry.banks_per_channel)
        }
        #: optional :class:`~repro.faults.injector.FaultInjector` shared
        #: with the flash array — lets placement steer around dead
        #: channels; None leaves every decision untouched
        self.faults = None

    def _channel_dead(self, channel: int) -> bool:
        return self.faults is not None and self.faults.channel_dead(channel)

    # ------------------------------------------------------------------
    # free-space queries
    # ------------------------------------------------------------------
    def free_fraction(self, channel: int, bank: int) -> float:
        plane = self.planes[(channel, bank)]
        return plane.free_page_count() / self.geometry.pages_per_bank

    def total_free_pages(self) -> int:
        return sum(p.free_page_count() for p in self.planes.values())

    # ------------------------------------------------------------------
    # §4.2 placement rules
    # ------------------------------------------------------------------
    def choose_target(self, entry: BlockEntry,
                      allowed: Optional[Planes] = None) -> Tuple[int, int]:
        """Pick the (channel, bank) the next unit of ``entry`` should
        come from, before consulting free space.

        ``allowed`` restricts every rule to a shard's plane subset; with
        None (the default) the rules see the whole array and the RNG
        draw sequence is identical to the pre-sharding allocator.
        """
        g = self.geometry
        if allowed is not None:
            return self._choose_target_sharded(entry, allowed)
        if entry.last_alloc is None:
            # Rule 1: brand-new block — random channel and bank.
            return (self.rng.randrange(g.channels),
                    self.rng.randrange(g.banks_per_channel))
        bank = entry.last_alloc.bank
        channels_in_bank = entry.bank_channels.get(bank, ())
        if len(channels_in_bank) >= g.channels:
            # Rule 3: block covers every channel of this bank already —
            # move to an unused or least-used bank.
            bank = self._least_used_bank(entry)
        # Rule 2: least-used channel (within the chosen bank).
        channel = self._least_used_channel(entry, bank)
        return channel, bank

    def _choose_target_sharded(self, entry: BlockEntry,
                               allowed: Planes) -> Tuple[int, int]:
        """The same rules 1–3, with "every channel/bank" meaning the
        shard's channels/banks."""
        planes = sorted(allowed)
        if entry.last_alloc is None:
            return planes[self.rng.randrange(len(planes))]
        bank = entry.last_alloc.bank
        shard_channels_in_bank = {c for (c, b) in allowed if b == bank}
        used_in_bank = {c for (c, b) in entry.bank_use if b == bank}
        if not shard_channels_in_bank or \
                used_in_bank >= shard_channels_in_bank:
            bank = self._least_used_bank(entry, allowed)
        channel = self._least_used_channel(entry, bank, allowed)
        return channel, bank

    def _place_cols(self, entry: BlockEntry):
        """The entry's columnar placement counters, built on first use.

        ``key_grid[b]`` is one ``min``-able row per bank (combined
        bank-use/channel-use sort key, see :class:`BlockEntry`);
        ``bank_tot[b]`` is the bank's total unit count. BlockEntry keeps
        both incrementally current across record_alloc/record_release,
        so the dict walks below run once per block, not once per unit.
        """
        cols = entry.place_cols
        if cols is None:
            g = self.geometry
            m = len(entry.pages) + 1
            chan = [entry.channel_use.get(c, 0) for c in range(g.channels)]
            key_grid = []
            for b in range(g.banks_per_channel):
                per = entry.bank_channels.get(b)
                if per:
                    key_grid.append([per.get(c, 0) * m + chan[c]
                                     for c in range(g.channels)])
                else:
                    key_grid.append(list(chan))
            bank_tot = [0] * g.banks_per_channel
            for (_c, b), count in entry.bank_use.items():
                bank_tot[b] += count
            cols = (key_grid, bank_tot)
            entry.place_cols = cols
        return cols

    def _least_used_bank(self, entry: BlockEntry,
                         allowed: Optional[Planes] = None) -> int:
        if allowed is None:
            usage = self._place_cols(entry)[1]
            least = min(usage)
            candidates = [b for b, u in enumerate(usage) if u == least]
            return self.rng.choice(candidates)
        banks = sorted({b for (_c, b) in allowed})
        usage = {b: 0 for b in banks}
        for (_c, b), count in entry.bank_use.items():
            if b in usage:
                usage[b] += count
        least = min(usage.values())
        candidates = [b for b in banks if usage[b] == least]
        return self.rng.choice(candidates)

    def _least_used_channel(self, entry: BlockEntry, bank: int,
                            allowed: Optional[Planes] = None) -> int:
        if allowed is None:
            # Columnar fast path: one C-level min + index over the
            # bank's combined-key row replaces the 2-dict-gets-per-
            # channel Python scan below. The key packs (bank use,
            # overall channel use) into one int, and index() returns
            # the first minimum — the same lexicographic order and
            # lowest-channel-id tie-break as the scan.
            row = self._place_cols(entry)[0][bank]
            return row.index(min(row))
        channels = sorted({c for (c, b) in allowed if b == bank})
        if not channels:
            channels = sorted({c for (c, _b) in allowed})
        # Single pass, no list/sort churn (this runs once per allocated
        # unit): pick the least-used channel in the bank, tie-break on
        # overall per-channel use so blocks larger than one stripe still
        # spread evenly, further ties to the lowest channel id — exactly
        # the order the old build-sort-index pipeline produced.
        bank_use = entry.bank_channels.get(bank) or {}
        channel_use = entry.channel_use
        best = None
        best_bank_use = 0
        best_channel_use = 0
        for c in channels:
            used = bank_use.get(c, 0)
            if best is None or used < best_bank_use:
                best = c
                best_bank_use = used
                best_channel_use = channel_use.get(c, 0)
            elif used == best_bank_use:
                overall = channel_use.get(c, 0)
                if overall < best_channel_use:
                    best = c
                    best_channel_use = overall
        return best

    # ------------------------------------------------------------------
    def allocate(self, entry: BlockEntry, position: int,
                 prefer: Optional[Tuple[int, int]] = None,
                 allowed: Optional[Planes] = None):
        """Allocate a physical unit for block position ``position``.

        ``prefer`` pins (channel, bank) — used for overwrites, which must
        land in the same channel and bank as the replaced unit (§4.2).
        ``allowed`` confines every choice (including the rule-4
        fallback) to a shard's planes. Falls back over banks/channels
        (rule 4) before giving up.
        """
        if prefer is not None:
            target = prefer
        else:
            target = self.choose_target(entry, allowed=allowed)
        ppa = None
        if not self._channel_dead(target[0]):
            ppa = self._try_allocate(target)
        if ppa is None:
            ppa = self._fallback_allocate(target, allowed=allowed)
        if ppa is None:
            raise CapacityError("no free access unit in any channel/bank")
        entry.record_alloc(ppa, position)
        return ppa

    def allocate_raw(self, prefer: Optional[Tuple[int, int]] = None,
                     allowed: Optional[Planes] = None):
        """Allocate a physical unit outside any building block's
        bookkeeping — used for cross-channel parity units."""
        target = prefer
        if target is None or self._channel_dead(target[0]):
            live = [key for key in (self.planes if allowed is None
                                    else sorted(allowed))
                    if not self._channel_dead(key[0])]
            if not live:
                raise CapacityError("no live channel for a raw allocation")
            target = max(live, key=lambda key: self.planes[key].free_page_count())
        ppa = self._try_allocate(target)
        if ppa is None:
            ppa = self._fallback_allocate(target, allowed=allowed)
        if ppa is None:
            raise CapacityError("no free access unit in any channel/bank")
        return ppa

    def _try_allocate(self, target: Tuple[int, int]):
        try:
            return self.planes[target].allocate_page()
        except OutOfSpaceError:
            return None

    def _fallback_allocate(self, target: Tuple[int, int],
                           allowed: Optional[Planes] = None):
        """Rule 4: scan least-used (most-free) planes first (within the
        shard, when one is given — the shard boundary is absolute)."""
        keys = self.planes.keys() if allowed is None else sorted(allowed)
        ordered = sorted(keys,
                         key=lambda key: -self.planes[key].free_page_count())
        for key in ordered:
            if key == target or self._channel_dead(key[0]):
                continue
            ppa = self._try_allocate(key)
            if ppa is not None:
                return ppa
        return None

    def invalidate(self, ppa) -> None:
        self.planes[(ppa.channel, ppa.bank)].invalidate(ppa)
