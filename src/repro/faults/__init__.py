"""Deterministic fault injection, ECC/read-retry, bad blocks, parity.

``repro.faults`` is the reliability subsystem: a seeded error model
(RBER as a function of wear and retention), a tiered ECC read-retry
ladder that charges real sensing time on the flash timelines, scripted
fault plans (kill a channel, mark a block bad, corrupt a page),
grown-bad-block bookkeeping, and XOR parity groups for NDS building
blocks with degraded-read reconstruction.

The package is a dependency leaf (stdlib + numpy + ``repro.sim``
only): :mod:`repro.nvm.flash` imports it, and every higher layer
reaches it through the flash array's optional ``faults`` attachment —
with no injector attached, all timing is bit-identical to the
fault-free model.
"""

from repro.faults.errors import (DegradedReadError, EraseFailError,
                                 FaultError, ProgramFailError,
                                 UncorrectableError)
from repro.faults.injector import FaultInjector
from repro.faults.model import ErrorModel, FaultConfig, ReadPlan, stable_unit
from repro.faults.parity import PARITY_POSITION, ParityStore, xor_fold
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "FaultEvent",
    "ErrorModel",
    "ReadPlan",
    "ParityStore",
    "PARITY_POSITION",
    "xor_fold",
    "stable_unit",
    "FaultError",
    "UncorrectableError",
    "DegradedReadError",
    "ProgramFailError",
    "EraseFailError",
]
