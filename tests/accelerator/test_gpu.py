"""Tests for the GPU model — the Fig. 3 curve properties."""

import pytest

from repro.accelerator import RTX2080, EngineCurve, GpuModel, KernelModel


class TestEngineCurve:
    def test_peak_at_optimal_dim(self):
        curve = EngineCurve("e", peak_rate=1e9, optimal_dim=512)
        assert curve.rate(512) == pytest.approx(1e9)
        assert curve.rate(64) < 1e9
        assert curve.rate(8192) < 1e9

    def test_rises_then_falls(self):
        curve = RTX2080.cuda
        dims = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
        rates = [curve.rate(d) for d in dims]
        peak_index = rates.index(max(rates))
        assert dims[peak_index] == curve.optimal_dim
        assert rates[:peak_index + 1] == sorted(rates[:peak_index + 1])
        assert rates[peak_index:] == sorted(rates[peak_index:], reverse=True)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            RTX2080.cuda.rate(0)


class TestPaperOptima:
    def test_cuda_peak_is_2048(self):
        """§2.2 [C2]: CUDA cores' optimal submatrix is 2048x2048."""
        assert RTX2080.cuda.optimal_dim == 2048

    def test_tensor_peak_is_512(self):
        """§2.2 [C2]: Tensor Cores' optimal submatrix is 512x512."""
        assert RTX2080.tensor.optimal_dim == 512

    def test_tensor_cores_lead_significantly(self):
        """Fig. 3: Tensor Cores hold a large performance lead."""
        assert RTX2080.tensor.peak_rate > 5 * RTX2080.cuda.peak_rate

    def test_engine_optima_differ_from_storage_optimum(self):
        """[C3]: no single tile size satisfies both accelerator engines
        and the storage device."""
        assert RTX2080.cuda.optimal_dim != RTX2080.tensor.optimal_dim


class TestGpuModel:
    def test_h2d_time(self):
        gpu = GpuModel("g", RTX2080.cuda, RTX2080.tensor,
                       h2d_bandwidth=10e9, h2d_overhead=1e-6)
        assert gpu.h2d_time(10**7) == pytest.approx(1e-6 + 1e-3)
        assert gpu.h2d_time(0) == 0.0
        with pytest.raises(ValueError):
            gpu.h2d_time(-1)

    def test_kernel_time_grows_with_data(self):
        assert (RTX2080.kernel_time(2**20, 512)
                < RTX2080.kernel_time(2**24, 512))

    def test_device_memory_check(self):
        assert RTX2080.fits_in_device_memory(2**30)
        assert not RTX2080.fits_in_device_memory(16 * 2**30)

    def test_processing_rate_peaks_at_engine_optimum(self):
        rates = {d: RTX2080.processing_rate(d, use_tensor_cores=True)
                 for d in [128, 256, 512, 1024, 2048]}
        assert max(rates, key=rates.get) == 512


class TestKernelModel:
    def test_gemm_uses_tensor_curve(self):
        km = KernelModel(RTX2080)
        tcu = km.gemm(512, 512, 512, use_tensor_cores=True)
        cuda = km.gemm(512, 512, 512, use_tensor_cores=False)
        assert tcu < cuda

    def test_stencil_scales_with_area(self):
        km = KernelModel(RTX2080)
        assert km.stencil(512, 512) < km.stencil(1024, 1024)

    def test_all_kernels_positive(self):
        km = KernelModel(RTX2080)
        assert km.traversal_pass(32, 4096) > 0
        assert km.spmv_pass(256, 4096) > 0
        assert km.kmeans_assign(256, 4096, 16) > 0
        assert km.knn_distances(16, 4096) > 0
        assert km.tensor_times_vector(1024, 1024) > 0
        assert km.tensor_contraction(64, 4) > 0
