"""The software-only NDS architecture (paper Fig. 7(b)).

All NDS functions — the API and the STL — run on the host processor;
the device is reached through a LightNVM-style interface that exposes
physical addresses, so the STL's building-block placement is honoured
but every byte still crosses the interconnect and every object is
assembled **in host memory**: the per-building-block-row copies
(256 × 2 KB per block in the paper's §7.1 configuration) ride the host
CPU and bound the effective bandwidth at ~3.8 GB/s.

Cost calibration (§7.3): a worst-case single-page request pays ~41 µs
over the baseline — the API/LightNVM submission base cost plus the
host-side B-tree walk and translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.nd import (neighbor_regions, region_group, region_key,
                            slices_overlap)
from repro.core.api import bytes_to_array
from repro.core.errors import FaultError, NdsError
from repro.core.stl import SpaceTranslationLayer
from repro.core.translator import pages_for_region
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultConfig
from repro.host.cpu import HostCpu
from repro.interconnect.link import Link
from repro.nvm.flash import FlashArray
from repro.nvm.profiles import DeviceProfile
from repro.runtime.scheduler import QueueDepthWindow
from repro.systems.base import StorageSystem, SystemOpResult

__all__ = ["SoftwareNdsSystem", "SoftwareStlCosts"]


@dataclass(frozen=True)
class SoftwareStlCosts:
    """Host-side STL cost parameters (seconds)."""

    #: per API request: syscall + LightNVM submission setup
    request_base: float = 30e-6
    #: per B-tree node visited on the host
    per_node: float = 2e-6
    #: per building block translated (Eq. 5 arithmetic)
    per_block: float = 0.6e-6
    #: per vectored LightNVM command issued (one per building block)
    per_command: float = 4e-6
    #: per physical unit on the *write* path: PPA-list construction,
    #: per-page completion handling and map/OOB bookkeeping through the
    #: host kernel stack. Calibrated so the software NDS write penalty
    #: matches Fig. 9(d)'s ~30 % loss against the baseline.
    per_unit_write: float = 19e-6


class SoftwareNdsSystem(StorageSystem):
    """Host-resident STL over LightNVM physical addressing."""

    name = "software-nds"

    def __init__(self, profile: DeviceProfile, store_data: bool = False,
                 queue_depth: int = 32,
                 costs: SoftwareStlCosts = SoftwareStlCosts(),
                 bb_override: Optional[Sequence[int]] = None,
                 cpu: Optional[HostCpu] = None,
                 faults: Optional[FaultConfig] = None,
                 devices: int = 1, pool=None,
                 extents_per_device: int = 1, rebalance=None,
                 cache: Optional[CacheConfig] = None,
                 parallel: int = 0) -> None:
        self.profile = profile
        self.store_data = store_data
        self.queue_depth = queue_depth
        self.costs = costs
        self.bb_override = bb_override
        self.page_size = profile.geometry.page_size
        if self._init_cluster(
                devices, pool, faults, rebalance, extents_per_device,
                lambda i, f: SoftwareNdsSystem(
                    profile, store_data=store_data, queue_depth=queue_depth,
                    costs=costs, bb_override=bb_override, faults=f,
                    cache=cache),
                parallel=parallel):
            return
        self.flash = FlashArray(profile.geometry, profile.timing,
                                store_data=store_data)
        if faults is not None:
            self.flash.attach_faults(FaultInjector(faults))
        self.stl = SpaceTranslationLayer(self.flash,
                                         gc_threshold=profile.overprovisioning,
                                         parity=faults.parity
                                         if faults is not None else False)
        self.link = Link(profile.link_bandwidth, profile.link_command_overhead)
        self.cpu = cpu if cpu is not None else HostCpu()
        self._spaces: Dict[str, int] = {}
        self._bulk_ingest = False
        self._init_tier(cache)

    # ------------------------------------------------------------------
    def _execute_ingest(self, dataset: str, dims: Sequence[int],
                        element_size: int,
                        data: Optional[np.ndarray] = None,
                        start_time: float = 0.0,
                        shard=None) -> SystemOpResult:
        if dataset in self._spaces:
            raise ValueError(f"dataset {dataset!r} already ingested")
        space = self.stl.create_space(
            dims, element_size, bb_override=self.bb_override,
            shard=shard,
            # rank >= 3: use bank-level parallelism for 3-D cube blocks
            # (§4.1 Eq. 3/4) — 2-D blocks orthogonal to the innermost
            # axis would shatter depth-crossing accesses
            use_3d_blocks=len(tuple(dims)) >= 3 and self.bb_override is None)
        self._spaces[dataset] = space.space_id
        # bulk load bypasses the DRAM tier: a whole dataset would blow
        # through the byte budget and churn the dirty set for nothing
        self._bulk_ingest = True
        try:
            return self._execute_write(dataset, tuple(0 for _ in dims), dims,
                                       data=data, start_time=start_time)
        finally:
            self._bulk_ingest = False

    # ------------------------------------------------------------------
    def _execute_read(self, dataset: str, origin: Sequence[int],
                      extents: Sequence[int], start_time: float = 0.0,
                      with_data: bool = False,
                      dtype: Optional[np.dtype] = None) -> SystemOpResult:
        space_id = self._space_id(dataset)
        space = self.stl.get_space(space_id)
        accesses = self.stl.plan_region(space_id, origin, extents)
        # Host-side request setup: API + space-translation arithmetic.
        setup_done = self.cpu.run_issue_work(
            start_time,
            self.costs.request_base + self.costs.per_block * len(accesses),
            label="stl_translate")

        out = None
        if with_data and self.store_data:
            out = np.zeros(tuple(extents) + (space.element_size,),
                           dtype=np.uint8)
        elem = space.element_size
        window = QueueDepthWindow(self.queue_depth)
        completions: List[float] = []
        fetched = 0
        tier = self.tier
        missed = tier is None
        for access in accesses:
            earliest = window.earliest(setup_done)
            region_bytes = access.element_count() * elem
            row_bytes = access.extent()[-1] * elem
            if tier is not None:
                entry = tier.lookup(region_key(dataset, access))
                if entry is not None:
                    # DRAM hit: one marshalling copy at host-memory
                    # bandwidth, no command/flash/link work at all
                    if out is not None and entry.data is not None:
                        slicer = tuple(slice(lo, hi)
                                       for lo, hi in access.out_slice)
                        out[slicer] = entry.data
                    done = self.cpu.copy(region_bytes, earliest, row_bytes,
                                         label="cache_copy")
                    window.complete(done)
                    completions.append(done)
                    continue
                missed = True
                # coherence: buffered dirty regions overlapping this
                # block slice must reach flash before we read around them
                earliest = self._flush_overlapping(dataset, access, earliest)
            # One vectored LightNVM command per building block, plus the
            # host B-tree walk for that block.
            issued = self.cpu.run_issue_work(
                earliest,
                self.costs.per_command + self.costs.per_node * space.rank,
                label="stl_translate")
            block = self.stl.read_block(space_id, access, issued, out=out)
            fetched += block.pages * self.page_size
            transfer = self.link.transfer(block.pages * self.page_size,
                                          block.completion_time)
            # Host assembly: scatter the block's rows into the tile
            # buffer — one memcpy per block-row segment ([P1] residue).
            done = self.cpu.copy(region_bytes, transfer.end_time, row_bytes)
            if tier is not None:
                data = (self.stl.block_region_data(space_id, access)
                        if self.store_data else None)
                done = tier.insert(region_key(dataset, access), region_bytes,
                                   done, payload=(dataset, space_id, access),
                                   data=data,
                                   group=region_group(dataset, access))
            window.complete(done)
            completions.append(done)
        end = max(completions, default=setup_done)
        if tier is not None and missed and tier.config.prefetch:
            # async readahead: neighbor regions ride the shared
            # timelines after the demand work but do not hold up this
            # op's completion
            self._prefetch_neighbors(dataset, space_id, space, origin,
                                     extents, end)
        useful = elem
        for extent in extents:
            useful *= extent
        data = None
        if out is not None:
            data = out if dtype is None else bytes_to_array(out, dtype)
        return SystemOpResult(start_time=start_time, end_time=end,
                              useful_bytes=useful, fetched_bytes=fetched,
                              requests=len(accesses), data=data)

    # ------------------------------------------------------------------
    def _execute_write(self, dataset: str, origin: Sequence[int],
                       extents: Sequence[int],
                       data: Optional[np.ndarray] = None,
                       start_time: float = 0.0) -> SystemOpResult:
        space_id = self._space_id(dataset)
        space = self.stl.get_space(space_id)
        accesses = self.stl.plan_region(space_id, origin, extents)
        setup_done = self.cpu.run_issue_work(
            start_time,
            self.costs.request_base + self.costs.per_block * len(accesses),
            label="stl_translate")
        raw = None
        if data is not None and self.store_data:
            array = np.ascontiguousarray(np.asarray(data))
            if tuple(array.shape) != tuple(extents):
                raise ValueError(
                    f"data shape {array.shape} != extents {tuple(extents)}")
            raw = array.view(np.uint8).reshape(
                tuple(extents) + (array.dtype.itemsize,))
        elem = space.element_size
        window = QueueDepthWindow(self.queue_depth)
        completions: List[float] = []
        sent = 0
        tier = None if self._bulk_ingest else self.tier
        write_back = tier is not None and tier.config.write_back
        for access in accesses:
            earliest = window.earliest(setup_done)
            region = None
            if raw is not None:
                slicer = tuple(slice(lo, hi) for lo, hi in access.out_slice)
                region = raw[slicer]
            if write_back:
                done = self._absorb_write(dataset, space_id, access, region,
                                          earliest)
                window.complete(done)
                completions.append(done)
                continue
            done, pages = self._write_access(space_id, access, region,
                                             earliest)
            sent += pages * self.page_size
            if tier is not None:
                self._note_write_through(dataset, space_id, access)
            window.complete(done)
            completions.append(done)
        end = max(completions, default=setup_done)
        useful = elem
        for extent in extents:
            useful *= extent
        return SystemOpResult(start_time=start_time, end_time=end,
                              useful_bytes=useful, fetched_bytes=sent,
                              requests=len(accesses))

    def _write_access(self, space_id: int, access, region,
                      earliest: float) -> tuple:
        """One building-block device write: gather copy → LightNVM
        command → link transfer → STL write. Shared by the direct write
        path and write-back flushes, so a deferred flush costs exactly
        what the write would have."""
        space = self.stl.get_space(space_id)
        elem = space.element_size
        # Host breaks the source object into the block's layout:
        # one memcpy per block-row segment (the paper's 256 × 2 KB).
        region_bytes = access.element_count() * elem
        row_bytes = access.extent()[-1] * elem
        gathered = self.cpu.copy(region_bytes, earliest, row_bytes)
        pages = self._pages_of(space_id, access)
        issued = self.cpu.run_issue_work(
            gathered,
            self.costs.per_command + self.costs.per_node * space.rank
            + self.costs.per_unit_write * pages,
            label="stl_translate")
        transfer = self.link.transfer(pages * self.page_size, issued)
        block = self.stl.write_block(space_id, access, transfer.end_time,
                                     region=region)
        return block.completion_time, pages

    # ------------------------------------------------------------------
    # DRAM tier glue (only reached with cache=CacheConfig(...) set)
    # ------------------------------------------------------------------
    def _flush_cache_entry(self, entry, now: float) -> float:
        """Write one buffered dirty region back through the device."""
        _dataset, space_id, access = entry.payload
        done, _pages = self._write_access(space_id, access, entry.data, now)
        return done

    def _flush_overlapping(self, dataset: str, access,
                           now: float) -> float:
        """Flush buffered dirty regions overlapping ``access``."""
        tier = self.tier
        for key in tier.group_keys(region_group(dataset, access)):
            entry = tier.get(key)
            if entry is None or not entry.dirty:
                continue
            if slices_overlap(entry.payload[2].block_slice,
                              access.block_slice):
                now = tier.flush_entry(key, now)
        return now

    def _absorb_write(self, dataset: str, space_id: int, access, region,
                      earliest: float) -> float:
        """Write-back: absorb one region into DRAM (gather copy only);
        the device write happens at eviction, dirty-bound or fence."""
        tier = self.tier
        space = self.stl.get_space(space_id)
        elem = space.element_size
        region_bytes = access.element_count() * elem
        row_bytes = access.extent()[-1] * elem
        done = self.cpu.copy(region_bytes, earliest, row_bytes,
                             label="cache_copy")
        key = region_key(dataset, access)
        # overlapping buffered regions: older dirty data must hit flash
        # first (write order), overlapping clean copies are now stale
        for other in tier.group_keys(region_group(dataset, access)):
            if other == key:
                continue
            entry = tier.get(other)
            if entry is None:
                continue
            if slices_overlap(entry.payload[2].block_slice,
                              access.block_slice):
                if entry.dirty:
                    done = tier.flush_entry(other, done)
                tier.invalidate(other)
        data = None
        if region is not None:
            data = np.ascontiguousarray(region).copy()
        return tier.insert(key, region_bytes, done,
                           payload=(dataset, space_id, access), data=data,
                           dirty=True, group=region_group(dataset, access))

    def _note_write_through(self, dataset: str, space_id: int,
                            access) -> None:
        """Write-through coherence: refresh the exact cached region,
        drop overlapping neighbors (their bytes are now stale)."""
        tier = self.tier
        key = region_key(dataset, access)
        for other in tier.group_keys(region_group(dataset, access)):
            if other == key:
                continue
            entry = tier.get(other)
            if entry is not None and slices_overlap(
                    entry.payload[2].block_slice, access.block_slice):
                tier.invalidate(other)
        entry = tier.get(key)
        if entry is not None and self.store_data:
            entry.data = self.stl.block_region_data(space_id, access)

    def _prefetch_neighbors(self, dataset: str, space_id: int, space,
                            origin: Sequence[int], extents: Sequence[int],
                            start: float) -> None:
        """Fetch forward neighbor regions along the accessed axes into
        the tier (charged on the shared timelines, asynchronously)."""
        tier = self.tier
        elem = space.element_size
        for p_origin, p_extents in neighbor_regions(
                space.dims, origin, extents, tier.config.prefetch):
            for access in self.stl.plan_region(space_id, p_origin,
                                               p_extents):
                key = region_key(dataset, access)
                if tier.contains(key):
                    continue
                issued = self.cpu.run_issue_work(
                    start,
                    self.costs.per_command + self.costs.per_node * space.rank,
                    label="stl_translate")
                try:
                    block = self.stl.read_block(space_id, access, issued)
                except (NdsError, FaultError):
                    continue  # speculative read; demand path will retry
                region_bytes = access.element_count() * elem
                transfer = self.link.transfer(
                    block.pages * self.page_size, block.completion_time)
                done = self.cpu.copy(region_bytes, transfer.end_time,
                                     access.extent()[-1] * elem,
                                     label="cache_copy")
                data = (self.stl.block_region_data(space_id, access)
                        if self.store_data else None)
                tier.insert(key, region_bytes, done,
                            payload=(dataset, space_id, access), data=data,
                            prefetched=True,
                            group=region_group(dataset, access))

    # ------------------------------------------------------------------
    def reset_time(self) -> None:
        if self.cluster is not None:
            self.cluster.reset_time()
            self._reset_runtime()
            return
        self.flash.reset_time()
        self.link.reset_time()
        self.cpu.reset_time()
        self._reset_runtime()

    # ------------------------------------------------------------------
    def _cluster_align(self, dims: Sequence[int], element_size: int,
                       params: dict) -> int:
        """Extent boundaries land on building-block rows so declustered
        sub-spaces keep the same block shape the whole space would get."""
        from repro.core.space import Space
        dims = tuple(int(d) for d in dims)
        space = Space.create(
            -1, dims, int(element_size), self.stl.geometry,
            bb_override=self.bb_override,
            use_3d_blocks=len(dims) >= 3 and self.bb_override is None)
        return int(space.bb[0])

    # ------------------------------------------------------------------
    def _space_id(self, dataset: str) -> int:
        space_id = self._spaces.get(dataset)
        if space_id is None:
            raise KeyError(f"unknown dataset {dataset!r}")
        return space_id

    def _pages_of(self, space_id: int, access) -> int:
        space = self.stl.get_space(space_id)
        return len(pages_for_region(space, access.block_slice))
