"""The baseline SSD: linear LBA space over the page-mapped FTL.

This is the device of paper Figure 7(a): the host sees logical page
numbers only; the FTL stripes them over channels; all dimensionality
handling is the host's problem. The device object charges flash-array
time; link and host costs are layered on by :mod:`repro.systems`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.faults.errors import ProgramFailError
from repro.ftl.gc import GarbageCollector
from repro.ftl.mapping import PageMapFTL
from repro.nvm.flash import FlashArray
from repro.nvm.profiles import DeviceProfile
from repro.sim.stats import StatSet

__all__ = ["BaselineSSD", "DeviceOpResult"]


@dataclass
class DeviceOpResult:
    """Timing outcome of one device-level operation batch."""

    start_time: float
    end_time: float
    data: Optional[List[np.ndarray]] = None
    stats: StatSet = field(default_factory=StatSet)

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time


class BaselineSSD:
    """A conventional NVMe SSD model: LBA in, striped flash pages out.

    Parameters
    ----------
    profile:
        Device profile (geometry, timing, over-provisioning).
    store_data:
        Functional mode keeps page bytes; timing-only mode does not.
    """

    def __init__(self, profile: DeviceProfile, store_data: bool = True,
                 gc_policy: str = "greedy") -> None:
        self.profile = profile
        self.geometry = profile.geometry
        self.flash = FlashArray(profile.geometry, profile.timing,
                                store_data=store_data)
        self.ftl = PageMapFTL(profile.geometry)
        self.gc = GarbageCollector(self.ftl, self.flash,
                                   threshold=profile.overprovisioning,
                                   policy=gc_policy)
        self.page_size = profile.geometry.page_size
        #: logical capacity excludes the over-provisioned share
        self.logical_pages = int(
            profile.geometry.total_pages * (1.0 - profile.overprovisioning))

    # ------------------------------------------------------------------
    # page-granular interface
    # ------------------------------------------------------------------
    def write_lpns(self, lpns: Sequence[int], start_time: float = 0.0,
                   data: Optional[Sequence[np.ndarray]] = None) -> DeviceOpResult:
        """Program the given logical pages (in order) starting at
        ``start_time``; runs GC inline when a plane crosses the
        free-space threshold."""
        self._check_lpns(lpns)
        end = start_time
        stats = StatSet()
        if self.flash.faults is None:
            # Batched fan-out: no injector means no ProgramFailError, so
            # consecutive programs between GC events can go to the flash
            # array as one batch. Every page still issues at
            # ``start_time`` in LPN order, so the reserve chains — and
            # the timings — are bit-identical to the per-page calls.
            batch_ppas: List = []
            batch_data: Optional[List] = [] if data is not None else None
            for position, lpn in enumerate(lpns):
                channel, bank = self.ftl.stripe_target(lpn)
                if self.gc.needs_collection(channel, bank):
                    if batch_ppas:
                        op = self.flash.program_pages(batch_ppas, start_time,
                                                      data=batch_data)
                        for done in op.completions:
                            if done > end:
                                end = done
                        batch_ppas = []
                        batch_data = [] if data is not None else None
                    gc_result = self.gc.collect(channel, bank, end)
                    end = max(end, gc_result.end_time)
                    stats.merge(gc_result.stats)
                ppa, old = self.ftl.allocate(lpn)
                self.gc.note_alloc(lpn, ppa, old)
                batch_ppas.append(ppa)
                if batch_data is not None:
                    batch_data.append(data[position])
            if batch_ppas:
                op = self.flash.program_pages(batch_ppas, start_time,
                                              data=batch_data)
                for done in op.completions:
                    if done > end:
                        end = done
            stats.count("device_pages_written", len(lpns))
            return DeviceOpResult(start_time=start_time, end_time=end,
                                  stats=stats)
        for position, lpn in enumerate(lpns):
            channel, bank = self.ftl.stripe_target(lpn)
            if self.gc.needs_collection(channel, bank):
                gc_result = self.gc.collect(channel, bank, end)
                end = max(end, gc_result.end_time)
                stats.merge(gc_result.stats)
            ppa, old = self.ftl.allocate(lpn)
            self.gc.note_alloc(lpn, ppa, old)
            payload = None
            if data is not None:
                payload = [data[position]]
            issue = start_time
            while True:
                try:
                    op = self.flash.program_pages([ppa], issue, data=payload)
                    break
                except ProgramFailError as err:
                    # grown bad block: undo the failed binding, retire
                    # the block (relocating its other live pages), and
                    # re-drive the program at a fresh append point
                    plane = self.ftl.planes[(ppa.channel, ppa.bank)]
                    plane.invalidate(ppa)
                    self.gc.note_trim(ppa)
                    self.ftl.map.pop(lpn, None)
                    issue = self.gc.retire_block(ppa.channel, ppa.bank,
                                                 ppa.block, err.fail_time)
                    ppa, old = self.ftl.allocate(lpn)
                    self.gc.note_alloc(lpn, ppa, old)
            end = max(end, op.end_time)
        stats.count("device_pages_written", len(lpns))
        return DeviceOpResult(start_time=start_time, end_time=end, stats=stats)

    def read_lpns(self, lpns: Sequence[int], start_time: float = 0.0,
                  with_data: bool = False) -> DeviceOpResult:
        """Read the given logical pages (in order) starting at
        ``start_time``. Unwritten pages read back as zeros (as a real
        drive returns for deallocated LBAs)."""
        self._check_lpns(lpns)
        # one batched pass over the FTL map instead of a lookup() call
        # (and a second full pass for data) per page
        lookup = self.ftl.map.get
        resolved = [lookup(lpn) for lpn in lpns]
        ppas = [ppa for ppa in resolved if ppa is not None]
        op = self.flash.read_pages(ppas, start_time)
        stats = StatSet()
        stats.count("device_pages_read", len(ppas))
        stats.count("device_pages_unmapped", len(resolved) - len(ppas))
        data = None
        if with_data:
            data = [np.zeros(self.page_size, dtype=np.uint8) if ppa is None
                    else self.flash.page_data(ppa) for ppa in resolved]
        return DeviceOpResult(start_time=start_time, end_time=op.end_time,
                              data=data, stats=stats)

    def trim_lpns(self, lpns: Sequence[int]) -> None:
        """Discard logical pages (deallocate)."""
        for lpn in lpns:
            old = self.ftl.trim(lpn)
            self.gc.note_trim(old)

    # ------------------------------------------------------------------
    # byte-granular convenience (page-aligned under the hood)
    # ------------------------------------------------------------------
    def write_bytes(self, offset: int, payload: np.ndarray,
                    start_time: float = 0.0) -> DeviceOpResult:
        """Write a page-aligned byte extent."""
        if offset % self.page_size != 0:
            raise ValueError("offset must be page aligned")
        raw = np.asarray(payload, dtype=np.uint8).ravel()
        first = offset // self.page_size
        count = -(-raw.size // self.page_size)
        chunks = [raw[i * self.page_size:(i + 1) * self.page_size]
                  for i in range(count)]
        return self.write_lpns(list(range(first, first + count)),
                               start_time, data=chunks)

    def read_bytes(self, offset: int, size: int,
                   start_time: float = 0.0) -> DeviceOpResult:
        """Read a byte extent; returned data is trimmed to ``size``."""
        first = offset // self.page_size
        last = (offset + size - 1) // self.page_size
        result = self.read_lpns(list(range(first, last + 1)), start_time,
                                with_data=True)
        blob = np.concatenate(result.data) if result.data else np.zeros(0, np.uint8)
        inner = offset - first * self.page_size
        result.data = [blob[inner:inner + size]]
        return result

    # ------------------------------------------------------------------
    def _check_lpns(self, lpns: Sequence[int]) -> None:
        if not lpns:
            return
        # min/max bound the whole batch in two C-level passes
        lo = min(lpns)
        if lo < 0:
            raise ValueError(
                f"LPN {lo} outside logical capacity {self.logical_pages}")
        hi = max(lpns)
        if hi >= self.logical_pages:
            raise ValueError(
                f"LPN {hi} outside logical capacity {self.logical_pages}")

    def reset_time(self) -> None:
        """Zero all device timelines (content untouched) — used between
        measurement phases."""
        self.flash.reset_time()
