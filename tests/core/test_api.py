"""Tests for the NDS API (§5.1)."""

import numpy as np
import pytest

from repro.core import (NdsApi, SpaceClosedError, TileGridView,
                        ViewVolumeError)
from repro.core.api import array_to_bytes, bytes_to_array


@pytest.fixture
def api(tiny_stl):
    return NdsApi(tiny_stl)


class TestByteConversion:
    def test_roundtrip(self, rng):
        for dtype in (np.int32, np.float32, np.float64, np.int16):
            array = rng.integers(0, 100, (5, 7)).astype(dtype)
            raw = array_to_bytes(array)
            assert raw.shape == (5, 7, array.dtype.itemsize)
            assert np.array_equal(bytes_to_array(raw, dtype), array)

    def test_itemsize_mismatch(self, rng):
        raw = array_to_bytes(rng.integers(0, 9, (3, 3)).astype(np.int32))
        with pytest.raises(ValueError):
            bytes_to_array(raw, np.int64)


class TestLifecycle:
    def test_create_open_write_read_close(self, api, rng):
        sid = api.create_space((32, 32), 4)
        handle = api.open_space(sid)
        data = rng.integers(0, 2**31, (32, 32)).astype(np.int32)
        api.write(handle, (0, 0), (32, 32), data)
        tile, timing = api.read(handle, (1, 1), (16, 16), dtype=np.int32)
        assert np.array_equal(tile, data[16:32, 16:32])
        assert timing.end_time > 0
        api.close_space(handle)

    def test_closed_handle_rejected(self, api):
        sid = api.create_space((16, 16), 4)
        handle = api.open_space(sid)
        api.close_space(handle)
        with pytest.raises(SpaceClosedError):
            api.read(handle, (0, 0), (16, 16))
        with pytest.raises(SpaceClosedError):
            api.close_space(handle)

    def test_open_views_counted(self, api):
        sid = api.create_space((16, 16), 4)
        h1 = api.open_space(sid)
        h2 = api.open_space(sid)
        assert api.space(sid).open_views == 2
        api.close_space(h1)
        assert api.space(sid).open_views == 1
        assert h2.handle_id != h1.handle_id

    def test_delete_space_closes_handles(self, api):
        sid = api.create_space((16, 16), 4)
        handle = api.open_space(sid)
        api.delete_space(sid)
        with pytest.raises(SpaceClosedError):
            api.read(handle, (0, 0), (16, 16))


class TestViews:
    def test_reshape_view_roundtrip(self, api, rng):
        sid = api.create_space((64, 48), 4)
        producer = api.open_space(sid)
        data = rng.integers(0, 2**31, (64, 48)).astype(np.int32)
        api.write(producer, (0, 0), (64, 48), data)
        consumer = api.open_space(sid, view=(48, 64))
        tile, _ = api.read(consumer, (1, 1), (16, 16), dtype=np.int32)
        assert np.array_equal(tile, data.reshape(48, 64)[16:32, 16:32])

    def test_volume_mismatch_rejected(self, api):
        sid = api.create_space((16, 16), 4)
        with pytest.raises(ViewVolumeError):
            api.open_space(sid, view=(16, 17))

    def test_tile_grid_view(self, api, rng):
        sid = api.create_space((8, 8, 4), 4)
        producer = api.open_space(sid)
        tensor = rng.integers(0, 99, (8, 8, 4)).astype(np.int32)
        api.write(producer, (0, 0, 0), (8, 8, 4), tensor)
        grid = api.open_space(sid, view=TileGridView((8, 8, 4), (2, 2)))
        big, _ = api.read(grid, (0, 0), (16, 16), dtype=np.int32)
        expected = np.block([[tensor[:, :, 0], tensor[:, :, 1]],
                             [tensor[:, :, 2], tensor[:, :, 3]]])
        assert np.array_equal(big, expected)

    def test_write_through_view(self, api, rng):
        """Producer writes under one dimensionality, consumer reads the
        same bytes under another (§3)."""
        sid = api.create_space((32, 8), 4)
        flat = api.open_space(sid, view=(256,))
        data = rng.integers(0, 2**31, 256).astype(np.int32)
        api.write(flat, (0,), (256,), data)
        producer = api.open_space(sid)
        grid_data, _ = api.read(producer, (0, 0), (32, 8), dtype=np.int32)
        assert np.array_equal(grid_data, data.reshape(32, 8))


class TestErrors:
    def test_partition_out_of_bounds(self, api):
        sid = api.create_space((16, 16), 4)
        handle = api.open_space(sid)
        from repro.core import InvalidCoordinateError
        with pytest.raises(InvalidCoordinateError):
            api.read(handle, (2, 0), (12, 12))

    def test_wrong_array_shape(self, api):
        sid = api.create_space((16, 16), 4)
        handle = api.open_space(sid)
        with pytest.raises(ValueError):
            api.write(handle, (0, 0), (8, 8),
                      np.zeros((4, 4), dtype=np.int32))
