#!/usr/bin/env python3
"""Device explorer: watch building blocks land on channels and banks.

A diagnostic walk through the layers below the NDS API — how the STL
splits a space into building blocks (Eq. 1–4), where the §4.2 placement
rules put each physical page, and what that does to channel utilization
compared with the baseline FTL's striping.

Run:  python examples/device_explorer.py
"""

from collections import Counter

import numpy as np

from repro.core import SpaceTranslationLayer
from repro.core.api import array_to_bytes
from repro.ftl import BaselineSSD, wear_report
from repro.nvm import PAPER_PROTOTYPE, FlashArray


def explore_nds() -> None:
    profile = PAPER_PROTOTYPE
    flash = FlashArray(profile.geometry, profile.timing, store_data=False)
    stl = SpaceTranslationLayer(flash)

    space = stl.create_space((1024, 1024), element_size=4)
    print(f"space dims {space.dims} -> building block {space.bb} "
          f"({space.pages_per_block} pages), grid {space.grid}")

    stl.write(space.space_id, (0, 0), (1024, 1024))

    # Where did the first block's pages go?
    entry = stl.indexes[space.space_id].lookup((0, 0)).entry
    channels = Counter(p.channel for p in entry.allocated_pages())
    banks = Counter(p.bank for p in entry.allocated_pages())
    print(f"block (0,0): {len(entry.allocated_pages())} pages over "
          f"{len(channels)} channels (x{channels.most_common(1)[0][1]} each)"
          f" and {len(banks)} bank(s) — every channel reachable in "
          f"parallel (Eq. 1)")

    # Fetch a column-crossing tile and measure channel engagement.
    flash.reset_time()
    result = stl.read_region(space.space_id, (0, 0), (1024, 64),
                             with_data=False)
    active = sum(1 for line in flash.channel_lines if line.busy_time > 0)
    print(f"column fetch engaged {active}/{profile.geometry.channels} "
          f"channels in {result.elapsed * 1e6:.0f} us")


def explore_baseline() -> None:
    ssd = BaselineSSD(PAPER_PROTOTYPE, store_data=False)
    # a 1024x4096 matrix of doubles: each row is 32 KiB = 8 pages, so
    # the channel of a row's first page is (8*r) % 32 — only 4 of 32
    # channels ever serve a first-column fetch (the paper's Figure 1
    # situation)
    rows, row_bytes = 1024, 4096 * 8
    pages = rows * row_bytes // ssd.page_size
    ssd.write_lpns(list(range(pages)))
    ssd.reset_time()

    # fetch the first page of every row (a column-block fetch)
    lpns = sorted({(r * row_bytes) // ssd.page_size for r in range(rows)})
    ssd.read_lpns(lpns, 0.0)
    active = sum(1 for line in ssd.flash.channel_lines
                 if line.busy_time > 0)
    busy = [line.busy_time for line in ssd.flash.channel_lines]
    imbalance = max(busy) / (sum(busy) / len(busy)) if sum(busy) else 0.0
    print(f"baseline column fetch engaged {active}/32 channels "
          f"(imbalance {imbalance:.1f}x) — the [P3] effect")
    print(f"wear after ingest: {wear_report(ssd.ftl).total_erases} erases")


def explore_gc() -> None:
    """Hammer one region until the STL's garbage collector runs."""
    from repro.nvm import TINY_TEST
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                       store_data=True)
    stl = SpaceTranslationLayer(flash, gc_threshold=0.30)
    space = stl.create_space((16, 16), element_size=4)
    data = np.arange(256, dtype=np.int32).reshape(16, 16)
    for round_id in range(48):
        stl.write(space.space_id, (0, 0), (16, 16),
                  data=array_to_bytes(data + round_id),
                  start_time=float(round_id))
    print(f"after 48 overwrites on a tiny device: "
          f"{stl.gc.total_relocated} units relocated, "
          f"{stl.gc.total_erased} blocks erased, data still correct: "
          f"{bool((stl.read(space.space_id, (0, 0), (16, 16)).data is not None))}")


def main() -> None:
    print("== NDS placement ==")
    explore_nds()
    print("\n== baseline striping ==")
    explore_baseline()
    print("\n== garbage collection under churn ==")
    explore_gc()
    print("done.")


if __name__ == "__main__":
    main()
