"""Pluggable eviction policies of the host DRAM tier.

A policy tracks key recency/frequency only — entry payloads and byte
accounting live in :class:`~repro.cache.tier.HostTierCache`. The
interface is deliberately tiny:

* ``admit(key)``    – may this key enter the cache at all?
* ``on_insert(key)`` / ``on_hit(key)`` / ``remove(key)`` – bookkeeping;
* ``victim()``      – which resident key should be evicted next.

All three policies are deterministic: identical access sequences
produce identical eviction orders, which is what makes cache-enabled
reports byte-identical across runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.cache.config import CacheConfig

__all__ = ["LruPolicy", "ClockPolicy", "AdmissionLruPolicy", "make_policy"]


class LruPolicy:
    """Exact least-recently-used: hits refresh recency, the coldest
    resident key is the victim."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._order

    def admit(self, key: Hashable) -> bool:
        return True

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_hit(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def clear(self) -> None:
        self._order.clear()


class ClockPolicy(LruPolicy):
    """Second-chance CLOCK: a hit sets the entry's reference bit; the
    hand sweeps residents in insertion order, clearing set bits, and
    evicts the first entry found with its bit clear."""

    name = "clock"

    def __init__(self) -> None:
        super().__init__()
        self._referenced: "OrderedDict[Hashable, bool]" = self._order

    def on_insert(self, key: Hashable) -> None:
        # new entries start unreferenced, at the back of the sweep
        self._order[key] = False
        self._order.move_to_end(key)

    def on_hit(self, key: Hashable) -> None:
        self._order[key] = True

    def victim(self) -> Hashable:
        while True:
            key = next(iter(self._order))
            if self._order[key]:
                self._order[key] = False
                self._order.move_to_end(key)
                continue
            return key


class AdmissionLruPolicy(LruPolicy):
    """LRU with a TinyLFU-style doorkeeper: the first miss on a key only
    records it in a bounded recently-seen window; the key is admitted on
    its second miss while still in the window. One-touch scans therefore
    never displace the resident working set."""

    name = "admission"

    def __init__(self, window: int = 1024) -> None:
        super().__init__()
        self.window = int(window)
        self._seen: "OrderedDict[Hashable, None]" = OrderedDict()

    def admit(self, key: Hashable) -> bool:
        if key in self._seen:
            del self._seen[key]
            return True
        self._seen[key] = None
        while len(self._seen) > self.window:
            self._seen.popitem(last=False)
        return False

    def clear(self) -> None:
        super().clear()
        self._seen.clear()


def make_policy(config: CacheConfig):
    """Build the eviction policy named by ``config.policy``."""
    if config.policy == "lru":
        return LruPolicy()
    if config.policy == "clock":
        return ClockPolicy()
    if config.policy == "admission":
        return AdmissionLruPolicy(window=config.admission_window)
    raise ValueError(f"unknown cache policy {config.policy!r}")
