"""Figure 10 — end-to-end application latency and compute-kernel idle
time for all ten Table 1 workloads (§7.2).

Paper anchors: software NDS 5.07× average speedup, hardware NDS 5.73×,
hardware/software ≈ 1.13×, the software oracle "just about the same as
the software NDS", BFS gains ~nothing from software NDS, and idle time
before compute kernels drops 74 % (software) / 76 % (hardware).
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import once
from repro.analysis import PAPER, comparison_row, format_table
from repro.nvm import PAPER_PROTOTYPE
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)
from repro.workloads import all_workloads, run_workload, speedup

SYSTEM_ORDER = ("baseline", "software-nds", "software-oracle",
                "hardware-nds")


def _sweep():
    results = {}
    for workload in all_workloads():
        per_system = {}
        for factory in (BaselineSystem, SoftwareNdsSystem, OracleSystem,
                        HardwareNdsSystem):
            system = factory(PAPER_PROTOTYPE)
            per_system[system.name] = run_workload(workload, system)
        results[workload.name] = per_system
    return results


_SWEEP_CACHE = {}


@pytest.fixture(scope="module")
def sweep():
    if "results" not in _SWEEP_CACHE:
        _SWEEP_CACHE["results"] = _sweep()
    return _SWEEP_CACHE["results"]


class TestFig10aSpeedup:
    def test_fig10a_speedup(self, benchmark):
        results = once(benchmark, lambda: _SWEEP_CACHE.setdefault(
            "results", _sweep()))
        rows = []
        speedups = {"software-nds": [], "software-oracle": [],
                    "hardware-nds": []}
        for name, per_system in results.items():
            base = per_system["baseline"]
            row = [name]
            for key in ("software-nds", "software-oracle", "hardware-nds"):
                value = speedup(base, per_system[key])
                speedups[key].append(value)
                row.append(f"{value:.2f}x")
            rows.append(row)
        means = {key: statistics.mean(values)
                 for key, values in speedups.items()}
        print()
        print(format_table(
            ["workload", "software NDS", "software (oracle)",
             "hardware NDS"], rows,
            title="Fig 10(a) end-to-end speedup over the baseline"))
        print(format_table(
            ["anchor", "paper", "measured", "delta"],
            [comparison_row("software mean", PAPER.software_nds_speedup,
                            means["software-nds"]),
             comparison_row("hardware mean", PAPER.hardware_nds_speedup,
                            means["hardware-nds"]),
             comparison_row("hardware/software",
                            PAPER.hardware_over_software,
                            means["hardware-nds"] / means["software-nds"])]))

        # Shape anchors.
        assert 3.0 < means["software-nds"] < 7.0       # paper: 5.07
        assert 3.5 < means["hardware-nds"] < 8.0       # paper: 5.73
        assert means["hardware-nds"] > means["software-nds"]
        ratio = means["hardware-nds"] / means["software-nds"]
        assert 1.0 < ratio < 1.6                       # paper: 1.13
        # oracle ~ software NDS (§7.2)
        assert means["software-oracle"] == pytest.approx(
            means["software-nds"], rel=0.35)
        # BFS gains ~nothing from software NDS (§7.2)
        bfs = results["BFS"]
        assert speedup(bfs["baseline"], bfs["software-nds"]) < 1.2
        # ... but mismatched workloads gain a lot
        gemm = results["GEMM"]
        assert speedup(gemm["baseline"], gemm["hardware-nds"]) > 4.0


class TestFig10bIdleTime:
    def test_fig10b_idle(self, sweep, benchmark):
        results = once(benchmark, lambda: sweep)
        rows = []
        reductions = {"software-nds": [], "hardware-nds": []}
        for name, per_system in results.items():
            base_idle = per_system["baseline"].kernel_idle
            row = [name, f"{base_idle * 1e3:.2f} ms"]
            for key in ("software-nds", "hardware-nds"):
                idle = per_system[key].kernel_idle
                reduction = 1.0 - idle / base_idle if base_idle > 0 else 0.0
                reductions[key].append(reduction)
                row.append(f"{reduction:+.0%}")
            rows.append(row)
        means = {key: statistics.mean(values)
                 for key, values in reductions.items()}
        print()
        print(format_table(
            ["workload", "baseline idle", "software reduction",
             "hardware reduction"], rows,
            title="Fig 10(b) idle time before pipelined compute kernels"))
        print(format_table(
            ["anchor", "paper", "measured", "delta"],
            [comparison_row("software idle reduction",
                            PAPER.software_idle_reduction,
                            means["software-nds"]),
             comparison_row("hardware idle reduction",
                            PAPER.hardware_idle_reduction,
                            means["hardware-nds"])]))

        # Shape: NDS removes most of the kernel idle time on the
        # mismatched workloads; the per-suite means land near the
        # paper's 74 % / 76 % (our BFS/KNN ≈ 0 drag them down a little).
        assert means["hardware-nds"] > 0.5
        assert means["hardware-nds"] >= means["software-nds"]
        mismatched = ["SSSP", "GEMM", "Hotspot", "KMeans", "PageRank",
                      "Conv2D", "TTV", "TC"]
        for name in mismatched:
            per_system = results[name]
            base_idle = per_system["baseline"].kernel_idle
            hw_red = 1.0 - per_system["hardware-nds"].kernel_idle / base_idle
            assert hw_red > 0.6, name
