"""Tests for background garbage collection (§6.1)."""

import numpy as np
from repro.core import SpaceTranslationLayer
from repro.core.api import array_to_bytes, bytes_to_array
from repro.nvm import FlashArray, Geometry, NvmTiming


def _make_stl():
    geometry = Geometry(channels=2, banks_per_channel=2, blocks_per_bank=6,
                        pages_per_block=4, page_size=64)
    timing = NvmTiming(t_read=1e-6, t_program=5e-6, t_erase=20e-6,
                       channel_bandwidth=100e6)
    flash = FlashArray(geometry, timing, store_data=True)
    return SpaceTranslationLayer(flash, gc_threshold=0.25)


def _churn(stl, space_id, rounds, start=0.0):
    data = np.arange(64, dtype=np.int16).reshape(8, 8)
    now = start
    for round_id in range(rounds):
        result = stl.write(space_id, (0, 0), (8, 8),
                           data=array_to_bytes(data + round_id),
                           start_time=now)
        now = result.end_time
    return now


class TestBackgroundCollection:
    def test_background_gc_reclaims_space(self):
        stl = _make_stl()
        space = stl.create_space((8, 8), 2)
        now = _churn(stl, space.space_id, 14)
        fractions_before = [stl.allocator.free_fraction(c, b)
                            for (c, b) in stl.allocator.planes]
        result = stl.gc.collect_background(now, budget_seconds=1.0)
        fractions_after = [stl.allocator.free_fraction(c, b)
                           for (c, b) in stl.allocator.planes]
        assert result.ran
        assert min(fractions_after) >= min(fractions_before)
        # data survives background collection
        read = stl.read(space.space_id, (0, 0), (8, 8))
        assert bytes_to_array(read.data, np.int16)[0, 0] == 13

    def test_budget_bounds_the_work(self):
        stl = _make_stl()
        space = stl.create_space((8, 8), 2)
        now = _churn(stl, space.space_id, 14)
        tight = stl.gc.collect_background(now, budget_seconds=1e-9)
        assert tight.end_time <= now + 1e-9 or tight.blocks_erased <= 1

    def test_clean_device_is_a_noop(self):
        stl = _make_stl()
        stl.create_space((8, 8), 2)
        result = stl.gc.collect_background(0.0, budget_seconds=1.0)
        assert not result.ran
        assert result.blocks_erased == 0

    def test_background_gc_reduces_foreground_stalls(self):
        """The §6.1 rationale: cleaning during idle time removes inline
        GC from the write path."""
        def foreground_gc_time(background: bool) -> float:
            stl = _make_stl()
            space = stl.create_space((8, 8), 2)
            now = _churn(stl, space.space_id, 12)
            if background:
                now = max(now, stl.gc.collect_background(
                    now, budget_seconds=10.0).end_time)
            data = np.zeros((8, 8), dtype=np.int16)
            total_gc = 0.0
            for round_id in range(6):
                result = stl.write(space.space_id, (0, 0), (8, 8),
                                   data=array_to_bytes(data),
                                   start_time=now + round_id)
                total_gc += sum(block.gc_time for block in result.blocks)
            return total_gc

        assert foreground_gc_time(True) <= foreground_gc_time(False)
