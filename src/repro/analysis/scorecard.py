"""The reproduction scorecard: every paper anchor, one verdict each.

Runs the calibrated experiments and grades each anchor against the
paper's number with a tolerance band. This is the one-stop artifact-
evaluation view (`python -m repro scorecard` / the scorecard
benchmark).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List

from repro.analysis.calibration import PAPER
from repro.analysis.experiments import (endtoend_sweep,
                                        micro_read_bandwidths,
                                        micro_write_bandwidths,
                                        overhead_latencies)

__all__ = ["AnchorResult", "run_scorecard"]


@dataclass(frozen=True)
class AnchorResult:
    """One graded anchor."""

    name: str
    paper: float
    measured: float
    tolerance: float            # relative band considered a pass
    section: str

    @property
    def delta(self) -> float:
        if self.paper == 0:
            return 0.0
        return (self.measured - self.paper) / self.paper

    @property
    def passed(self) -> bool:
        return abs(self.delta) <= self.tolerance


def run_scorecard(micro_n: int = 4096) -> List[AnchorResult]:
    """Measure every quantitative anchor the paper states."""
    results: List[AnchorResult] = []

    reads = micro_read_bandwidths(n=micro_n)
    writes = micro_write_bandwidths(n=micro_n)
    results.append(AnchorResult(
        "baseline row fetch (GB/s)", PAPER.baseline_row_read_gbs,
        reads["row-fetch"]["baseline"] / 1e9, 0.20, "Fig 9(a)"))
    results.append(AnchorResult(
        "software NDS row fetch (GB/s)", PAPER.software_row_read_gbs,
        reads["row-fetch"]["software"] / 1e9, 0.15, "Fig 9(a)"))
    results.append(AnchorResult(
        "hardware ~ baseline row fetch (ratio)", 1.0,
        reads["row-fetch"]["hardware"] / reads["row-fetch"]["baseline"],
        0.15, "Fig 9(a)"))
    results.append(AnchorResult(
        "baseline write (MB/s)", PAPER.baseline_write_mbs,
        writes["baseline"] / 1e6, 0.20, "Fig 9(d)"))
    results.append(AnchorResult(
        "software write penalty", PAPER.software_write_penalty,
        1 - writes["software"] / writes["baseline"], 0.30, "Fig 9(d)"))
    results.append(AnchorResult(
        "hardware write penalty", PAPER.hardware_write_penalty,
        1 - writes["hardware"] / writes["baseline"], 0.30, "Fig 9(d)"))

    sweep = endtoend_sweep()
    software = statistics.mean(v["software-nds"][0] for v in sweep.values())
    hardware = statistics.mean(v["hardware-nds"][0] for v in sweep.values())
    results.append(AnchorResult(
        "software NDS mean speedup", PAPER.software_nds_speedup,
        software, 0.35, "Fig 10(a)"))
    results.append(AnchorResult(
        "hardware NDS mean speedup", PAPER.hardware_nds_speedup,
        hardware, 0.35, "Fig 10(a)"))
    results.append(AnchorResult(
        "hardware/software ratio", PAPER.hardware_over_software,
        hardware / software, 0.25, "Fig 10(a)"))
    results.append(AnchorResult(
        "BFS software speedup ~ 1", 1.0,
        sweep["BFS"]["software-nds"][0], 0.45, "§7.2"))

    idle_sw = [1 - v["software-nds"][1] / v["baseline"][1]
               for v in sweep.values() if v["baseline"][1] > 0]
    idle_hw = [1 - v["hardware-nds"][1] / v["baseline"][1]
               for v in sweep.values() if v["baseline"][1] > 0]
    results.append(AnchorResult(
        "software idle reduction", PAPER.software_idle_reduction,
        statistics.mean(idle_sw), 0.35, "Fig 10(b)"))
    results.append(AnchorResult(
        "hardware idle reduction", PAPER.hardware_idle_reduction,
        statistics.mean(idle_hw), 0.30, "Fig 10(b)"))

    overhead = overhead_latencies(n=micro_n)
    results.append(AnchorResult(
        "software STL adder (us)", PAPER.software_stl_latency_us,
        (overhead["software"] - overhead["baseline"]) * 1e6, 0.50,
        "§7.3"))
    results.append(AnchorResult(
        "hardware STL adder (us)", PAPER.hardware_stl_latency_us,
        (overhead["hardware"] - overhead["baseline"]) * 1e6, 0.60,
        "§7.3"))
    results.append(AnchorResult(
        "STL space overhead", PAPER.stl_space_overhead_fraction,
        overhead["space_overhead"], 1.5, "§7.3"))
    return results
