"""The stateful fault injector attached to one flash array.

The injector owns all mutable reliability state — per-block erase
counts, per-page program timestamps and epochs, applied plan events —
and answers the flash array's three questions deterministically:

* ``read_plan``    — how many retry rounds does this read take, and
  does it ultimately fail?
* ``program_check`` / ``erase_check`` — does this operation report
  status-fail (dead channel, plan-marked bad block, or a wear-dependent
  draw)?

Recovery paths (garbage collection, bad-block relocation, parity
reconstruction) run under :meth:`suppress`, which disables the
*probabilistic* draws while keeping *structural* facts (dead channels,
plan-marked bad blocks) in force — a model of the controller's
"relocations are verified and re-tried internally" behaviour that also
keeps recovery from recursing into itself.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.faults.model import ErrorModel, FaultConfig, ReadPlan, stable_unit
from repro.sim.stats import StatSet

__all__ = ["FaultInjector"]

#: (channel, bank, block)
BlockKey = Tuple[int, int, int]
#: (channel, bank, block, page)
PageKey = Tuple[int, int, int, int]

_READ_SALT = 0x52454144      # "READ"
_PROGRAM_SALT = 0x50524F47   # "PROG"
_ERASE_SALT = 0x45524153     # "ERAS"


class FaultInjector:
    """Deterministic reliability state machine for one flash array."""

    def __init__(self, config: Optional[FaultConfig] = None) -> None:
        self.config = config if config is not None else FaultConfig()
        self.model = ErrorModel(self.config)
        self.stats = StatSet()
        # plan bookkeeping
        self._events = (self.config.plan.sorted_events()
                        if self.config.plan is not None else ())
        self._next_event = 0
        self._clock = 0.0
        self.dead_channels: Set[int] = set()
        #: the whole device behind this injector is gone (plan
        #: ``kill_device``): every channel answers dead
        self.device_dead = False
        self.bad_blocks: Set[BlockKey] = set()
        self.corrupt_pages: Set[PageKey] = set()
        # wear / retention bookkeeping
        self._erases: Dict[BlockKey, int] = {}
        self._programmed_at: Dict[int, float] = {}
        self._epoch: Dict[int, int] = {}
        self._read_seq: Dict[int, int] = {}
        self._suppress_depth = 0

    # ------------------------------------------------------------------
    # plan application
    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Apply every plan event due at or before ``now``. Time is
        observed monotonically: once an event has been seen it stays
        applied even for later-issued ops with smaller timestamps."""
        if now > self._clock:
            self._clock = now
        while (self._next_event < len(self._events)
               and self._events[self._next_event].time <= self._clock):
            event = self._events[self._next_event]
            self._next_event += 1
            if event.kind == "kill_channel":
                self.dead_channels.add(event.channel)
                self.stats.count("plan_channels_killed")
            elif event.kind == "kill_device":
                self.device_dead = True
                self.stats.count("plan_devices_killed")
            elif event.kind == "bad_block":
                self.bad_blocks.add((event.channel, event.bank, event.block))
                self.stats.count("plan_blocks_marked_bad")
            else:  # corrupt_page
                self.corrupt_pages.add((event.channel, event.bank,
                                        event.block, event.page))
                self.stats.count("plan_pages_corrupted")

    def channel_dead(self, channel: int) -> bool:
        return self.device_dead or channel in self.dead_channels

    # ------------------------------------------------------------------
    # recovery suppression
    # ------------------------------------------------------------------
    @contextmanager
    def suppress(self) -> Iterator[None]:
        """Disable probabilistic draws (retries, wear-dependent fails)
        inside recovery paths; structural failures still apply."""
        self._suppress_depth += 1
        try:
            yield
        finally:
            self._suppress_depth -= 1

    @property
    def suppressed(self) -> bool:
        return self._suppress_depth > 0

    # ------------------------------------------------------------------
    # flash-side queries
    # ------------------------------------------------------------------
    def read_plan(self, idx: int, page_key: PageKey,
                  sense_time: float) -> ReadPlan:
        """Ladder outcome for one page read sensed at ``sense_time``."""
        if page_key in self.corrupt_pages and not self.suppressed:
            return self.model.full_ladder("corrupt")
        if self.suppressed:
            return ReadPlan.clean()
        epoch = self._epoch.get(idx, 0)
        ordinal = self._read_seq.get(idx, 0)
        self._read_seq[idx] = ordinal + 1
        erases = self._erases.get(page_key[:3], 0)
        retention = sense_time - self._programmed_at.get(idx, sense_time)
        draw = stable_unit(self.config.seed, _READ_SALT, idx, epoch, ordinal)
        return self.model.read_outcome(draw,
                                       self.model.rber(erases, retention))

    def program_check(self, idx: int, page_key: PageKey) -> Optional[str]:
        """None = program succeeds; otherwise the failure reason."""
        block_key = page_key[:3]
        if self.device_dead:
            return "device_dead"
        if block_key[0] in self.dead_channels:
            return "channel_dead"
        if block_key in self.bad_blocks:
            return "bad_block"
        if self.suppressed:
            return None
        epoch = self._epoch.get(idx, 0)
        draw = stable_unit(self.config.seed, _PROGRAM_SALT, idx, epoch)
        if self.model.program_fails(draw, self._erases.get(block_key, 0)):
            return "wear"
        return None

    def erase_check(self, block_key: BlockKey) -> Optional[str]:
        """None = erase succeeds; otherwise the failure reason."""
        if self.device_dead:
            return "device_dead"
        if block_key[0] in self.dead_channels:
            return "channel_dead"
        if block_key in self.bad_blocks:
            return "bad_block"
        if self.suppressed:
            return None
        erases = self._erases.get(block_key, 0)
        draw = stable_unit(self.config.seed, _ERASE_SALT,
                           block_key[0], block_key[1], block_key[2], erases)
        if self.model.erase_fails(draw, erases):
            return "wear"
        return None

    # ------------------------------------------------------------------
    # flash-side notifications
    # ------------------------------------------------------------------
    def note_program(self, idx: int, end_time: float) -> None:
        self._programmed_at[idx] = end_time
        self._epoch[idx] = self._epoch.get(idx, 0) + 1
        self._read_seq.pop(idx, None)

    def note_erase(self, block_key: BlockKey, base_idx: int,
                   page_count: int, end_time: float) -> None:
        self._erases[block_key] = self._erases.get(block_key, 0) + 1
        for offset in range(page_count):
            self._programmed_at.pop(base_idx + offset, None)
            self._read_seq.pop(base_idx + offset, None)
        # erasing clears scripted corruption for the block's pages
        self.corrupt_pages = {key for key in self.corrupt_pages
                              if key[:3] != block_key}

    def note_time_reset(self) -> None:
        """Timelines were zeroed between measurement phases: re-anchor
        retention so elapsed model time stays non-negative."""
        self._programmed_at = {idx: 0.0 for idx in self._programmed_at}

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def erase_count(self, block_key: BlockKey) -> int:
        return self._erases.get(block_key, 0)

    def counters(self) -> Dict[str, int]:
        """Snapshot of all fault counters (for per-stream deltas)."""
        return dict(self.stats.counters)
