"""Typed failures of the flash reliability model.

These exceptions form the fault branch of the NDS error hierarchy (they
are re-exported from :mod:`repro.core.errors`). They live here — in a
leaf package with no ``repro.core`` dependency — because the flash
array raises them from underneath the core layers.

Every fault carries ``fail_time``: the model time at which the failure
became known to the issuing layer (after the full retry ladder for
reads, after the charged program/erase attempt for writes). Handlers
continue their timelines from that point, so error handling *costs
time* exactly like it does on a real device.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "UncorrectableError",
    "DegradedReadError",
    "ProgramFailError",
    "EraseFailError",
]


class FaultError(RuntimeError):
    """Base class for injected-fault failures."""

    def __init__(self, message: str, fail_time: float = 0.0) -> None:
        super().__init__(message)
        #: model time when the failure was detected
        self.fail_time = fail_time


class UncorrectableError(FaultError):
    """A page read exhausted the ECC read-retry ladder.

    ``retries`` counts the extra sensing rounds that were charged before
    the controller gave up; ``reason`` distinguishes wear/retention
    errors (``"ecc"``) from scripted injections (``"corrupt"``) and
    structural loss (``"channel_dead"``).
    """

    def __init__(self, ppa, fail_time: float, retries: int = 0,
                 reason: str = "ecc") -> None:
        super().__init__(
            f"uncorrectable read at {ppa} after {retries} retries"
            f" ({reason})", fail_time)
        self.ppa = ppa
        self.retries = retries
        self.reason = reason


class DegradedReadError(FaultError):
    """Parity reconstruction of a lost page failed (a second fault in
    the same parity group, or unreadable redundancy)."""

    def __init__(self, ppa, fail_time: float, detail: str = "") -> None:
        super().__init__(
            f"degraded read of {ppa} could not reconstruct"
            + (f": {detail}" if detail else ""), fail_time)
        self.ppa = ppa


class ProgramFailError(FaultError):
    """A page program reported status-fail (the classic grown-bad-block
    trigger). The failed block must be retired and its live pages
    relocated."""

    def __init__(self, ppa, fail_time: float, reason: str = "wear") -> None:
        super().__init__(f"program failure at {ppa} ({reason})", fail_time)
        self.ppa = ppa
        self.reason = reason


class EraseFailError(FaultError):
    """A block erase reported status-fail; the block must be retired."""

    def __init__(self, channel: int, bank: int, block: int,
                 fail_time: float, reason: str = "wear") -> None:
        super().__init__(
            f"erase failure at ch{channel}/bk{bank}/blk{block} ({reason})",
            fail_time)
        self.channel = channel
        self.bank = bank
        self.block = block
        self.reason = reason
