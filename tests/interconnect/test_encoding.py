"""Tests for the §5.3.1 binary command encoding."""

import pytest

from repro.interconnect import NvmeOpcode
from repro.interconnect.encoding import (COORDINATE_PAGE_BYTES,
                                         EXTENSION_BIT, SQE_BYTES,
                                         EncodedCommand, decode_command,
                                         decode_coordinate_page,
                                         decode_dimensionality_page,
                                         encode_command,
                                         encode_coordinate_page,
                                         encode_dimensionality_page)


class TestCoordinatePage:
    def test_roundtrip(self):
        coordinate = (3, 0, 17)
        sub_dim = (128, 128, 4)
        page = encode_coordinate_page(coordinate, sub_dim)
        assert len(page) == COORDINATE_PAGE_BYTES
        assert decode_coordinate_page(page) == (coordinate, sub_dim)

    def test_max_rank(self):
        coordinate = tuple(range(32))
        sub_dim = tuple(range(1, 33))
        page = encode_coordinate_page(coordinate, sub_dim)
        assert decode_coordinate_page(page) == (coordinate, sub_dim)

    def test_full_64bit_dimension(self):
        page = encode_coordinate_page((0,), (2**64,))
        assert decode_coordinate_page(page) == ((0,), (2**64,))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            encode_coordinate_page((1, 2), (3,))

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            decode_coordinate_page(b"\x00" * 10)

    def test_zero_rank_rejected_on_decode(self):
        page = bytearray(COORDINATE_PAGE_BYTES)
        with pytest.raises(ValueError):
            decode_coordinate_page(bytes(page))


class TestDimensionalityPage:
    def test_roundtrip(self):
        dims = (8192, 8192, 4)
        page = encode_dimensionality_page(dims)
        assert decode_dimensionality_page(page) == dims

    def test_33_dimensions_rejected(self):
        with pytest.raises(ValueError):
            encode_dimensionality_page((2,) * 33)


class TestCommandEncoding:
    def test_nd_read_roundtrip(self):
        encoded = encode_command(NvmeOpcode.ND_READ, space_id=7,
                                 coordinate=(1, 0), sub_dim=(8192, 8192))
        assert len(encoded.sqe) == SQE_BYTES
        opcode, space_id, details = decode_command(encoded)
        assert opcode is NvmeOpcode.ND_READ
        assert space_id == 7
        assert details == ((1, 0), (8192, 8192))

    def test_extension_bit_set_only_for_extended(self):
        import struct
        nd = encode_command(NvmeOpcode.ND_WRITE, coordinate=(0,),
                            sub_dim=(4,))
        conventional = encode_command(NvmeOpcode.READ, lba=10, length=8)
        _v, nd_flags, _s = struct.unpack_from("<HHI", nd.sqe, 0)
        _v, conv_flags, _s = struct.unpack_from("<HHI", conventional.sqe, 0)
        assert nd_flags & EXTENSION_BIT
        assert not (conv_flags & EXTENSION_BIT)

    def test_conventional_read_keeps_lba(self):
        encoded = encode_command(NvmeOpcode.READ, lba=12345, length=64)
        opcode, _sid, (lba, length) = decode_command(encoded)
        assert opcode is NvmeOpcode.READ
        assert (lba, length) == (12345, 64)
        assert encoded.payload_page is None

    def test_same_opcode_byte_read_vs_ndread(self):
        """The paper reuses the conventional opcode with the reserved
        bit — a legacy device sees a valid 1-D command."""
        import struct
        nd = encode_command(NvmeOpcode.ND_READ, coordinate=(0,),
                            sub_dim=(4,))
        conventional = encode_command(NvmeOpcode.READ)
        assert struct.unpack_from("<H", nd.sqe, 0) == \
            struct.unpack_from("<H", conventional.sqe, 0)

    def test_open_space_roundtrip(self):
        encoded = encode_command(NvmeOpcode.OPEN_SPACE, dims=(1024, 1024))
        opcode, _sid, dims = decode_command(encoded)
        assert opcode is NvmeOpcode.OPEN_SPACE
        assert dims == (1024, 1024)

    def test_close_and_delete_space(self):
        for op in (NvmeOpcode.CLOSE_SPACE, NvmeOpcode.DELETE_SPACE):
            opcode, space_id, details = decode_command(
                encode_command(op, space_id=99))
            assert opcode is op
            assert space_id == 99
            assert details is None

    def test_missing_payload_rejected(self):
        encoded = encode_command(NvmeOpcode.ND_READ, coordinate=(0,),
                                 sub_dim=(4,))
        stripped = EncodedCommand(sqe=encoded.sqe, payload_page=None)
        with pytest.raises(ValueError):
            decode_command(stripped)

    def test_wrong_sqe_size(self):
        with pytest.raises(ValueError):
            EncodedCommand(sqe=b"\x00" * 32)
