"""Edge cases of the device-scoped observation plumbing: ScopedMetrics
prefix collisions, per-device aggregation with a mid-run device kill,
and the monitor's view of both."""

from __future__ import annotations

import pytest

from repro.analysis.loadline_sweep import arrival_process, default_workload
from repro.faults.model import FaultConfig
from repro.faults.plan import FaultPlan
from repro.nvm.profiles import TINY_TEST
from repro.obs.critical_path import device_layer_totals, span_device
from repro.obs.metrics import MetricsRegistry, ScopedMetrics
from repro.obs.monitor import Monitor
from repro.runtime.trace import TraceRecorder
from repro.systems import SoftwareNdsSystem
from repro.traffic.injector import OpenLoopInjector, TrafficStream

HORIZON = 0.02
KILL_AT = HORIZON / 2


class TestScopedMetricsEdges:
    def test_scoped_and_direct_names_share_one_metric(self):
        """A scoped ``flash.reads`` with prefix ``d1.`` and a direct
        ``d1.flash.reads`` are the same counter — the prefix is pure
        namespacing, not a separate registry."""
        parent = MetricsRegistry()
        scoped = ScopedMetrics(parent, "d1.")
        scoped.count("flash.reads", 2)
        parent.count("d1.flash.reads", 3)
        assert scoped.counter("flash.reads").value == 5

    def test_cross_type_collision_through_scope_raises(self):
        parent = MetricsRegistry()
        scoped = ScopedMetrics(parent, "d0.")
        parent.observe("d0.lat", 1e-5)
        with pytest.raises(ValueError):
            scoped.count("lat")

    def test_sibling_scopes_do_not_collide(self):
        parent = MetricsRegistry()
        ScopedMetrics(parent, "d0.").count("ops")
        ScopedMetrics(parent, "d1.").count("ops", 4)
        snap = parent.snapshot()["counters"]
        assert snap["d0.ops"] == 1
        assert snap["d1.ops"] == 4

    def test_scoped_timeline_observer_prefixes(self):
        parent = MetricsRegistry()
        observe = ScopedMetrics(parent, "d2.").timeline_observer()
        observe("ch0", 0.0, 1e-5)
        snap = parent.snapshot()["counters"]
        assert snap["timeline.d2.ch0.busy_seconds"] == pytest.approx(1e-5)
        assert snap["timeline.d2.ch0.reservations"] == 1


def run_with_kill():
    """A 3-device pooled run where d1 dies halfway through."""
    system = SoftwareNdsSystem(
        TINY_TEST, devices=3,
        faults=FaultConfig(parity=True,
                           plan=FaultPlan().kill_device(1, at=KILL_AT)))
    workload = default_workload()
    for ds in workload.datasets():
        system.ingest(ds.name, ds.dims, ds.element_size)
    system.reset_time()
    system._reset_runtime()
    trace = TraceRecorder()
    monitor = Monitor(windows=8, horizon=HORIZON)
    stream = TrafficStream("serve", arrival_process("mmpp", 3000.0, 97),
                           workload.request_factory(), admission_queue=64)
    injector = OpenLoopInjector(system, [stream], horizon=HORIZON,
                                trace=trace, marks=8, monitor=monitor)
    result = injector.run()
    return monitor, trace, result


class TestKilledDeviceAggregation:
    def test_dead_device_stops_accumulating(self):
        monitor, trace, result = run_with_kill()
        assert result.completed > 0, "parity rebuild must keep serving"
        # the raw trace must show no d1 component spans after the kill
        late = [s for s in trace.spans
                if not s.instant and span_device(s.resource) == 1
                and s.start > KILL_AT]
        assert late == []

    def test_device_layer_totals_keep_dead_member(self):
        _, trace, _ = run_with_kill()
        totals = device_layer_totals(trace)
        assert {"d0", "d1", "d2"} <= set(totals)
        # the dead device did work before the kill, none after: its
        # inventory is real but smaller than the survivors'
        def busy(dev):
            return sum(totals[dev].values())
        assert 0 < busy("d1") < busy("d0")
        assert 0 < busy("d1") < busy("d2")

    def test_monitor_device_series_flatlines_after_kill(self):
        monitor, trace, _ = run_with_kill()
        series = monitor.device_series(trace)
        d1 = series["busy_seconds"]["d1"]
        kill_window = monitor.window_of(KILL_AT)
        assert sum(d1[:kill_window]) > 0
        assert sum(d1[kill_window + 1:]) == 0.0
        survivors = series["busy_seconds"]["d0"]
        assert sum(survivors[kill_window + 1:]) > 0

    def test_monitor_json_identical_across_kill_runs(self):
        from repro.obs.monitor import monitor_json
        first = None
        for _ in range(2):
            monitor, trace, _ = run_with_kill()
            payload = monitor_json(monitor.report(trace=trace))
            if first is None:
                first = payload
        assert payload == first
