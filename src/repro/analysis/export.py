"""CSV export of experiment results.

Every experiment driver returns plain dicts; these helpers flatten them
into CSV files so the figures can be re-plotted with any external tool
(the artifact-evaluation workflow the paper's appendix describes).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Tuple, Union

__all__ = ["export_series", "export_micro", "export_sweep"]

PathLike = Union[str, Path]


def export_series(series: Dict[str, Dict[int, float]],
                  path: PathLike, x_label: str = "dim",
                  y_label: str = "bytes_per_second") -> Path:
    """Write ``{series: {x: y}}`` (the Fig. 3 shape) as tidy CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", x_label, y_label])
        for name in sorted(series):
            for x in sorted(series[name]):
                writer.writerow([name, x, repr(series[name][x])])
    return path


def export_micro(reads: Dict[str, Dict[str, float]],
                 writes: Dict[str, float], path: PathLike) -> Path:
    """Write the Fig. 9 microbenchmark results as tidy CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["pattern", "system", "bytes_per_second"])
        for pattern in sorted(reads):
            for system in sorted(reads[pattern]):
                writer.writerow([pattern, system,
                                 repr(reads[pattern][system])])
        for system in sorted(writes):
            writer.writerow(["write", system, repr(writes[system])])
    return path


def export_sweep(sweep: Dict[str, Dict[str, Tuple[float, float]]],
                 path: PathLike) -> Path:
    """Write the Fig. 10 end-to-end sweep as tidy CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["workload", "system", "speedup",
                         "kernel_idle_seconds"])
        for workload in sorted(sweep):
            for system in sorted(sweep[workload]):
                ratio, idle = sweep[workload][system]
                writer.writerow([workload, system, repr(ratio), repr(idle)])
    return path
