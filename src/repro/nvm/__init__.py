"""Flash / NVM device substrate: geometry, timing, functional+timed array."""

from repro.nvm.address import PhysicalPageAddress, index_to_ppa, ppa_to_index
from repro.nvm.flash import FlashArray, FlashOpResult, FlashStateError
from repro.nvm.geometry import Geometry
from repro.nvm.profiles import (CONSUMER_SSD, PAPER_PROTOTYPE, PCM_PROTOTYPE,
                                TINY_TEST, DeviceProfile)
from repro.nvm.timing import NvmTiming

__all__ = [
    "Geometry",
    "NvmTiming",
    "PhysicalPageAddress",
    "ppa_to_index",
    "index_to_ppa",
    "FlashArray",
    "FlashOpResult",
    "FlashStateError",
    "DeviceProfile",
    "PAPER_PROTOTYPE",
    "CONSUMER_SSD",
    "PCM_PROTOTYPE",
    "TINY_TEST",
]
