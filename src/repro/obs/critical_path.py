"""Per-op latency attribution over the span tree (the paper's Fig. 2).

Every executed :class:`~repro.runtime.tileop.TileOp` has a parent span
on the ``"ops"`` resource and component spans (host issue/copy, link,
controller pipeline, FTL map, flash channel/bank...) recorded while it
ran. The analyzer partitions each op's ``[start, end)`` interval into
elementary segments at the component-span boundaries and attributes
each segment to the *dominant* active layer — the innermost (latest
started) span, with the deeper hardware layer winning ties. A segment
no component span covers is a stall under contention and is charged to
the layer the op acquires next; only segments with nothing after them
count as ``unattributed`` (scheduler/system glue at the op's tail).

Because the segments partition the interval exactly, the attributed
times of one op always sum to its end-to-end service latency — the
invariant ``repro report`` and the regression tests lean on. Queue
wait (submit → issue) is reported separately from the op span's
``queue_wait`` arg when the scheduler recorded one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.trace import TraceRecorder, TraceSpan

__all__ = ["LAYERS", "classify_span", "span_device", "attribute_op",
           "OpAttribution", "CriticalPathReport", "critical_path",
           "device_layer_totals"]

#: attribution layers ordered host → device; the index doubles as the
#: tie-break priority (higher = deeper in the stack = wins ties)
LAYERS: Tuple[str, ...] = (
    "unattributed", "host_issue", "host_copy", "cache", "link",
    "controller", "stl", "ftl", "channel", "bank",
)

_DEPTH = {layer: index for index, layer in enumerate(LAYERS)}

#: span *name* → layer (names are the stable instrumentation contract)
_NAME_LAYERS = {
    "issue_io": "host_issue",
    "issue_work": "host_issue",
    "host_copy": "host_copy",
    "cache_copy": "cache",
    "link_transfer": "link",
    "nvme_command": "controller",
    "assemble": "controller",
    "crypt": "controller",
    "stl_translate": "stl",
    "stl_allocate": "stl",
    "ftl_map": "ftl",
    "nand_read": "bank",
    "read_retry": "bank",
    "nand_program": "bank",
    "page_out": "channel",
    "page_in": "channel",
    "page_out_retry": "channel",
}


def span_device(resource: str) -> Optional[int]:
    """Device id from a pooled resource name (``"d2:ch1/bk0"`` → 2),
    or ``None`` for single-device resources."""
    head, sep, _ = resource.partition(":")
    if sep and head.startswith("d") and head[1:].isdigit():
        return int(head[1:])
    return None


def _strip_device(resource: str) -> str:
    head, sep, rest = resource.partition(":")
    if sep and head.startswith("d") and head[1:].isdigit():
        return rest
    return resource


def classify_span(span: TraceSpan) -> str:
    """Attribution layer of one component span (name first, then the
    resource naming convention as a fallback for custom spans). A
    device-pool prefix (``"dN:"``) is stripped first so pooled runs
    classify identically to single-device runs."""
    layer = _NAME_LAYERS.get(span.name)
    if layer is not None:
        return layer
    resource = _strip_device(span.resource)
    if "/bk" in resource:
        return "bank"
    if resource.startswith("ch") and resource[2:].isdigit():
        return "channel"
    if resource.startswith("ctrl_") or resource == "aes_engine":
        return "controller"
    if resource == "device_ctrl":
        return "ftl"
    if resource == "link":
        return "link"
    if resource == "host_copy":
        return "host_copy"
    if resource.startswith("host"):
        return "host_issue"
    return "unattributed"


@dataclass
class OpAttribution:
    """Where one op's service time went."""

    op_id: int
    stream: str
    label: str
    start: float
    end: float
    queue_wait: float
    by_layer: Dict[str, float] = field(default_factory=dict)
    #: the elementary ``(start, end, layer)`` segments the sweep
    #: produced, in time order — they partition ``[start, end)``
    #: exactly, so any window clipped out of them inherits the same
    #: exact-sum discipline (the live monitor's windowed attribution)
    segments: List[Tuple[float, float, str]] = field(default_factory=list)

    @property
    def service_time(self) -> float:
        return self.end - self.start

    @property
    def attributed_total(self) -> float:
        """Sum over all layers — equals :attr:`service_time` exactly
        (the segments partition the op interval)."""
        return sum(self.by_layer.values())

    @property
    def dominant(self) -> str:
        """Layer that received the most time (deterministic ties:
        deeper layer wins)."""
        if not self.by_layer:
            return "unattributed"
        return max(self.by_layer.items(),
                   key=lambda item: (item[1], _DEPTH.get(item[0], -1)))[0]


def attribute_op(op_span: TraceSpan,
                 children: Sequence[TraceSpan]) -> OpAttribution:
    """Partition one op's interval over its component spans.

    A sweep over the clipped span boundaries yields elementary segments;
    each goes to the dominant active span — latest start wins (the
    innermost work at that moment), deeper layer then name break ties.
    A segment with no active span is a *stall*: under FCFS contention
    the op is blocked behind other tenants' reservations, so the stall
    is charged to the layer of the span the op acquires next (waiting
    for a bank counts as bank time). Only trailing gaps with nothing
    after them stay ``unattributed``.
    """
    lo, hi = op_span.start, op_span.end
    args = dict(op_span.args)
    queue_wait = float(args.get("queue_wait", 0.0))
    attribution = OpAttribution(
        op_id=op_span.op_id, stream=op_span.stream, label=op_span.name,
        start=lo, end=hi, queue_wait=queue_wait)
    clipped = []
    for child in children:
        if child.instant:
            continue
        start = max(child.start, lo)
        end = min(child.end, hi)
        if end > start:
            clipped.append((start, end, classify_span(child), child.name))
    if hi <= lo:
        return attribution
    boundaries = sorted({lo, hi}
                        | {c[0] for c in clipped} | {c[1] for c in clipped})
    by_layer = attribution.by_layer
    # sort once by start so the active set can advance with the sweep
    clipped.sort(key=lambda c: (c[0], _DEPTH[c[2]], c[3], c[1]))
    cursor = 0
    active: List[Tuple[float, float, str, str]] = []
    for seg_lo, seg_hi in zip(boundaries, boundaries[1:]):
        while cursor < len(clipped) and clipped[cursor][0] <= seg_lo:
            active.append(clipped[cursor])
            cursor += 1
        active = [c for c in active if c[1] > seg_lo]
        if active:
            # dominant = latest-started; deeper layer, then name on ties
            winner = max(active,
                         key=lambda c: (c[0], _DEPTH[c[2]], c[3]))
            layer = winner[2]
        elif cursor < len(clipped):
            # stall: blocked behind other ops' reservations — charge
            # the resource this op acquires next
            layer = clipped[cursor][2]
        else:
            layer = "unattributed"
        by_layer[layer] = by_layer.get(layer, 0.0) + (seg_hi - seg_lo)
        attribution.segments.append((seg_lo, seg_hi, layer))
    return attribution


@dataclass
class CriticalPathReport:
    """Aggregated "where time goes" breakdown for one trace."""

    ops: List[OpAttribution]

    @property
    def total_service_time(self) -> float:
        return sum(op.service_time for op in self.ops)

    @property
    def total_queue_wait(self) -> float:
        return sum(op.queue_wait for op in self.ops)

    def layer_totals(self, stream: Optional[str] = None) -> Dict[str, float]:
        """Seconds attributed to each layer (optionally one stream)."""
        totals: Dict[str, float] = {}
        for op in self.ops:
            if stream is not None and op.stream != stream:
                continue
            for layer, seconds in op.by_layer.items():
                totals[layer] = totals.get(layer, 0.0) + seconds
        return dict(sorted(totals.items()))

    def layer_shares(self, stream: Optional[str] = None) -> Dict[str, float]:
        totals = self.layer_totals(stream)
        grand = sum(totals.values())
        if grand <= 0:
            return {layer: 0.0 for layer in totals}
        return {layer: seconds / grand for layer, seconds in totals.items()}

    def dominant_counts(self) -> Dict[str, int]:
        """How many ops each layer dominated."""
        counts: Dict[str, int] = {}
        for op in self.ops:
            layer = op.dominant
            counts[layer] = counts.get(layer, 0) + 1
        return dict(sorted(counts.items()))

    def streams(self) -> List[str]:
        return sorted({op.stream for op in self.ops})


def critical_path(trace: TraceRecorder) -> CriticalPathReport:
    """Attribute every op span in ``trace`` (submission order)."""
    children_by_op: Dict[int, List[TraceSpan]] = {}
    op_spans: List[TraceSpan] = []
    for span in trace.spans:
        if span.instant:
            continue
        if span.resource == "ops":
            op_spans.append(span)
        else:
            children_by_op.setdefault(span.op_id, []).append(span)
    op_spans.sort(key=lambda s: (s.op_id, s.start))
    return CriticalPathReport(ops=[
        attribute_op(op, children_by_op.get(op.op_id, []))
        for op in op_spans])


def device_layer_totals(trace: TraceRecorder) -> Dict[str, Dict[str, float]]:
    """Busy seconds per (device, layer) over a pooled trace.

    Unlike :func:`critical_path`, which charges each op's wall-clock
    interval to dominant layers, this sums raw span durations per
    device — the per-device work inventory (overlapping spans on
    different devices both count, which is the point: it shows how the
    pool spread the work). Spans with no ``dN:`` prefix (host-side
    issue/copy, the host link on a single-device run) land under
    ``"host"``.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for span in trace.spans:
        if span.instant or span.resource == "ops":
            continue
        device = span_device(span.resource)
        key = "host" if device is None else f"d{device}"
        layer = classify_span(span)
        row = totals.setdefault(key, {})
        row[layer] = row.get(layer, 0.0) + (span.end - span.start)
    return {key: dict(sorted(row.items()))
            for key, row in sorted(totals.items())}
