"""Windowed utilization timelines and their CSV rendering."""

from __future__ import annotations

import pytest

from repro.obs.utilization import utilization_csv, utilization_timeline
from repro.runtime.trace import TraceRecorder


def _trace_with(spans):
    trace = TraceRecorder()
    for resource, start, end in spans:
        trace.span(resource, start, end)
    return trace


class TestTimeline:
    def test_fractions_are_exact_for_aligned_spans(self):
        trace = _trace_with([("ch0", 0.0, 1.0), ("ch0", 3.0, 4.0)])
        timeline = utilization_timeline(trace, windows=4)
        assert timeline["horizon"] == pytest.approx(4.0)
        assert timeline["window_seconds"] == pytest.approx(1.0)
        assert timeline["resources"]["ch0"] == \
            pytest.approx([1.0, 0.0, 0.0, 1.0])

    def test_span_clipped_across_windows(self):
        trace = _trace_with([("ch0", 0.5, 1.5), ("ch1", 0.0, 2.0)])
        timeline = utilization_timeline(trace, windows=2)
        assert timeline["resources"]["ch0"] == pytest.approx([0.5, 0.5])
        assert timeline["resources"]["ch1"] == pytest.approx([1.0, 1.0])

    def test_flash_only_filters_non_flash(self):
        trace = _trace_with([("ch0", 0.0, 1.0), ("ch0/bk1", 0.0, 1.0),
                             ("link", 0.0, 1.0), ("host_issue", 0.0, 1.0)])
        timeline = utilization_timeline(trace, windows=2, flash_only=True)
        assert set(timeline["resources"]) == {"ch0", "ch0/bk1"}

    def test_ops_and_instants_excluded(self):
        trace = TraceRecorder()
        trace.op_span("s", 0, "read", 0.0, 1.0)
        trace.instant("slo", 0.5)
        timeline = utilization_timeline(trace, windows=2)
        assert timeline["resources"] == {}
        assert timeline["horizon"] == 0.0

    def test_rejects_bad_window_count(self):
        with pytest.raises(ValueError):
            utilization_timeline(TraceRecorder(), windows=0)

    def test_fractions_bounded(self):
        trace = _trace_with([("ch0", 0.0, 1.0), ("ch1", 0.0, 0.1)])
        timeline = utilization_timeline(trace, windows=3)
        for row in timeline["resources"].values():
            assert all(0.0 <= f <= 1.0 for f in row)


class TestCsv:
    def test_tidy_rows(self):
        trace = _trace_with([("ch0", 0.0, 1.0)])
        csv = utilization_csv(utilization_timeline(trace, windows=2))
        lines = csv.strip().split("\n")
        assert lines[0] == "resource,window,window_start_s,busy_fraction"
        assert lines[1] == "ch0,0,0,1.000000"
        assert lines[2].startswith("ch0,1,0.5,")
        assert csv.endswith("\n")
