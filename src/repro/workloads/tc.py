"""Tensor Contraction (Table 1: tensor algebra, Tensor-Core kernel).

Mode-3 product of a 3-D tensor with a matrix:
``Y[i, j, l] = Σ_k X[i, j, k] · M[k, l]`` — the cuBLAS strided-batched
GEMM pattern of the paper's TC baseline [23, 77]. Shares the tensor
dataset with TTV but consumes it with 2-D Tensor-Core sub-blocks.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import random_matrix, random_tensor

__all__ = ["TcWorkload"]


class TcWorkload(Workload):
    name = "TC"
    category = "Tensor Algebra"
    data_dim_label = "3D"
    kernel_dim_label = "2D"
    uses_tensor_cores = True

    def __init__(self, rows: int = 128, cols: int = 128, depth: int = 2048,
                 tile_rows: int = 32, tile_cols: int = 32,
                 tile_depth: int = 1024, contract_dim: int = 256,
                 max_tiles: int = 64) -> None:
        if rows % tile_rows or cols % tile_cols or depth % tile_depth:
            raise ValueError("tile dims must divide tensor dims")
        self.dims = (rows, cols, depth)
        self.tile = (tile_rows, tile_cols, tile_depth)
        self.contract_dim = contract_dim
        self.max_tiles = max_tiles

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset("tensor", self.dims, 4),
                WorkloadDataset("matrix",
                                (self.dims[2], self.contract_dim), 4)]

    def tile_plan(self) -> List[TileFetch]:
        plan: List[TileFetch] = []
        grid = tuple(d // t for d, t in zip(self.dims, self.tile))
        for i in range(grid[0]):
            for j in range(grid[1]):
                for k in range(grid[2]):
                    plan.append(TileFetch(
                        "tensor",
                        (i * self.tile[0], j * self.tile[1],
                         k * self.tile[2]),
                        self.tile))
                    if len(plan) >= self.max_tiles:
                        return plan
        return plan

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        # strided-batched GEMM: the brick's tile_rows×tile_cols fibres of
        # depth tile_depth contract against the matrix slice
        return kernels.gemm(self.tile[0] * self.tile[1], self.contract_dim,
                            self.tile[2], element_size=4,
                            use_tensor_cores=True)

    def shared_input_group(self) -> str:
        return "dense-tensor"

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        seed = int(rng.integers(2**31))
        return {"tensor": random_tensor(*self.dims, seed=seed),
                "matrix": random_matrix(self.dims[2], self.contract_dim,
                                        seed=seed + 1)}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        return np.einsum("ijk,kl->ijl",
                         inputs["tensor"].astype(np.float64),
                         inputs["matrix"].astype(np.float64))
