"""Building-block sizing — Equations 1–4 of the paper (§4.1).

A building block is a fixed-size logical chunk whose pages are spread
over all parallel channels (and, for 3-D blocks, banks), so that
fetching one block always engages the device's full parallelism:

* Eq. 1  ``BB_size_min = MaxParallelRequests × BasicAccessGranularity``
* Eq. 2  each dimension of a 2-D block stores
  ``2**ceil(log2(sqrt(BB_size_min / N)))`` elements for element size N
* Eq. 3  ``3D_BB_size_min = BB_size_min × NumBanks``
* Eq. 4  each dimension of a 3-D block stores
  ``2**ceil(log2(cbrt(3D_BB_size_min / N)))`` elements

NDS supports 1-D, 2-D and 3-D building blocks; in higher-dimensional
spaces the block spans 1 element along every further axis (§4.1:
"NDS sets the bb_i value to 1 when i > 3").
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.nvm.geometry import Geometry

__all__ = [
    "bb_size_min",
    "bb_size_min_3d",
    "block_dims",
    "block_volume",
    "block_bytes",
    "pages_per_block",
]


def bb_size_min(geometry: Geometry) -> int:
    """Eq. 1: the smallest block that touches every channel once."""
    return geometry.max_parallel_requests * geometry.page_size


def bb_size_min_3d(geometry: Geometry) -> int:
    """Eq. 3: the smallest 3-D block (channels × banks × page)."""
    return bb_size_min(geometry) * geometry.banks_per_channel


def _pow2_at_least(value: float) -> int:
    """Smallest power of two >= value (value >= 1)."""
    return 1 << max(0, math.ceil(math.log2(value)))


def block_dims(space_dims: Sequence[int], element_size: int,
               geometry: Geometry,
               override: Optional[Sequence[int]] = None,
               use_3d: bool = False) -> Tuple[int, ...]:
    """Determine the building-block dimensionality for a space.

    ``override`` pins the block shape explicitly (the paper's §7.1
    prototype picks 256×256 for 8-byte elements where Eq. 2 alone gives
    128×128); it must still cover at least one basic access unit per
    channel, which :func:`pages_per_block` validates downstream.
    ``use_3d`` opts a >=3-D space into 3-D cube blocks (Eq. 3/4) instead
    of the default 2-D sub-blocks.
    """
    rank = len(space_dims)
    if rank == 0:
        raise ValueError("space must have at least one dimension")
    if element_size < 1:
        raise ValueError("element size must be >= 1 byte")
    if override is not None:
        if len(override) != rank:
            raise ValueError("override rank must match space rank")
        if any(b < 1 for b in override):
            raise ValueError("override dims must be >= 1")
        return tuple(int(b) for b in override)

    if rank == 1:
        elements = bb_size_min(geometry) / element_size
        return (_pow2_at_least(elements),)
    if not use_3d or rank == 2:
        # Eq. 2: equal-size square block from the 2-D minimum, placed on
        # the two largest axes (§4.1: "the STL uses each building block
        # to store a two-dimensional sub-block if the space has at least
        # two dimensions"). Figure 5's (8192, 8192, 4) space gets
        # (128, 128, 1) blocks this way.
        side = _pow2_at_least(math.sqrt(bb_size_min(geometry) / element_size))
        return _assign_to_largest(space_dims, side, 2)
    # Eq. 4: optional 3-D cube block using bank-level parallelism as the
    # third dimension; axes beyond the third get bb_i = 1.
    side = _pow2_at_least((bb_size_min_3d(geometry) / element_size) ** (1.0 / 3.0))
    return _assign_to_largest(space_dims, side, 3)


def _assign_to_largest(space_dims: Sequence[int], side: int,
                       count: int) -> Tuple[int, ...]:
    """Give ``side`` to the ``count`` largest axes (stable for ties),
    1 to the rest."""
    order = sorted(range(len(space_dims)),
                   key=lambda axis: (-space_dims[axis], axis))
    chosen = set(order[:count])
    return tuple(side if axis in chosen else 1
                 for axis in range(len(space_dims)))


def block_volume(bb: Sequence[int]) -> int:
    volume = 1
    for extent in bb:
        volume *= extent
    return volume


def block_bytes(bb: Sequence[int], element_size: int) -> int:
    return block_volume(bb) * element_size


def pages_per_block(bb: Sequence[int], element_size: int,
                    geometry: Geometry) -> int:
    """Basic access units per building block (>= 1)."""
    return max(1, -(-block_bytes(bb, element_size) // geometry.page_size))
