#!/usr/bin/env python3
"""Two tenants sharing one NDS device, with a Chrome trace.

Goes beyond the paper's single-application setting: a GEMM tenant and a
BFS tenant co-run on the same hardware-NDS device. Each tenant's tile
plan is admitted through the request scheduler under a per-stream queue
depth with round-robin arbitration; contention shows up purely through
the shared resource timelines (flash channels/banks, controller
pipeline, link). The run emits a ``chrome://tracing`` / Perfetto JSON
with one process per tenant and one thread per resource, so you can
*see* the GEMM stream and the BFS stream interleaving on the device.

Run:  python examples/multi_tenant_trace.py
      then load multi_tenant.trace.json in https://ui.perfetto.dev
"""

from repro.nvm import PAPER_PROTOTYPE
from repro.runtime import TraceRecorder
from repro.systems import HardwareNdsSystem
from repro.workloads import BfsWorkload, GemmWorkload, co_run_workloads


def main() -> None:
    gemm = GemmWorkload(n=1024, tile=256, max_tiles=16)
    bfs = BfsWorkload(nodes=1024, batch_rows=64)
    system = HardwareNdsSystem(PAPER_PROTOTYPE, store_data=False)

    print("== solo runs (each tenant alone on the device) ==")
    solo = {}
    for workload in (gemm, bfs):
        result = co_run_workloads([workload],
                                  HardwareNdsSystem(PAPER_PROTOTYPE,
                                                    store_data=False),
                                  queue_depth=8)
        solo[workload.name] = result.stream(workload.name)
        stream = solo[workload.name]
        print(f"  {workload.name:6s} {stream.tiles:3d} tiles  "
              f"io makespan {stream.io_makespan * 1e3:7.3f} ms  "
              f"mean latency {stream.mean_io_latency * 1e6:8.1f} us")

    print("\n== co-run (both tenants, round-robin, queue depth 8) ==")
    trace = TraceRecorder()
    result = co_run_workloads([gemm, bfs], system, queue_depth=8,
                              arbitration="round_robin", trace=trace)
    for name, stream in result.streams.items():
        slowdown = stream.io_makespan / solo[name].io_makespan
        print(f"  {name:6s} {stream.tiles:3d} tiles  "
              f"io makespan {stream.io_makespan * 1e3:7.3f} ms  "
              f"mean latency {stream.mean_io_latency * 1e6:8.1f} us  "
              f"({slowdown:4.2f}x vs solo)")
    print(f"  co-run end-to-end: {result.total_time * 1e3:.3f} ms "
          f"(I/O makespan {result.io_makespan * 1e3:.3f} ms)")

    print("\n== busiest device resources during the co-run ==")
    metrics = trace.resource_metrics()
    busiest = sorted(metrics.items(), key=lambda kv: -kv[1]["busy_time"])
    for resource, entry in busiest[:6]:
        print(f"  {resource:16s} busy {entry['busy_time'] * 1e3:7.3f} ms "
              f"in {entry['spans']:4d} spans")

    path = trace.save("multi_tenant.trace.json")
    print(f"\nwrote {path} ({len(trace.spans)} spans) — "
          f"load it in chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()
