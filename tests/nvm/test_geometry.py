"""Tests for device geometry."""

import pytest

from repro.nvm import Geometry


def test_defaults_match_paper_prototype():
    g = Geometry()
    assert g.channels == 32
    assert g.banks_per_channel == 8
    assert g.page_size == 4096


def test_derived_quantities():
    g = Geometry(channels=4, banks_per_channel=2, blocks_per_bank=8,
                 pages_per_block=16, page_size=512)
    assert g.banks == 8
    assert g.pages_per_bank == 128
    assert g.pages_per_channel == 256
    assert g.total_pages == 1024
    assert g.total_blocks == 64
    assert g.capacity_bytes == 1024 * 512
    assert g.max_parallel_requests == 4


@pytest.mark.parametrize("field", ["channels", "banks_per_channel",
                                   "blocks_per_bank", "pages_per_block",
                                   "page_size"])
def test_rejects_non_positive(field):
    kwargs = {field: 0}
    with pytest.raises(ValueError):
        Geometry(**kwargs)


def test_scaled_shrinks_capacity_not_parallelism():
    g = Geometry(channels=32, banks_per_channel=8, blocks_per_bank=1024)
    scaled = g.scaled(block_factor=0.25)
    assert scaled.channels == 32
    assert scaled.banks_per_channel == 8
    assert scaled.blocks_per_bank == 256


def test_scaled_channel_factor():
    g = Geometry(channels=32)
    assert g.scaled(channel_factor=0.25).channels == 8
