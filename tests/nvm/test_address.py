"""Tests for physical page addressing."""

import pytest

from repro.nvm import Geometry, PhysicalPageAddress, index_to_ppa, ppa_to_index


@pytest.fixture
def geometry():
    return Geometry(channels=4, banks_per_channel=2, blocks_per_bank=8,
                    pages_per_block=8, page_size=256)


def test_roundtrip_all_pages(geometry):
    for index in range(geometry.total_pages):
        ppa = index_to_ppa(index, geometry)
        assert ppa_to_index(ppa, geometry) == index


def test_index_zero_is_origin(geometry):
    assert index_to_ppa(0, geometry) == PhysicalPageAddress(0, 0, 0, 0)


def test_linearization_is_channel_major(geometry):
    last_of_channel0 = PhysicalPageAddress(0, 1, 7, 7)
    first_of_channel1 = PhysicalPageAddress(1, 0, 0, 0)
    assert (ppa_to_index(first_of_channel1, geometry)
            == ppa_to_index(last_of_channel0, geometry) + 1)


def test_out_of_range_index(geometry):
    with pytest.raises(ValueError):
        index_to_ppa(geometry.total_pages, geometry)
    with pytest.raises(ValueError):
        index_to_ppa(-1, geometry)


def test_validate(geometry):
    PhysicalPageAddress(3, 1, 7, 7).validate(geometry)
    with pytest.raises(ValueError):
        PhysicalPageAddress(4, 0, 0, 0).validate(geometry)
    with pytest.raises(ValueError):
        PhysicalPageAddress(0, 2, 0, 0).validate(geometry)
    with pytest.raises(ValueError):
        PhysicalPageAddress(0, 0, 8, 0).validate(geometry)
    with pytest.raises(ValueError):
        PhysicalPageAddress(0, 0, 0, 8).validate(geometry)


def test_ordering_is_lexicographic():
    a = PhysicalPageAddress(0, 0, 0, 1)
    b = PhysicalPageAddress(0, 0, 1, 0)
    c = PhysicalPageAddress(1, 0, 0, 0)
    assert a < b < c
