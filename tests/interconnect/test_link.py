"""Tests for the link model — including the paper's [P2] anchors."""

import pytest

from repro.interconnect import Link
from repro.nvm import PAPER_PROTOTYPE


@pytest.fixture
def link():
    return Link(bandwidth=1e9, command_overhead=10e-6)


class TestTransfer:
    def test_duration(self, link):
        assert link.transfer_duration(1000) == pytest.approx(10e-6 + 1e-6)

    def test_transfers_serialize(self, link):
        first = link.transfer(1000, 0.0)
        second = link.transfer(1000, 0.0)
        assert second.start_time == pytest.approx(first.end_time)

    def test_late_arrival_leaves_gap(self, link):
        link.transfer(1000, 0.0)
        late = link.transfer(1000, 1.0)
        assert late.start_time == 1.0

    def test_zero_bytes_costs_overhead_only(self, link):
        t = link.transfer(0, 0.0)
        assert t.elapsed == pytest.approx(10e-6)

    def test_negative_bytes_rejected(self, link):
        with pytest.raises(ValueError):
            link.transfer(-1, 0.0)

    def test_stats(self, link):
        link.transfer(100, 0.0)
        link.transfer(200, 0.0)
        assert link.stats.get_count("transfers") == 2
        assert link.stats.get_count("bytes") == 300


class TestEfficiency:
    def test_monotone_in_request_size(self, link):
        sizes = [2**k for k in range(8, 24)]
        efficiencies = [link.efficiency(s) for s in sizes]
        assert efficiencies == sorted(efficiencies)

    def test_paper_anchor_32k_is_66_percent(self):
        """§2.1 [P2]: 32 KB requests reach ~66 % of peak on the
        prototype's NVMe-oF link."""
        profile = PAPER_PROTOTYPE
        assert profile.link_efficiency(32 * 1024) == pytest.approx(0.66,
                                                                   abs=0.03)

    def test_paper_anchor_2mb_saturates(self):
        """§2.1 [P2]: >= 2 MB requests saturate the interconnect."""
        profile = PAPER_PROTOTYPE
        assert profile.link_efficiency(2 * 2**20) > 0.98

    def test_zero_size(self, link):
        assert link.efficiency(0) == 0.0


def test_invalid_construction():
    with pytest.raises(ValueError):
        Link(bandwidth=0.0, command_overhead=1e-6)
    with pytest.raises(ValueError):
        Link(bandwidth=1e9, command_overhead=-1e-6)
