"""K-Nearest Neighbors (Table 1: data mining, 1-D kernel).

Shares the clustering dataset with K-Means but consumes it per point:
each fetch is one point row (the paper's 65536-element 1-D kernel
sub-dimension) whose distance to a query point the kernel computes.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import clustering_points

__all__ = ["KnnWorkload"]


class KnnWorkload(Workload):
    name = "KNN"
    category = "Data Mining"
    data_dim_label = "1D"
    kernel_dim_label = "1D"

    def __init__(self, points: int = 4096, attributes: int = 4096,
                 neighbours: int = 8, batch_points: int = 16,
                 max_tiles: int = 64) -> None:
        if points % batch_points != 0:
            raise ValueError("batch_points must divide points")
        self.points = points
        self.attributes = attributes
        self.neighbours = neighbours
        self.batch_points = batch_points
        self.max_tiles = max_tiles

    def datasets(self) -> List[WorkloadDataset]:
        # Table 1 lists KNN's data as 1-D: the point set is consumed as a
        # flat element stream (one point row per fetch) — the same bytes
        # K-Means views as 2-D, demonstrating NDS's view elasticity.
        return [WorkloadDataset("points",
                                (self.points * self.attributes,), 4)]

    def tile_plan(self) -> List[TileFetch]:
        batch = self.batch_points * self.attributes
        batches = min(self.points // self.batch_points, self.max_tiles)
        return [TileFetch("points", (index * batch,), (batch,))
                for index in range(batches)]

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        return kernels.knn_distances(self.batch_points, self.attributes,
                                     element_size=4)

    def shared_input_group(self) -> str:
        return "clustering-points"

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        data, _centres = clustering_points(
            self.points, self.attributes, seed=int(rng.integers(2**31)))
        return {"points": data.ravel()}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """Indices of the k nearest neighbours of point 0."""
        data = inputs["points"].astype(np.float64).reshape(
            self.points, self.attributes)
        query = data[0]
        distances = ((data - query) ** 2).sum(axis=1)
        order = np.argsort(distances, kind="stable")
        return order[1:self.neighbours + 1]
