"""A minimal discrete-event simulation engine.

The engine is intentionally small: a priority queue of ``(time, seq,
callback)`` triples and a clock. Most of the storage model uses the
analytic :class:`~repro.sim.resources.Timeline` servers directly (FCFS
schedules are deterministic and need no callbacks), but dynamic behaviour
— queue-depth-limited I/O issue, pipelined controller stages that react
to completions — runs on this engine.

Times are floats in **seconds** throughout the code base.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the engine is driven incorrectly (e.g. scheduling in
    the past)."""


class Simulator:
    """Event-driven simulator with a monotonically advancing clock.

    >>> sim = Simulator()
    >>> seen = []
    >>> sim.at(2.0, lambda: seen.append(("b", sim.now)))
    >>> sim.at(1.0, lambda: seen.append(("a", sim.now)))
    >>> sim.run()
    >>> seen
    [('a', 1.0), ('b', 2.0)]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False
        self._in_callback = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        heapq.heappush(self._queue, (float(time), self._seq, callback))
        self._seq += 1

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.at(self.now + delay, callback)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event. Returns False when no events remain.

        Callbacks may schedule further events, including at exactly
        ``now`` (same-time events run in FIFO scheduling order), but may
        not drive the engine themselves: calling :meth:`step` or
        :meth:`run` from inside a callback raises
        :class:`SimulationError` instead of re-entering the event loop
        mid-dispatch.
        """
        if self._in_callback:
            raise SimulationError(
                "step() called from inside an event callback")
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self.now = time
        self._in_callback = True
        try:
            callback()
        finally:
            self._in_callback = False
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains (or the clock passes ``until``).

        Returns the final simulation time. A callback that raises aborts
        the run with that exception; the engine stays consistent (the
        failing event is consumed, the rest of the queue is intact) and
        ``run()`` may be called again to resume.
        """
        if self._running or self._in_callback:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    break
                self.step()
        finally:
            self._running = False
        return self.now

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
