"""GPU model: CUDA-core and Tensor-Core processing-rate curves.

Figure 3 of the paper plots *effective data processing rate* against
tile dimension for both GPU engines: rates rise with tile size (launch
overhead and occupancy amortize), peak at an engine-specific optimum —
2048×2048 for CUDA cores, 512×512 for Tensor Cores (§2.2 [C2]) — and
fall once compute grows as n³ against data volume n². We model each
engine with a calibrated log-normal bump, which reproduces exactly the
properties the paper uses: distinct optima per engine ([C2]), optima
that differ from any storage device's optimum ([C3]), and kernel times
that grow superquadratically past the optimum.

Absolute peaks are calibrated from RTX 2080-class GEMM: ~30 GB/s of
matrix data for FP32 cuBLAS on CUDA cores, ~250 GB/s for FP16 Tensor
Cores (the paper's "significant performance lead in Tensor Cores").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["EngineCurve", "GpuModel", "RTX2080"]


@dataclass(frozen=True)
class EngineCurve:
    """Processing-rate curve of one GPU engine.

    ``rate(n)`` is bytes of operand/result data processed per second
    when the kernel works on n×n tiles.
    """

    name: str
    peak_rate: float          # bytes/second at the optimal tile dimension
    optimal_dim: int          # tile dimension with the highest rate
    sigma_log2: float = 2.0   # width of the bump in octaves
    min_dim: int = 8

    def rate(self, dim: int) -> float:
        if dim < 1:
            raise ValueError("tile dimension must be >= 1")
        dim = max(dim, self.min_dim)
        offset = math.log2(dim / self.optimal_dim)
        return self.peak_rate * math.exp(-(offset * offset)
                                         / (2.0 * self.sigma_log2 ** 2))


@dataclass(frozen=True)
class GpuModel:
    """One accelerator: engines, device memory and the H2D/D2H path."""

    name: str
    cuda: EngineCurve
    tensor: EngineCurve
    device_memory: int = 8 * 2**30
    h2d_bandwidth: float = 12e9
    h2d_overhead: float = 10e-6
    #: amortized per-kernel launch cost — the paper's kernels are
    #: strided-batched cuBLAS calls, so launches amortize to ~1 µs
    kernel_launch_overhead: float = 1e-6

    # ------------------------------------------------------------------
    def h2d_time(self, num_bytes: int) -> float:
        """Host→device (or device→host) copy time over PCIe."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.h2d_overhead + num_bytes / self.h2d_bandwidth

    def engine(self, use_tensor_cores: bool) -> EngineCurve:
        return self.tensor if use_tensor_cores else self.cuda

    def kernel_time(self, data_bytes: int, tile_dim: int,
                    use_tensor_cores: bool = False) -> float:
        """Time for one kernel that touches ``data_bytes`` of operand
        data with a working tile of ``tile_dim``×``tile_dim``."""
        if data_bytes <= 0:
            return self.kernel_launch_overhead
        curve = self.engine(use_tensor_cores)
        return self.kernel_launch_overhead + data_bytes / curve.rate(tile_dim)

    def processing_rate(self, tile_dim: int, element_size: int = 4,
                        use_tensor_cores: bool = False) -> float:
        """The Fig. 3 series: effective bytes/second for n×n GEMM tiles
        (3 operand/result matrices of n² elements each)."""
        data = 3 * tile_dim * tile_dim * element_size
        return data / self.kernel_time(data, tile_dim, use_tensor_cores)

    def optimal_tile_dim(self, use_tensor_cores: bool) -> int:
        return self.engine(use_tensor_cores).optimal_dim

    def fits_in_device_memory(self, num_bytes: int) -> bool:
        return num_bytes <= self.device_memory


#: The paper's evaluation GPU (§6.1): RTX 2080 with Turing Tensor Cores.
RTX2080 = GpuModel(
    name="rtx-2080",
    cuda=EngineCurve(name="cuda-cores", peak_rate=30e9, optimal_dim=2048),
    tensor=EngineCurve(name="tensor-cores", peak_rate=250e9, optimal_dim=512),
    device_memory=8 * 2**30,
    h2d_bandwidth=12e9,
    h2d_overhead=10e-6,
    kernel_launch_overhead=1e-6,
)
