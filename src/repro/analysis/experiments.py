"""Reusable experiment drivers shared by the CLI and the benchmarks.

Each function performs one of the paper's experiments end to end and
returns plain data structures (dicts of numbers) that callers format.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.accelerator import RTX2080
from repro.interconnect import saturation_curve
from repro.nvm import CONSUMER_SSD, PAPER_PROTOTYPE, DeviceProfile
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)
from repro.workloads import all_workloads, run_workload, speedup

__all__ = ["micro_read_bandwidths", "micro_write_bandwidths",
           "fig3_series", "endtoend_sweep", "overhead_latencies"]

MICRO_BB = (256, 256)


def _micro_systems(n: int, elem: int,
                   profile: DeviceProfile) -> Dict[str, object]:
    systems = {
        "baseline": BaselineSystem(profile),
        "software": SoftwareNdsSystem(profile, bb_override=MICRO_BB),
        "hardware": HardwareNdsSystem(profile, bb_override=MICRO_BB),
    }
    for system in systems.values():
        system.ingest("m", (n, n), elem)
        system.reset_time()
    return systems


def micro_read_bandwidths(n: int = 4096, elem: int = 8,
                          profile: DeviceProfile = PAPER_PROTOTYPE,
                          ) -> Dict[str, Dict[str, float]]:
    """Fig. 9(a–c): effective bandwidth per access pattern per system."""
    systems = _micro_systems(n, elem, profile)
    patterns = {
        "row-fetch": ((0, 0), (n // 8, n)),
        "column-fetch": ((0, 0), (n, n // 8)),
        "submatrix-fetch": ((0, 0), (n // 2, n // 2)),
    }
    out: Dict[str, Dict[str, float]] = {}
    for pattern, (origin, extents) in patterns.items():
        out[pattern] = {}
        for name, system in systems.items():
            system.reset_time()
            result = system.read_tile("m", origin, extents)
            out[pattern][name] = result.effective_bandwidth
    return out


def micro_write_bandwidths(n: int = 4096, elem: int = 8,
                           profile: DeviceProfile = PAPER_PROTOTYPE,
                           ) -> Dict[str, float]:
    """Fig. 9(d): whole-matrix write bandwidth per system."""
    out = {}
    for name, factory in (("baseline", BaselineSystem),
                          ("software", SoftwareNdsSystem),
                          ("hardware", HardwareNdsSystem)):
        kwargs = {} if factory is BaselineSystem else \
            {"bb_override": MICRO_BB}
        system = factory(profile, **kwargs)
        out[name] = system.ingest("m", (n, n), elem).effective_bandwidth
    return out


def fig3_series(dims: Sequence[int] = (32, 64, 128, 256, 512, 1024, 2048,
                                       4096, 8192, 16384),
                ) -> Dict[str, Dict[int, float]]:
    """Fig. 3: the five component rate/bandwidth series."""
    sizes = [d * d * 4 for d in dims]
    internal = PAPER_PROTOTYPE.internal_read_bandwidth
    return {
        "cuda": {d: RTX2080.processing_rate(d, use_tensor_cores=False)
                 for d in dims},
        "tensor": {d: RTX2080.processing_rate(d, use_tensor_cores=True)
                   for d in dims},
        "nvmeof": dict(zip(dims, [r for _s, r in saturation_curve(
            PAPER_PROTOTYPE.link_bandwidth,
            PAPER_PROTOTYPE.link_command_overhead, sizes)])),
        "internal_32ch": {
            d: min(internal, size / (PAPER_PROTOTYPE.timing.t_read
                                     + size / internal))
            for d, size in zip(dims, sizes)},
        "consumer_8ch": dict(zip(dims, [r for _s, r in saturation_curve(
            CONSUMER_SSD.link_bandwidth,
            CONSUMER_SSD.link_command_overhead, sizes)])),
    }


def endtoend_sweep(workload_names: Optional[Sequence[str]] = None,
                   profile: DeviceProfile = PAPER_PROTOTYPE,
                   ) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Fig. 10: per workload and system, (speedup, kernel idle seconds).

    ``workload_names`` restricts the sweep (None = all ten).
    """
    out: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for workload in all_workloads():
        if workload_names and workload.name not in workload_names:
            continue
        results = {}
        for factory in (BaselineSystem, SoftwareNdsSystem, OracleSystem,
                        HardwareNdsSystem):
            system = factory(profile)
            results[system.name] = run_workload(workload, system)
        base = results["baseline"]
        out[workload.name] = {
            name: (speedup(base, result), result.kernel_idle)
            for name, result in results.items()}
    return out


def overhead_latencies(n: int = 4096, elem: int = 8,
                       profile: DeviceProfile = PAPER_PROTOTYPE,
                       ) -> Dict[str, float]:
    """§7.3: worst-case single-page request latency per system, plus
    the STL space overhead fraction."""
    systems = _micro_systems(n, elem, profile)
    latencies = {}
    for name, system in systems.items():
        system.reset_time()
        result = system.read_tile("m", (0, 0), (1, 512))
        latencies[name] = result.elapsed
    hardware = systems["hardware"]
    latencies["space_overhead"] = (
        hardware.stl.lookup_structure_bytes() / (n * n * elem))
    return latencies
