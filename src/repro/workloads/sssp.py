"""Bellman-Ford single-source shortest paths (Table 1: graph traversal).

Shares its adjacency dataset with BFS (§6.2: "3 pairs of applications
shared their inputs") but relaxes edges in narrower segments — the
paper's 65536×4096 data with per-segment kernel passes. The segment
fetches cross the row-major layout in smaller pieces, so SSSP sees more
NDS benefit than BFS.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import weighted_adjacency

__all__ = ["SsspWorkload"]


class SsspWorkload(Workload):
    name = "SSSP"
    category = "Graph Traversal"
    data_dim_label = "2D"
    kernel_dim_label = "1D"

    def __init__(self, nodes: int = 4096, segment: int = 512,
                 max_tiles: int = 64) -> None:
        if nodes % segment != 0:
            raise ValueError("segment must divide nodes")
        self.nodes = nodes
        self.segment = segment
        self.max_tiles = max_tiles

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset("graph", (self.nodes, self.nodes), 4)]

    def tile_plan(self) -> List[TileFetch]:
        """Square edge blocks: the parallel Bellman-Ford implementation
        relaxes (source-block × destination-block) edge tiles, so unlike
        BFS its fetches cross the row-major adjacency layout."""
        plan: List[TileFetch] = []
        segments = self.nodes // self.segment
        for src in range(segments):
            for dst in range(segments):
                plan.append(TileFetch("graph",
                                      (src * self.segment,
                                       dst * self.segment),
                                      (self.segment, self.segment)))
                if len(plan) >= self.max_tiles:
                    return plan
        return plan

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        return kernels.traversal_pass(self.segment, self.segment,
                                      element_size=4)

    def shared_input_group(self) -> str:
        return "graph-adjacency"

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {"graph": weighted_adjacency(
            self.nodes, self.nodes * 8, seed=int(rng.integers(2**31)))}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """Bellman-Ford distances from node 0 (inf = unreachable)."""
        weights = inputs["graph"].astype(np.float64)
        nodes = weights.shape[0]
        dist = np.full(nodes, np.inf)
        dist[0] = 0.0
        has_edge = weights > 0
        for _ in range(nodes - 1):
            candidate = np.where(has_edge, dist[:, None] + weights, np.inf)
            relaxed = np.minimum(dist, candidate.min(axis=0))
            if np.array_equal(relaxed, dist):
                break
            dist = relaxed
        return dist
