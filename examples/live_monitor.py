#!/usr/bin/env python3
"""Live monitor walkthrough: burn-rate alerts and automated diagnosis.

A bursty MMPP embedding-serving stream is pushed past the knee of a
3-device software-NDS pool fronted by a small write-back DRAM tier,
and one pool member is killed mid-run (parity rebuild covers it). A
windowed :class:`~repro.obs.monitor.Monitor` rides along and, because
every hook is an append-only observation, the timed results are
bit-identical to an unmonitored run.

Three acts, all deterministic:

1. **Timeline** — the monitor's windowed series (offered/goodput,
   latency p99, backlog, cache dirty bytes, per-device busy) rendered
   as sparkline rows, with the SLO burn-rate row on the bottom.
2. **Alerts and diagnosis** — the multi-window burn-rate rules fire on
   the overload; each alert's window span is diffed against the
   preceding healthy baseline to name the dominant layer, device and
   stream.
3. **Replay** — the annotated Chrome trace (alert instants included)
   is re-fed through :meth:`Monitor.from_trace` to show the offline
   path reproduces the same alerts.

Run:  python examples/live_monitor.py [--out-dir DIR] [--seed N]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.loadline_sweep import arrival_process, default_workload
from repro.cache.config import CacheConfig
from repro.faults.model import FaultConfig
from repro.faults.plan import FaultPlan
from repro.nvm.profiles import TINY_TEST
from repro.obs.monitor import Monitor, format_monitor, monitor_json
from repro.obs.slo import SloPolicy
from repro.runtime.trace import TraceRecorder
from repro.systems import SoftwareNdsSystem
from repro.traffic.injector import OpenLoopInjector, TrafficStream

HORIZON = 0.08
RATE = 6000.0


def build_system() -> SoftwareNdsSystem:
    return SoftwareNdsSystem(
        TINY_TEST, devices=3,
        cache=CacheConfig(capacity_bytes=50 * 1024, write_back=True),
        faults=FaultConfig(parity=True,
                           plan=FaultPlan().kill_device(1, at=HORIZON / 2)))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--seed", type=int, default=97,
                        help="traffic seed (default 97)")
    args = parser.parse_args()

    system = build_system()
    workload = default_workload(seed=args.seed)
    for ds in workload.datasets():
        system.ingest(ds.name, ds.dims, ds.element_size)
    system.reset_time()
    system._reset_runtime()

    policy = SloPolicy(latency_target=500e-6)
    monitor = Monitor(slo=policy, horizon=HORIZON)
    trace = TraceRecorder()
    stream = TrafficStream("serve",
                           arrival_process("mmpp", RATE, args.seed),
                           workload.request_factory(),
                           admission_queue=64)
    injector = OpenLoopInjector(system, [stream], horizon=HORIZON,
                                trace=trace, marks=monitor.windows,
                                monitor=monitor)
    injector.run()

    print("== acts 1+2: live timeline, alerts, diagnosis ==")
    payload = monitor.report(trace=trace)
    print(format_monitor(payload))

    print("\n== act 3: replay the annotated trace ==")
    args.out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = args.out_dir / "live_monitor_trace.json"
    trace.save(trace_path)
    replayed = Monitor.from_trace(TraceRecorder.load(trace_path),
                                  windows=monitor.windows, slo=policy,
                                  horizon=HORIZON)
    replay_alerts = replayed.report()["slo"]["alerts"]
    live_alerts = payload["slo"]["alerts"]
    print(f"live alerts: {len(live_alerts)}, "
          f"replayed alerts: {len(replay_alerts)}")
    for live, replay in zip(live_alerts, replay_alerts):
        match = (live["rule"] == replay["rule"]
                 and live["window"] == replay["window"])
        print(f"  [{live['rule']}] window {live['window']} "
              f"{'matches' if match else 'DIFFERS'} on replay")

    out = args.out_dir / "live_monitor.json"
    out.write_text(monitor_json(payload))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
