"""The NDS-compliant SSD controller pipeline (§5.3.2, Fig. 8).

The prototype controller runs STL firmware on ARM A72 cores, one
pipeline element per core: PCIe/NVMe command handler, space
translator/manager, space allocator (+GC), data assembler, and channel
handlers (the channel handlers are the flash-array model itself).
Pipeline elements communicate through message queues; we model each
element as an FCFS timeline with calibrated per-unit service times.

Calibration anchor (§7.3): a worst-case single-page request pays ~17 µs
of extra latency in hardware NDS — command handling + a full B-tree
walk + assembly of one page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.resources import Timeline
from repro.sim.stats import StatSet

__all__ = ["ControllerTiming", "NdsController"]


@dataclass(frozen=True)
class ControllerTiming:
    """Service times of the controller pipeline elements (seconds).

    ARM A72 firmware cores are markedly slower than the host CPU
    (§7.2: "the NDS controller is less powerful than the host
    processor").
    """

    command_handle: float = 7e-6      # PCIe/NVMe command handler, per command
    translate_per_node: float = 2e-6  # space translator, per B-tree node
    translate_per_block: float = 0.3e-6   # per building block emitted
    #: space allocator firmware, per unit on the write path: placement
    #: rules, map update and OOB reverse-table write on the A72 cores.
    #: Calibrated so the hardware NDS write penalty matches Fig. 9(d)'s
    #: ~17 % loss against the baseline.
    allocate_per_unit: float = 16e-6
    #: data assembler: DMA descriptor setup per page + device DRAM copy —
    #: reads are gather DMA; writes additionally pay the allocator above
    assemble_per_page: float = 0.3e-6
    assemble_bandwidth: float = 12.8e9

    def worst_case_read_latency(self, tree_levels: int) -> float:
        """§7.3 worst case: one page, full tree walk, one assembly."""
        return (self.command_handle
                + self.translate_per_node * tree_levels
                + self.translate_per_block
                + self.assemble_per_page)


class NdsController:
    """Pipelined controller: each element is one FCFS service line."""

    def __init__(self, timing: ControllerTiming = ControllerTiming()) -> None:
        self.timing = timing
        self.command_line = Timeline("ctrl_cmd")
        self.translate_line = Timeline("ctrl_translate")
        self.allocate_line = Timeline("ctrl_alloc")
        self.assemble_line = Timeline("ctrl_assemble")
        self.stats = StatSet()
        #: optional per-layer span recorder (set via the owning
        #: system's ``set_trace``)
        self.trace = None
        #: optional metrics registry (set via ``set_metrics``)
        self.metrics = None

    def _span(self, resource: str, start: float, end: float,
              name: str, **args) -> None:
        if self.trace is not None:
            self.trace.span(resource, start, end, name=name, **args)

    def _observe(self, metric: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.observe(metric, seconds)

    # ------------------------------------------------------------------
    def handle_command(self, earliest_start: float) -> float:
        start, end = self.command_line.reserve(earliest_start,
                                               self.timing.command_handle)
        self.stats.count("ctrl_commands")
        self._span("ctrl_cmd", start, end, "nvme_command")
        self._observe("ctrl.command", end - start)
        return end

    def translate(self, earliest_start: float, nodes_visited: int,
                  blocks: int) -> float:
        duration = (self.timing.translate_per_node * nodes_visited
                    + self.timing.translate_per_block * blocks)
        start, end = self.translate_line.reserve(earliest_start, duration)
        self.stats.count("ctrl_translations")
        self._span("ctrl_translate", start, end, "stl_translate")
        self._observe("ctrl.translate", end - start)
        return end

    def allocate(self, earliest_start: float, units: int) -> float:
        duration = self.timing.allocate_per_unit * units
        start, end = self.allocate_line.reserve(earliest_start, duration)
        self.stats.count("ctrl_allocations", units)
        self._span("ctrl_alloc", start, end, "stl_allocate")
        self._observe("ctrl.allocate", end - start)
        return end

    def assemble(self, earliest_start: float, num_bytes: int,
                 pages: int) -> float:
        """Scatter/gather ``num_bytes`` through device DRAM in
        ``pages`` page-granular moves."""
        duration = (self.timing.assemble_per_page * pages
                    + num_bytes / self.timing.assemble_bandwidth)
        start, end = self.assemble_line.reserve(earliest_start, duration)
        self.stats.count("ctrl_assembled_bytes", num_bytes)
        self._span("ctrl_assemble", start, end, "assemble", bytes=num_bytes)
        if self.metrics is not None:
            self.metrics.observe("ctrl.assemble", end - start)
            self.metrics.count("ctrl.assemble.bytes", num_bytes)
        return end

    def reset_time(self) -> None:
        for line in (self.command_line, self.translate_line,
                     self.allocate_line, self.assemble_line):
            line.reset()
