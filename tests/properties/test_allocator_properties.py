"""Property-based tests on allocation invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import NdsAllocator
from repro.core.btree import BlockEntry
from repro.nvm import Geometry


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_no_physical_unit_is_ever_double_allocated(data):
    """Across any interleaving of allocations for multiple blocks,
    every granted physical page is globally unique."""
    geometry = Geometry(channels=data.draw(st.integers(1, 4)),
                        banks_per_channel=data.draw(st.integers(1, 3)),
                        blocks_per_bank=4, pages_per_block=4,
                        page_size=64)
    allocator = NdsAllocator(geometry, seed=data.draw(st.integers(0, 99)))
    entries = [BlockEntry(coord=(i,), pages=[None] * 64) for i in range(3)]
    total = geometry.total_pages
    count = data.draw(st.integers(1, min(48, total)))
    granted = set()
    for i in range(count):
        entry = entries[data.draw(st.integers(0, 2))]
        position = sum(1 for p in entry.pages if p is not None)
        ppa = allocator.allocate(entry, position)
        key = (ppa.channel, ppa.bank, ppa.block, ppa.page)
        assert key not in granted
        granted.add(key)
    assert allocator.total_free_pages() == total - count


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), units=st.integers(1, 32))
def test_block_channel_spread_is_maximal(seed, units):
    """A block's first min(units, channels) units land on distinct
    channels — the Eq. 1 guarantee that drives full-bandwidth fetches."""
    geometry = Geometry(channels=8, banks_per_channel=4,
                        blocks_per_bank=8, pages_per_block=8, page_size=64)
    allocator = NdsAllocator(geometry, seed=seed)
    entry = BlockEntry(coord=(0,), pages=[None] * 64)
    ppas = [allocator.allocate(entry, i) for i in range(units)]
    channels = {p.channel for p in ppas}
    assert len(channels) == min(units, geometry.channels)
