"""Table formatting helpers shared by the benchmark harnesses.

Each benchmark prints the same rows/series the paper's figure or table
reports, plus a paper-vs-measured comparison where the paper states a
number.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_bandwidth", "format_ratio",
           "comparison_row"]


def format_bandwidth(bytes_per_second: float) -> str:
    if bytes_per_second >= 1e9:
        return f"{bytes_per_second / 1e9:.2f} GB/s"
    if bytes_per_second >= 1e6:
        return f"{bytes_per_second / 1e6:.1f} MB/s"
    return f"{bytes_per_second / 1e3:.1f} KB/s"


def format_ratio(value: float) -> str:
    return f"{value:.2f}x"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def comparison_row(label: str, paper_value: float, measured: float,
                   unit: str = "") -> List[str]:
    """One 'paper vs measured' table row with the relative delta."""
    delta = "n/a"
    if paper_value:
        delta = f"{(measured - paper_value) / paper_value * 100.0:+.0f}%"
    suffix = f" {unit}" if unit else ""
    return [label, f"{paper_value:g}{suffix}", f"{measured:.3g}{suffix}", delta]
