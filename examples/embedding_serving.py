#!/usr/bin/env python3
"""SSD-backed embedding serving under open-loop load.

An embedding table lives on flash as a 2-D space (rows × dim), and an
open-loop traffic source fires batched sparse lookups (plus periodic
optimizer writes) at it with zipfian row popularity. The offered rate
ramps geometrically until each system saturates — goodput flattens and
the admission queue starts shedding — which draws the classic load
line: offered load vs goodput and tail latency.

Two acts, both deterministic:

1. **Single device** — the load line for all four systems on one
   simulated SSD. A single embedding row is already contiguous in LBA
   space, so this access pattern is the baseline's best case (no
   fan-out to amortize) and the per-request host translation cost of
   the software STL is visible as an earlier knee — the honest
   flip-side of the tile workloads where NDS wins.
2. **4-device pool** — the same ramp over a pool behind the cluster
   translation layer; declustered rows put independent lookups on
   independent devices and push every system's knee out 2–4×.

The JSON written to ``--out-dir`` is byte-stable (sorted keys, fixed
separators): the CI ``loadtest-determinism`` job runs this twice and
diffs the output.

Run:  python examples/embedding_serving.py [--out-dir DIR] [--seed N]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis.loadline_sweep import (format_loadline, loadline_sweep,
                                           sweep_json)
from repro.workloads.embedding import EmbeddingWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--seed", type=int, default=97,
                        help="traffic seed (default 97)")
    args = parser.parse_args()

    workload = EmbeddingWorkload(num_embeddings=256, embedding_dim=16,
                                 num_tables=1, batch_size=2,
                                 pooling_factor=2, num_batches=4,
                                 alpha=1.05, weights_precision=4,
                                 update_fraction=0.25)

    print("== act 1: load line, single device ==")
    single = loadline_sweep(device_counts=(1,), workload=workload,
                            seed=args.seed)
    print(format_loadline(single))

    print("\n== act 2: load line, 4-device pool ==")
    pooled = loadline_sweep(device_counts=(4,), workload=workload,
                            seed=args.seed)
    print(format_loadline(pooled))

    knees = {}
    for sweep in (single, pooled):
        for cell in sweep["cells"]:
            if cell["saturated"]:
                key = f"{cell['system']}@{cell['devices']}dev"
                knees.setdefault(key, round(cell["goodput_rps"]))
    print("\nsaturation goodput (req/s):")
    for key in sorted(knees):
        print(f"  {key:28s} {knees[key]}")

    args.out_dir.mkdir(parents=True, exist_ok=True)
    out = args.out_dir / "embedding_serving.json"
    payload = {"single_device": single, "pooled": pooled}
    out.write_text(json.dumps(payload, sort_keys=True, indent=2,
                              separators=(",", ": ")) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
