"""Load-line sweep: offered load vs goodput and tail latency.

The open-loop analogue of :mod:`~repro.analysis.scaleout_sweep`: for
each (system, device count) the driver ramps the offered arrival rate
of an embedding-serving tenant geometrically until the system
saturates, and records per point

* **goodput** (completed requests/second and payload bytes/second —
  the quantity that flattens at capacity while offered load keeps
  climbing),
* **shed rate** (admission-queue backpressure past saturation),
* **latency tails** p50/p99/p999/max of request latency, split into
  scheduler queue-wait vs service, plus the per-layer attribution of
  the service interval from the existing
  :func:`~repro.obs.critical_path.critical_path` spine (which layer —
  STL translation, FTL map, channel, bank, link, host — the time went
  to; map/translation stalls are a first-class tail contributor).

Saturation is declared when goodput improves by less than
``saturation_gain`` over the previous point, or more than half the
offered requests get shed; the saturating point is kept so the load
line always shows the knee.

Everything is seeded and the JSON rendering is byte-stable (sorted
keys, fixed separators); the ``loadtest-determinism`` CI job runs the
driver twice and diffs the files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.cache.config import CacheConfig
from repro.nvm.profiles import TINY_TEST, DeviceProfile
from repro.obs.critical_path import critical_path
from repro.obs.monitor import Monitor
from repro.obs.slo import SloPolicy
from repro.runtime.trace import TraceRecorder
from repro.traffic.arrivals import (ArrivalProcess, DiurnalProcess,
                                    MmppProcess, PoissonProcess)
from repro.traffic.injector import OpenLoopInjector, TrafficStream
from repro.workloads.embedding import EmbeddingWorkload

__all__ = ["LOADLINE_SYSTEMS", "default_workload", "arrival_process",
           "run_load_point", "loadline_sweep", "sweep_json",
           "format_loadline"]

LOADLINE_SYSTEMS = ("baseline", "software-nds", "hardware-nds",
                    "software-oracle")

_ARRIVALS = ("poisson", "mmpp", "diurnal")


def default_workload(seed: int = 0xE3B) -> EmbeddingWorkload:
    """A TINY_TEST-sized embedding table: 256 users × 16 floats."""
    return EmbeddingWorkload(num_embeddings=256, embedding_dim=16,
                             num_tables=1, batch_size=2, pooling_factor=2,
                             num_batches=4, alpha=1.05,
                             weights_precision=4, update_fraction=0.25,
                             seed=seed)


def arrival_process(kind: str, rate: float, seed: int) -> ArrivalProcess:
    """Build one of the three arrival shapes at a mean rate."""
    if kind == "poisson":
        return PoissonProcess(rate, seed=seed)
    if kind == "mmpp":
        # bursty: 4:1 peak-to-trough, short high-rate dwells
        return MmppProcess((0.4 * rate, 1.6 * rate), (0.01, 0.01),
                           seed=seed)
    if kind == "diurnal":
        return DiurnalProcess(rate, period=0.02, amplitude=0.6, seed=seed)
    raise ValueError(f"unknown arrival kind {kind!r}; pick from {_ARRIVALS}")


def _merged_cell(result, scheduler) -> Dict[str, object]:
    """Aggregate a multi-tenant run into one report-shaped dict.

    Counters sum, rates recompute over the merged horizon/makespan,
    and percentiles are taken over the *merged* latency (and scheduler
    queue-wait/service) populations — not averaged per-stream tails."""
    from repro.runtime.scheduler import percentile

    reports = [result.streams[name] for name in sorted(result.streams)]
    offered = sum(r.offered for r in reports)
    shed_throttled = sum(r.shed_throttled for r in reports)
    shed_queue_full = sum(r.shed_queue_full for r in reports)
    useful = sum(r.useful_bytes for r in reports)
    span = max(result.horizon, result.makespan)
    latencies = sorted(lat for r in reports for lat in r.latencies)
    waits: List[float] = []
    services: List[float] = []
    for name in sorted(result.streams):
        handle = scheduler.streams.get(name)
        if handle is not None:
            waits.extend(handle.queue_waits)
            services.extend(handle.service_times)
    waits.sort()
    services.sort()
    return {
        "offered": offered,
        "admitted": result.admitted,
        "shed_throttled": shed_throttled,
        "shed_queue_full": shed_queue_full,
        "shed_rate": ((shed_throttled + shed_queue_full) / offered
                      if offered else 0.0),
        "failed": sum(r.failed for r in reports),
        "completed": result.completed,
        "ops": sum(r.ops for r in reports),
        "useful_bytes": useful,
        "makespan": result.makespan,
        "offered_rate": offered / result.horizon,
        "goodput_rps": result.goodput_rps,
        "goodput_bytes_per_second": result.goodput_bytes_per_second,
        "mean_latency": (sum(latencies) / len(latencies)
                         if latencies else 0.0),
        "p50_latency": percentile(latencies, 0.50),
        "p95_latency": percentile(latencies, 0.95),
        "p99_latency": percentile(latencies, 0.99),
        "p999_latency": percentile(latencies, 0.999),
        "max_latency": latencies[-1] if latencies else 0.0,
        "mean_queue_wait": sum(waits) / len(waits) if waits else 0.0,
        "p99_queue_wait": percentile(waits, 0.99),
        "mean_service": (sum(services) / len(services)
                         if services else 0.0),
        "p99_service": percentile(services, 0.99),
    }


def run_load_point(system_name: str, offered_rate: float,
                   devices: int = 1,
                   profile: DeviceProfile = TINY_TEST,
                   workload: Optional[EmbeddingWorkload] = None,
                   horizon: float = 0.05,
                   admission_queue: Optional[int] = 64,
                   token_rate: Optional[float] = None,
                   arrival: str = "poisson",
                   seed: int = 97,
                   tenants: int = 1,
                   attribute_layers: bool = True,
                   cache: Optional[CacheConfig] = None,
                   monitor: Optional[SloPolicy] = None) -> Dict[str, object]:
    """One point of the load line: inject ``offered_rate`` requests/s
    of embedding-serving traffic into ``system_name`` over a
    ``devices``-member pool and measure goodput, shed rate and tails.

    ``monitor=SloPolicy(...)`` attaches a fresh windowed
    :class:`~repro.obs.monitor.Monitor` to the run; the cell then
    carries the full monitor report (windowed series, SLO burn rates,
    alerts and — when layer attribution is on — per-window attribution,
    device series and alert diagnoses) under ``"monitor"``.

    ``cache=CacheConfig(...)`` puts the host DRAM tier in front of the
    device path; the cell then carries the tier's hit/miss report under
    ``"cache"`` and per-stream hit rates under ``"stream_cache"``.

    ``tenants > 1`` splits the offered rate across that many co-running
    traffic streams (``serve0``..) with per-tenant arrival seeds and
    salted popularity (tenants do not share hot rows) — the open-loop
    analogue of a pool-aware :func:`co_run_workloads` co-run. The cell
    then reports the merged aggregate plus per-tenant sub-reports under
    ``"streams"``."""
    from repro.obs.report import SYSTEM_FACTORIES

    factory = SYSTEM_FACTORIES.get(system_name)
    if factory is None:
        raise ValueError(f"unknown system {system_name!r}; pick from "
                         f"{sorted(SYSTEM_FACTORIES)}")
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    if workload is None:
        workload = default_workload()
    kwargs = {} if cache is None else {"cache": cache}
    system = (factory(profile, **kwargs) if devices <= 1
              else factory(profile, devices=devices, **kwargs))
    if system_name == "software-oracle":
        # the oracle stores one tile-major copy per fetch shape
        for ds in workload.datasets():
            system.ingest(ds.name, ds.dims, ds.element_size,
                          tile=(1, workload.embedding_dim))
    else:
        for ds in workload.datasets():
            system.ingest(ds.name, ds.dims, ds.element_size)
    system.reset_time()
    system._reset_runtime()

    trace = TraceRecorder() if attribute_layers else None
    if tenants == 1:
        streams = [TrafficStream(
            "serve", arrival_process(arrival, offered_rate, seed),
            workload.request_factory(),
            token_rate=token_rate, admission_queue=admission_queue)]
    else:
        streams = [TrafficStream(
            f"serve{t}",
            arrival_process(arrival, offered_rate / tenants,
                            seed + 7919 * t),
            workload.request_factory(salt=t),
            token_rate=token_rate, admission_queue=admission_queue)
            for t in range(tenants)]
    mon = Monitor(slo=monitor, horizon=horizon) if monitor is not None \
        else None
    injector = OpenLoopInjector(system, streams, horizon=horizon,
                                trace=trace, marks=8 if trace else 0,
                                monitor=mon)
    result = injector.run()

    cell: Dict[str, object] = {
        "system": system_name,
        "devices": devices,
        "arrival": arrival,
        "offered_rate": offered_rate,
        "horizon": horizon,
    }
    if tenants == 1:
        cell.update(result.streams["serve"].to_dict())
    else:
        cell["tenants"] = tenants
        cell.update(_merged_cell(result, system.scheduler))
        cell["streams"] = {name: report.to_dict()
                           for name, report in sorted(result.streams.items())}
    if trace is not None:
        analysis = critical_path(trace)
        totals = analysis.layer_totals()
        shares = analysis.layer_shares()
        cell["layers"] = {layer: {"seconds": totals[layer],
                                  "share": shares.get(layer, 0.0)}
                          for layer in sorted(totals)}
    if cache is not None:
        cell["cache"] = system.cache_report()
        stream_cache = system.scheduler.stream_cache_report()
        if stream_cache:
            cell["stream_cache"] = stream_cache
    if mon is not None:
        cell["monitor"] = mon.report(trace=trace)
    return cell


def loadline_sweep(systems: Sequence[str] = LOADLINE_SYSTEMS,
                   device_counts: Sequence[int] = (1,),
                   base_rate: float = 400.0,
                   growth: float = 2.0,
                   max_points: int = 8,
                   saturation_gain: float = 0.05,
                   profile: DeviceProfile = TINY_TEST,
                   workload: Optional[EmbeddingWorkload] = None,
                   horizon: float = 0.05,
                   admission_queue: Optional[int] = 64,
                   arrival: str = "poisson",
                   seed: int = 97,
                   tenants: int = 1,
                   attribute_layers: bool = True,
                   cache: Optional[CacheConfig] = None,
                   monitor: Optional[SloPolicy] = None) -> Dict[str, object]:
    """Ramp every (system, devices) series to saturation.

    The offered rate starts at ``base_rate`` (scaled by the device
    count, since an N-member pool saturates ~N× later) and multiplies
    by ``growth`` per point; a series stops early once goodput gains
    less than ``saturation_gain`` (fractional) over the previous point
    or the shed rate exceeds 50 % — the saturating point is included
    and flagged ``"saturated": true``.
    """
    if growth <= 1.0:
        raise ValueError("growth must be > 1 so the ramp terminates")
    if workload is None:
        workload = default_workload()
    sweep: Dict[str, object] = {
        "profile": profile.name,
        "arrival": arrival,
        "base_rate": base_rate,
        "growth": growth,
        "horizon": horizon,
        "admission_queue": admission_queue,
        "workload": {
            "num_embeddings": workload.num_embeddings,
            "embedding_dim": workload.embedding_dim,
            "num_tables": workload.num_tables,
            "pooling_factor": workload.pooling_factor,
            "update_fraction": workload.update_fraction,
            "alpha": workload.alpha,
        },
        "device_counts": [int(n) for n in device_counts],
        "systems": list(systems),
        "cells": [],
    }
    if tenants > 1:
        sweep["tenants"] = tenants
    if cache is not None:
        sweep["cache"] = {
            "capacity_bytes": cache.capacity_bytes,
            "policy": cache.policy,
            "write_back": cache.write_back,
            "prefetch": cache.prefetch,
        }
    if monitor is not None:
        sweep["slo"] = monitor.to_dict()
    for system_name in systems:
        for devices in device_counts:
            previous_goodput: Optional[float] = None
            rate = base_rate * max(1, int(devices))
            for _point in range(max_points):
                cell = run_load_point(
                    system_name, rate, devices=int(devices),
                    profile=profile, workload=workload, horizon=horizon,
                    admission_queue=admission_queue, arrival=arrival,
                    seed=seed, tenants=tenants,
                    attribute_layers=attribute_layers, cache=cache,
                    monitor=monitor)
                goodput = cell["goodput_rps"]
                saturated = False
                if previous_goodput is not None and previous_goodput > 0:
                    gain = goodput / previous_goodput - 1.0
                    saturated = gain < saturation_gain
                if cell["shed_rate"] > 0.5:
                    saturated = True
                cell["saturated"] = saturated
                sweep["cells"].append(cell)
                if saturated:
                    break
                previous_goodput = goodput
                rate *= growth
    return sweep


def sweep_json(sweep: Dict[str, object]) -> str:
    """Byte-stable JSON rendering (sorted keys, fixed separators)."""
    return json.dumps(sweep, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def format_loadline(sweep: Dict[str, object]) -> str:
    """Human-readable load-line table."""
    from repro.analysis.report import format_table

    with_cache = any("cache" in cell for cell in sweep["cells"])
    rows = []
    for cell in sweep["cells"]:
        row = [
            cell["system"], str(cell["devices"]),
            f"{cell['offered_rate']:.0f}",
            f"{cell['goodput_rps']:.0f}",
            f"{cell['shed_rate']:.1%}",
            f"{cell['p50_latency'] * 1e6:.0f}",
            f"{cell['p99_latency'] * 1e6:.0f}",
            f"{cell['p999_latency'] * 1e6:.0f}",
        ]
        if with_cache:
            report = cell.get("cache")
            row.append(f"{report['hit_rate']:.1%}" if report else "")
        row.append("knee" if cell["saturated"] else "")
        rows.append(row)
    header = ["system", "dev", "offered (req/s)", "goodput (req/s)",
              "shed", "p50 (us)", "p99 (us)", "p999 (us)"]
    if with_cache:
        header.append("hit")
    header.append("")
    return format_table(
        header, rows,
        title=f"embedding load line — {sweep['arrival']} arrivals, "
              f"profile {sweep['profile']}")
