"""Tensor-Times-Vector (Table 1: tensor algebra, shares input with TC).

Contracts a 3-D tensor with a vector along the innermost mode:
``Y[i, j] = Σ_k X[i, j, k] · v[k]``. Fetches are (t × t × D) bricks —
exactly the access pattern where the row-major serialization of a 3-D
tensor degenerates into thousands of short runs on the baseline.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import random_tensor

__all__ = ["TtvWorkload"]


class TtvWorkload(Workload):
    name = "TTV"
    category = "Tensor Algebra"
    data_dim_label = "3D"
    kernel_dim_label = "2D/1D"

    def __init__(self, rows: int = 128, cols: int = 128, depth: int = 2048,
                 tile_rows: int = 32, tile_cols: int = 32,
                 tile_depth: int = 1024, max_tiles: int = 64) -> None:
        if rows % tile_rows or cols % tile_cols or depth % tile_depth:
            raise ValueError("tile dims must divide tensor dims")
        self.dims = (rows, cols, depth)
        self.tile = (tile_rows, tile_cols, tile_depth)
        self.max_tiles = max_tiles

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset("tensor", self.dims, 4)]

    def tile_plan(self) -> List[TileFetch]:
        plan: List[TileFetch] = []
        grid = tuple(d // t for d, t in zip(self.dims, self.tile))
        for i in range(grid[0]):
            for j in range(grid[1]):
                for k in range(grid[2]):
                    plan.append(TileFetch(
                        "tensor",
                        (i * self.tile[0], j * self.tile[1],
                         k * self.tile[2]),
                        self.tile))
                    if len(plan) >= self.max_tiles:
                        return plan
        return plan

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        return kernels.tensor_times_vector(self.tile[0] * self.tile[1],
                                           self.tile[2], element_size=4)

    def shared_input_group(self) -> str:
        return "dense-tensor"

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {"tensor": random_tensor(*self.dims,
                                        seed=int(rng.integers(2**31)))}

    def vector(self) -> np.ndarray:
        """The (small, memory-resident) contraction vector."""
        return np.linspace(0.0, 1.0, self.dims[2])

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        return np.einsum("ijk,k->ij", inputs["tensor"].astype(np.float64),
                         self.vector())
