"""Structural tests for every Table 1 workload definition."""

import numpy as np
import pytest

from repro.workloads import WORKLOAD_FACTORIES, all_workloads
from repro.accelerator import KernelModel, RTX2080


@pytest.fixture(params=list(WORKLOAD_FACTORIES), ids=list(WORKLOAD_FACTORIES))
def workload(request):
    return WORKLOAD_FACTORIES[request.param]()


class TestTable1Inventory:
    def test_all_ten_present(self):
        assert list(WORKLOAD_FACTORIES) == [
            "BFS", "SSSP", "GEMM", "Hotspot", "KMeans", "KNN",
            "PageRank", "Conv2D", "TTV", "TC"]

    def test_categories_match_table1(self):
        categories = {w.name: w.category for w in all_workloads()}
        assert categories["BFS"] == "Graph Traversal"
        assert categories["GEMM"] == "Linear Algebra"
        assert categories["Hotspot"] == "Physics Simulation"
        assert categories["KMeans"] == "Data Mining"
        assert categories["Conv2D"] == "Image Processing"
        assert categories["TTV"] == "Tensor Algebra"

    def test_tensor_core_workloads(self):
        uses = {w.name: w.uses_tensor_cores for w in all_workloads()}
        assert uses["GEMM"] and uses["TC"]
        assert not uses["BFS"]

    def test_shared_input_pairs(self):
        """§6.2: BFS/SSSP, KMeans/KNN and TTV/TC share inputs."""
        groups = {w.name: w.shared_input_group() for w in all_workloads()}
        assert groups["BFS"] == groups["SSSP"] is not None
        assert groups["KMeans"] == groups["KNN"] is not None
        assert groups["TTV"] == groups["TC"] is not None
        assert groups["GEMM"] is None


class TestPlans:
    def test_plan_nonempty_and_within_bounds(self, workload):
        plan = workload.tile_plan()
        assert plan
        dims_by_name = {ds.name: ds.dims for ds in workload.datasets()}
        for fetch in plan:
            dims = dims_by_name[fetch.dataset]
            assert len(fetch.origin) == len(dims)
            for o, e, d in zip(fetch.origin, fetch.extents, dims):
                assert 0 <= o and o + e <= d and e >= 1

    def test_plan_respects_max_tiles(self, workload):
        assert len(workload.tile_plan()) <= workload.max_tiles

    def test_kernel_times_positive(self, workload):
        kernels = KernelModel(RTX2080)
        for fetch in workload.tile_plan()[:4]:
            assert workload.kernel_time(kernels, fetch) >= 0.0

    def test_tile_bytes(self, workload):
        fetch = workload.tile_plan()[0]
        expected = workload.dataset(fetch.dataset).element_size
        for extent in fetch.extents:
            expected *= extent
        assert workload.tile_bytes(fetch) == expected


class TestFunctionalKernels:
    """Reference kernels at miniature scale."""

    def test_bfs_levels(self, rng):
        from repro.workloads import BfsWorkload
        wl = BfsWorkload(nodes=32, batch_rows=8)
        levels = wl.reference(wl.generate(rng))
        assert levels[0] == 0
        assert (levels >= -1).all()
        # chain edge guarantees broad reachability
        assert (levels >= 0).sum() > 16

    def test_sssp_distances(self, rng):
        from repro.workloads import SsspWorkload
        wl = SsspWorkload(nodes=32, segment=8)
        dist = wl.reference(wl.generate(rng))
        assert dist[0] == 0.0
        finite = np.isfinite(dist)
        assert finite.sum() > 16

    def test_gemm_blocked_equals_reference(self, rng):
        from repro.workloads import GemmWorkload
        wl = GemmWorkload(n=64, tile=16)
        inputs = wl.generate(rng)
        expected = wl.reference(inputs)
        blocked = wl.blocked_multiply(inputs["A"], inputs["B"])
        assert np.allclose(blocked, expected)

    def test_hotspot_step(self, rng):
        from repro.workloads import HotspotWorkload
        wl = HotspotWorkload(n=32, tile_rows=8, tile_cols=16)
        out = wl.reference(wl.generate(rng))
        assert out.shape == (32, 32)
        assert np.isfinite(out).all()

    def test_kmeans_assignment(self, rng):
        from repro.workloads import KMeansWorkload
        wl = KMeansWorkload(points=64, attributes=16, clusters=4, stripe=8)
        assignment = wl.reference(wl.generate(rng))
        assert assignment.shape == (64,)
        assert set(np.unique(assignment)) <= set(range(4))

    def test_knn_neighbours(self, rng):
        from repro.workloads import KnnWorkload
        wl = KnnWorkload(points=64, attributes=16, neighbours=5,
                         batch_points=8)
        order = wl.reference(wl.generate(rng))
        assert order.shape == (5,)
        assert 0 not in order  # the query itself is excluded

    def test_pagerank_sums_to_one(self, rng):
        from repro.workloads import PageRankWorkload
        wl = PageRankWorkload(nodes=64, stripe=16)
        rank = wl.reference(wl.generate(rng))
        assert rank.sum() == pytest.approx(1.0, abs=1e-6)
        assert (rank > 0).all()

    def test_conv2d_preserves_constant(self):
        from repro.workloads import Conv2dWorkload
        wl = Conv2dWorkload(n=32, tile_rows=8, tile_cols=16)
        const = {"image": np.full((32, 32), 5.0, dtype=np.float32)}
        out = wl.reference(const)
        assert np.allclose(out, 5.0)

    def test_ttv_contraction(self, rng):
        from repro.workloads import TtvWorkload
        wl = TtvWorkload(rows=8, cols=8, depth=16,
                         tile_rows=4, tile_cols=4, tile_depth=8)
        inputs = wl.generate(rng)
        out = wl.reference(inputs)
        expected = np.einsum("ijk,k->ij",
                             inputs["tensor"].astype(np.float64),
                             wl.vector())
        assert np.allclose(out, expected)

    def test_tc_contraction_shape(self, rng):
        from repro.workloads import TcWorkload
        wl = TcWorkload(rows=8, cols=8, depth=16, tile_rows=4,
                        tile_cols=4, tile_depth=8, contract_dim=4)
        out = wl.reference(wl.generate(rng))
        assert out.shape == (8, 8, 4)
