"""Unit tests for the stateful fault injector."""

from __future__ import annotations

from repro.faults import FaultConfig, FaultInjector, FaultPlan


def _plan_config(plan: FaultPlan, **overrides) -> FaultConfig:
    return FaultConfig(plan=plan, **overrides)


class TestPlanApplication:
    def test_events_fire_when_time_passes(self):
        injector = FaultInjector(_plan_config(
            FaultPlan().kill_channel(1, at=1.0)))
        injector.advance(0.5)
        assert not injector.channel_dead(1)
        injector.advance(1.5)
        assert injector.channel_dead(1)
        assert injector.stats.counters["plan_channels_killed"] == 1

    def test_clock_is_monotone(self):
        """Once seen, an event stays applied even for later-issued ops
        carrying smaller timestamps."""
        injector = FaultInjector(_plan_config(
            FaultPlan().corrupt_page(0, 0, 0, 3, at=1.0)))
        injector.advance(2.0)
        assert (0, 0, 0, 3) in injector.corrupt_pages
        injector.advance(0.0)  # out-of-order issue time
        assert (0, 0, 0, 3) in injector.corrupt_pages

    def test_bad_block_fails_program_and_erase_but_not_read(self):
        injector = FaultInjector(_plan_config(
            FaultPlan().mark_block_bad(0, 1, 2, at=0.0)))
        injector.advance(0.0)
        assert injector.program_check(99, (0, 1, 2, 0)) == "bad_block"
        assert injector.erase_check((0, 1, 2)) == "bad_block"
        # already-programmed pages stay readable (grown-bad contract)
        assert not injector.read_plan(99, (0, 1, 2, 0), 0.0).uncorrectable


class TestSuppression:
    def test_suppress_disables_probabilistic_draws(self):
        injector = FaultInjector(FaultConfig(program_fail_base=1.0,
                                             erase_fail_base=1.0))
        assert injector.program_check(0, (0, 0, 0, 0)) == "wear"
        with injector.suppress():
            assert injector.program_check(0, (0, 0, 0, 0)) is None
            assert injector.erase_check((0, 0, 0)) is None
        assert injector.erase_check((0, 0, 0)) == "wear"

    def test_suppress_keeps_structural_failures(self):
        injector = FaultInjector(_plan_config(
            FaultPlan().kill_channel(2, at=0.0).mark_block_bad(0, 0, 5,
                                                               at=0.0)))
        injector.advance(0.0)
        with injector.suppress():
            assert injector.program_check(0, (2, 0, 0, 0)) == "channel_dead"
            assert injector.program_check(1, (0, 0, 5, 0)) == "bad_block"
            # scripted corruption reads clean inside recovery (the
            # reconstruction path must be able to read survivors)
            assert injector.read_plan(2, (1, 0, 0, 0), 0.0).retries == 0

    def test_suppress_nests(self):
        injector = FaultInjector(FaultConfig(program_fail_base=1.0))
        with injector.suppress():
            with injector.suppress():
                pass
            assert injector.suppressed
        assert not injector.suppressed


class TestWearAndRetention:
    def test_note_erase_counts_wear_and_clears_corruption(self):
        injector = FaultInjector(_plan_config(
            FaultPlan().corrupt_page(0, 0, 0, 2, at=0.0)))
        injector.advance(0.0)
        assert injector.read_plan(2, (0, 0, 0, 2), 0.0).uncorrectable
        injector.note_erase((0, 0, 0), base_idx=0, page_count=8,
                            end_time=1.0)
        assert injector.erase_count((0, 0, 0)) == 1
        assert not injector.read_plan(2, (0, 0, 0, 2), 1.0).uncorrectable

    def test_same_seed_same_outcomes(self):
        """Two injectors with the same config replay identical ladders."""
        config = FaultConfig(rber_base=6e-3)  # retry-heavy regime
        runs = []
        for _ in range(2):
            injector = FaultInjector(config)
            injector.note_program(0, 0.0)
            runs.append([injector.read_plan(0, (0, 0, 0, 0), 0.001).retries
                         for _ in range(32)])
        assert runs[0] == runs[1]
        assert any(runs[0])  # the regime actually retries

    def test_reprogram_changes_the_draw_sequence(self):
        config = FaultConfig(rber_base=6e-3)
        injector = FaultInjector(config)
        injector.note_program(0, 0.0)
        first = [injector.read_plan(0, (0, 0, 0, 0), 0.001).retries
                 for _ in range(16)]
        injector.note_program(0, 0.002)  # new program epoch
        second = [injector.read_plan(0, (0, 0, 0, 0), 0.003).retries
                  for _ in range(16)]
        assert first != second
