"""Breadth-First Search (Table 1: graph traversal, 2-D data, 1-D kernel).

The compute kernel expands one frontier row at a time: each pipelined
fetch is a full adjacency row (the paper's 65536-element kernel
sub-dimension). Because rows are exactly the baseline's serialized
layout, BFS is the workload where software NDS gains ~nothing (§7.2) —
an important negative control.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import random_adjacency

__all__ = ["BfsWorkload"]


class BfsWorkload(Workload):
    name = "BFS"
    category = "Graph Traversal"
    data_dim_label = "2D"
    kernel_dim_label = "1D"

    def __init__(self, nodes: int = 4096, batch_rows: int = 32,
                 max_tiles: int = 64, edges_per_node: int = 8) -> None:
        if nodes % batch_rows != 0:
            raise ValueError("batch_rows must divide nodes")
        self.nodes = nodes
        self.batch_rows = batch_rows
        self.max_tiles = max_tiles
        self.edges_per_node = edges_per_node

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset("graph", (self.nodes, self.nodes), 4)]

    def tile_plan(self) -> List[TileFetch]:
        batches = min(self.nodes // self.batch_rows, self.max_tiles)
        return [TileFetch("graph", (batch * self.batch_rows, 0),
                          (self.batch_rows, self.nodes))
                for batch in range(batches)]

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        return kernels.traversal_pass(self.batch_rows, self.nodes,
                                      element_size=4)

    def shared_input_group(self) -> str:
        return "graph-adjacency"

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {"graph": random_adjacency(
            self.nodes, self.nodes * self.edges_per_node,
            seed=int(rng.integers(2**31)))}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """BFS levels from node 0 (-1 = unreachable)."""
        adjacency = inputs["graph"]
        nodes = adjacency.shape[0]
        level = np.full(nodes, -1, dtype=np.int64)
        frontier = np.zeros(nodes, dtype=bool)
        frontier[0] = True
        level[0] = 0
        depth = 0
        while frontier.any():
            depth += 1
            reachable = (adjacency[frontier].sum(axis=0) > 0)
            frontier = reachable & (level < 0)
            level[frontier] = depth
        return level
