"""Block GEMM (Table 1: linear algebra, Tensor-Core kernel).

The paper's flagship workload: 65536² matrices multiplied in 8192²
sub-blocks (MSplitGEMM + cuBLAS on Tensor Cores). Sub-block fetches of
a row-major matrix are exactly the [P1]/[P2]/[P3] worst case of §2.1,
so GEMM shows the largest NDS gains.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import random_matrix

__all__ = ["GemmWorkload"]


class GemmWorkload(Workload):
    name = "GEMM"
    category = "Linear Algebra"
    data_dim_label = "2D"
    kernel_dim_label = "2D"
    uses_tensor_cores = True

    def __init__(self, n: int = 4096, tile: int = 512,
                 max_tiles: int = 64) -> None:
        if n % tile != 0:
            raise ValueError("tile must divide n")
        self.n = n
        self.tile = tile
        self.max_tiles = max_tiles

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset("A", (self.n, self.n), 4),
                WorkloadDataset("B", (self.n, self.n), 4)]

    def tile_plan(self) -> List[TileFetch]:
        """Blocked MM fetch order: for each output block (i, j), stream
        the (i, k)/(k, j) pairs. The kernel fires on each B fetch."""
        plan: List[TileFetch] = []
        blocks = self.n // self.tile
        for i in range(blocks):
            for j in range(blocks):
                for k in range(blocks):
                    plan.append(TileFetch(
                        "A", (i * self.tile, k * self.tile),
                        (self.tile, self.tile)))
                    plan.append(TileFetch(
                        "B", (k * self.tile, j * self.tile),
                        (self.tile, self.tile)))
                    if len(plan) >= self.max_tiles:
                        return plan
        return plan

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        if fetch.dataset == "B":
            return kernels.gemm(self.tile, self.tile, self.tile,
                                element_size=4, use_tensor_cores=True)
        return 0.0

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        seed = int(rng.integers(2**31))
        return {"A": random_matrix(self.n, self.n, seed=seed),
                "B": random_matrix(self.n, self.n, seed=seed + 1)}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        return inputs["A"].astype(np.float64) @ inputs["B"].astype(np.float64)

    def blocked_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The tiled algorithm itself (used by the examples to exercise
        the tile plan end to end)."""
        n, t = self.n, self.tile
        out = np.zeros((n, n), dtype=np.float64)
        blocks = n // t
        for i in range(blocks):
            for j in range(blocks):
                acc = np.zeros((t, t), dtype=np.float64)
                for k in range(blocks):
                    acc += (a[i * t:(i + 1) * t, k * t:(k + 1) * t].astype(np.float64)
                            @ b[k * t:(k + 1) * t, j * t:(j + 1) * t].astype(np.float64))
                out[i * t:(i + 1) * t, j * t:(j + 1) * t] = acc
        return out
