"""SSD-backed embedding-table serving (recommendation models).

The first *serving* workload on the spine, modeled on FBGEMM's SSD
table-batched-embedding benchmark: huge embedding tables live on flash
as N-D spaces of shape ``(num_embeddings, embedding_dim)``, and
requests perform batched sparse lookups (``get``) and optimizer
updates (``set``) of individual rows, with zipfian hot-set skew over
millions of logical users. Row lookups are exactly the access pattern
where N-D building-block placement should beat a striped-LBA layout:
one row is one short contiguous run, and the baseline pays a full page
fan-out per row while NDS places rows within building blocks.

Knob names mirror the FBGEMM TBE/SSD benchmark vocabulary
(``tbe_ssd_benchmark`` CLI and ``ssd_config``/``cache_config``):

===================  ==============================================
knob                 FBGEMM analogue
===================  ==============================================
``num_embeddings``   ``--num-embeddings`` (E, rows per table)
``embedding_dim``    ``--embedding-dim`` (D)
``num_tables``       ``--tables`` (T)
``batch_size``       ``--batch-size`` (B, bags per batch)
``pooling_factor``   ``--bag-size`` / pooling factor (L, rows/bag)
``alpha``            ``--alpha`` (zipf skew of row popularity)
``weights_precision``  ``--weights-precision`` (bytes per element)
``update_fraction``  ``--mixed`` training update share (set/get mix)
===================  ==============================================

The workload serves both harnesses:

* **closed loop** — :meth:`tile_plan` is ``num_batches`` table-batched
  lookup batches (B×L row reads per table each), runnable through
  :func:`~repro.workloads.runner.run_workload` /
  :func:`~repro.workloads.runner.co_run_workloads` on all four
  systems;
* **open loop** — :meth:`request_factory` builds the per-arrival
  request generator the
  :class:`~repro.traffic.injector.OpenLoopInjector` drives: one
  request is one user inference (T×L row lookups, pooled), and every
  ``1/update_fraction``-th request also writes its rows back (a
  training embedding update).

Both draw rows from the same seeded
:class:`~repro.traffic.popularity.ZipfPopularity`, so runs are
deterministic end to end.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.runtime.tileop import TileOp
from repro.traffic.popularity import ZipfPopularity
from repro.workloads.base import TileFetch, Workload, WorkloadDataset

__all__ = ["EmbeddingWorkload"]


class EmbeddingWorkload(Workload):
    """Batched sparse embedding lookups over flash-resident tables."""

    name = "embedding"
    category = "Serving"
    data_dim_label = "2D"
    kernel_dim_label = "1D"

    def __init__(self, num_embeddings: int = 2048, embedding_dim: int = 64,
                 num_tables: int = 1, batch_size: int = 4,
                 pooling_factor: int = 2, num_batches: int = 6,
                 alpha: float = 1.05, weights_precision: int = 4,
                 update_fraction: float = 0.0, seed: int = 0xE3B,
                 scatter: bool = True) -> None:
        if num_embeddings < 1 or embedding_dim < 1 or num_tables < 1:
            raise ValueError("table shape knobs must be >= 1")
        if batch_size < 1 or pooling_factor < 1 or num_batches < 1:
            raise ValueError("batch shape knobs must be >= 1")
        if weights_precision < 1:
            raise ValueError("weights_precision is bytes per element (>= 1)")
        if not 0.0 <= update_fraction <= 1.0:
            raise ValueError("update_fraction must lie in [0, 1]")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.num_tables = num_tables
        self.batch_size = batch_size
        self.pooling_factor = pooling_factor
        self.num_batches = num_batches
        self.alpha = alpha
        self.weights_precision = weights_precision
        self.update_fraction = update_fraction
        self.seed = seed
        self.scatter = scatter
        # the closed-loop plan is fixed at construction: one seeded
        # popularity stream drawn in (batch, table, bag, slot) order
        popularity = ZipfPopularity(num_embeddings, alpha, seed=seed,
                                    scatter=scatter)
        lookups = (num_batches * num_tables * batch_size * pooling_factor)
        self._plan_rows = [popularity.sample() for _ in range(lookups)]

    # ------------------------------------------------------------------
    # closed-loop interface (Workload)
    # ------------------------------------------------------------------
    def table_name(self, table: int) -> str:
        return f"emb{table}"

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset(self.table_name(t),
                                (self.num_embeddings, self.embedding_dim),
                                self.weights_precision)
                for t in range(self.num_tables)]

    def tile_plan(self) -> List[TileFetch]:
        plan: List[TileFetch] = []
        index = 0
        for _batch in range(self.num_batches):
            for table in range(self.num_tables):
                name = self.table_name(table)
                for _slot in range(self.batch_size * self.pooling_factor):
                    row = self._plan_rows[index]
                    index += 1
                    plan.append(TileFetch(name, (row, 0),
                                          (1, self.embedding_dim)))
        return plan

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        """Pooling (segment sum) is one streaming pass over the rows."""
        rows, cols = fetch.extents
        return kernels.traversal_pass(rows, cols, self.weights_precision)

    # ------------------------------------------------------------------
    # open-loop interface (traffic)
    # ------------------------------------------------------------------
    def request_factory(self, salt: int = 0
                        ) -> Callable[[int, float], List[TileOp]]:
        """Build the per-arrival request generator for the injector.

        One request models one user inference: ``pooling_factor`` row
        lookups in each of the ``num_tables`` tables, drawn from a
        fresh seeded popularity stream (salted per tenant so co-run
        tenants do not share hot rows). With ``update_fraction > 0``,
        every ``round(1/update_fraction)``-th request is a *training*
        step: it reads its rows and then writes them back (optimizer
        ``set`` after the ``get``).
        """
        popularity = ZipfPopularity(
            self.num_embeddings, self.alpha,
            seed=self.seed + 0x51ED5 * (salt + 1), scatter=self.scatter)
        update_every = (int(round(1.0 / self.update_fraction))
                        if self.update_fraction > 0 else 0)
        dim = self.embedding_dim

        def request_ops(seq: int, _time: float) -> List[TileOp]:
            ops: List[TileOp] = []
            is_update = update_every and (seq % update_every
                                          == update_every - 1)
            for table in range(self.num_tables):
                name = self.table_name(table)
                for _ in range(self.pooling_factor):
                    row = popularity.sample()
                    ops.append(TileOp.read(name, (row, 0), (1, dim)))
                    if is_update:
                        ops.append(TileOp.write(name, (row, 0), (1, dim)))
            return ops

        return request_ops

    @property
    def request_bytes(self) -> int:
        """Payload bytes one inference request fetches."""
        return (self.num_tables * self.pooling_factor
                * self.embedding_dim * self.weights_precision)

    # ------------------------------------------------------------------
    # functional layer
    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        if self.weights_precision != 4:
            raise NotImplementedError(
                "functional verification models fp32 tables")
        return {self.table_name(t): rng.standard_normal(
                    (self.num_embeddings, self.embedding_dim)
                ).astype(np.float32)
                for t in range(self.num_tables)}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """Pooled (summed) bags: shape ``(num_batches, num_tables,
        batch_size, embedding_dim)``, following :meth:`tile_plan`'s
        row order exactly."""
        out = np.zeros((self.num_batches, self.num_tables,
                        self.batch_size, self.embedding_dim),
                       dtype=np.float32)
        index = 0
        for batch in range(self.num_batches):
            for table in range(self.num_tables):
                rows = inputs[self.table_name(table)]
                for bag in range(self.batch_size):
                    for _ in range(self.pooling_factor):
                        out[batch, table, bag] += rows[
                            self._plan_rows[index]]
                        index += 1
        return out

    def plan_rows(self) -> List[int]:
        """The closed-loop plan's row ids, in fetch order (testing)."""
        return list(self._plan_rows)

    def hot_rows(self, top: int = 8) -> List[int]:
        """The ``top`` most popular row ids under this seed's scatter
        (rank order, not observed frequency)."""
        popularity = ZipfPopularity(self.num_embeddings, self.alpha,
                                    seed=self.seed, scatter=self.scatter)
        return [popularity.key_of_rank(rank)
                for rank in range(1, min(top, self.num_embeddings) + 1)]

    def shared_input_group(self) -> Optional[str]:
        return None
