"""The software oracle (paper §7.2, Fig. 10(a) "Software (Oracle)").

"An oracle configuration where we exhaustively search for the best
storage data layout that incurs zero overhead on the host and minimum
end-to-end latency." We model its end state directly: every dataset is
stored **tile-major** for exactly the tile shape the consumer will
request, so every aligned tile read is one contiguous LBA range —
large, saturating, DMA-direct requests with no marshalling.

Workloads that share a dataset under different shapes need one stored
copy per shape (the paper stores two copies for BFS/SSSP, KMeans/KNN
and TTV/TC); the oracle tracks that capacity cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.config import CacheConfig
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultConfig
from repro.ftl.ssd import BaselineSSD
from repro.host.cpu import HostCpu
from repro.host.io_engine import HostIoEngine, IoRequest
from repro.interconnect.link import Link
from repro.nvm.profiles import DeviceProfile
from repro.systems.base import StorageSystem, SystemOpResult
from repro.systems.baseline import DEFAULT_MAX_REQUEST_BYTES, LpnTierOps

__all__ = ["OracleSystem"]


@dataclass
class _TiledCopy:
    start_page: int
    dims: Tuple[int, ...]
    element_size: int
    tile: Tuple[int, ...]
    grid: Tuple[int, ...]
    tile_pages: int


class OracleSystem(LpnTierOps, StorageSystem):
    """Best-possible software layout: tile-major storage per consumer."""

    name = "software-oracle"

    def __init__(self, profile: DeviceProfile, store_data: bool = False,
                 queue_depth: int = 32,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
                 faults: Optional[FaultConfig] = None,
                 devices: int = 1, pool=None,
                 extents_per_device: int = 1, rebalance=None,
                 cache: Optional[CacheConfig] = None,
                 parallel: int = 0) -> None:
        self.profile = profile
        self.store_data = store_data
        self.max_request_bytes = max_request_bytes
        self.page_size = profile.geometry.page_size
        if self._init_cluster(
                devices, pool, faults, rebalance, extents_per_device,
                lambda i, f: OracleSystem(
                    profile, store_data=store_data, queue_depth=queue_depth,
                    max_request_bytes=max_request_bytes, faults=f,
                    cache=cache),
                parallel=parallel):
            return
        self.ssd = BaselineSSD(profile, store_data=store_data)
        if faults is not None:
            self.ssd.flash.attach_faults(FaultInjector(faults))
        self.link = Link(profile.link_bandwidth, profile.link_command_overhead)
        self.cpu = HostCpu()
        self.engine = HostIoEngine(self.ssd, self.link, self.cpu,
                                   queue_depth=queue_depth)
        #: dataset -> tile shape -> stored copy
        self._copies: Dict[str, Dict[Tuple[int, ...], _TiledCopy]] = {}
        self._next_page = 0
        self._init_tier(cache)

    # ------------------------------------------------------------------
    def _execute_ingest(self, dataset: str, dims: Sequence[int],
                        element_size: int,
                        data: Optional[np.ndarray] = None,
                        start_time: float = 0.0,
                        tile: Optional[Sequence[int]] = None) -> SystemOpResult:
        """Store one tile-major copy of a dataset for tile shape
        ``tile`` (defaults to the whole dataset as a single tile).
        Call again with a different ``tile`` to add another copy."""
        dims = tuple(int(d) for d in dims)
        tile_shape = tuple(int(t) for t in (tile if tile is not None else dims))
        if len(tile_shape) != len(dims):
            raise ValueError("tile rank must match dataset rank")
        for t, d in zip(tile_shape, dims):
            if t < 1 or d % t != 0:
                raise ValueError(
                    f"oracle tiles must evenly divide the dataset: {tile_shape}"
                    f" vs {dims}")
        grid = tuple(d // t for d, t in zip(dims, tile_shape))
        tile_bytes = element_size
        for t in tile_shape:
            tile_bytes *= t
        tile_pages = -(-tile_bytes // self.page_size)
        tiles = 1
        for g in grid:
            tiles *= g
        copy = _TiledCopy(start_page=self._next_page, dims=dims,
                          element_size=element_size, tile=tile_shape,
                          grid=grid, tile_pages=tile_pages)
        self._next_page += tiles * tile_pages
        if self._next_page > self.ssd.logical_pages:
            raise ValueError("oracle copies exceed device logical capacity")
        self._copies.setdefault(dataset, {})[tile_shape] = copy

        requests: List[IoRequest] = []
        for index in range(tiles):
            payload = None
            if data is not None and self.store_data:
                chunk = self._extract_tile(np.asarray(data), copy, index)
                payload = [chunk[i * self.page_size:(i + 1) * self.page_size]
                           for i in range(tile_pages)]
            first = copy.start_page + index * tile_pages
            requests.extend(self._split(first, tile_pages, payload))
        result = self.engine.run_writes(requests, start_time)
        return SystemOpResult(start_time=start_time, end_time=result.end_time,
                              useful_bytes=tiles * tile_bytes,
                              fetched_bytes=result.fetched_bytes,
                              requests=len(requests), stats=result.stats)

    # ------------------------------------------------------------------
    def _execute_read(self, dataset: str, origin: Sequence[int],
                      extents: Sequence[int], start_time: float = 0.0,
                      with_data: bool = False,
                      dtype: Optional[np.dtype] = None) -> SystemOpResult:
        copy = self._match(dataset, extents)
        index = self._tile_index(copy, origin)
        first = copy.start_page + index * copy.tile_pages
        requests = self._split(first, copy.tile_pages, None)
        # A software-library oracle still reads through the page cache:
        # one contiguous copy into the user buffer per request. This is
        # why the paper finds the oracle "just about the same as the
        # software NDS" (§7.2) despite its perfect layout.
        for request in requests:
            request.placement_chunk = 0
        # DRAM tier: resident tile runs never reach the engine
        tier = self.tier
        tier_end = start_time
        if tier is not None:
            if with_data and self.store_data:
                raise NotImplementedError(
                    "functional reads with the DRAM tier enabled are not "
                    "supported on the linear systems; use cache=None for "
                    "data verification")
            remaining = []
            for request in requests:
                key = ("lpn", request.lpns[0], request.lpns[-1])
                if tier.lookup(key) is not None:
                    tier_end = max(tier_end, self.cpu.copy(
                        request.useful_bytes, start_time, 0,
                        label="cache_copy"))
                    continue
                remaining.append(request)
            requests = remaining
        read_start = start_time
        if tier is not None:
            for request in requests:
                read_start = self._flush_overlapping_lpns(
                    request.lpns[0], request.lpns[-1], read_start)
        run = self.engine.run_reads(requests, start_time
                                    if tier is None else read_start,
                                    with_data=with_data and self.store_data)
        if tier is not None:
            end = run.end_time
            for request in requests:
                end = tier.insert(
                    ("lpn", request.lpns[0], request.lpns[-1]),
                    len(request.lpns) * self.page_size, end,
                    payload=request)
            run.end_time = max(run.end_time, end, tier_end)
        data = None
        if with_data and self.store_data:
            pages = [p for group in run.data if group for p in group]
            blob = np.concatenate(pages)
            tile_bytes = copy.element_size
            for t in copy.tile:
                tile_bytes *= t
            data = blob[:tile_bytes].reshape(
                tuple(copy.tile) + (copy.element_size,))
            if dtype is not None:
                data = np.ascontiguousarray(data).reshape(-1).view(
                    dtype).reshape(tuple(copy.tile))
        useful = copy.element_size
        for t in copy.tile:
            useful *= t
        return SystemOpResult(start_time=start_time, end_time=run.end_time,
                              useful_bytes=useful,
                              fetched_bytes=run.fetched_bytes,
                              requests=len(requests), data=data,
                              stats=run.stats)

    def _execute_write(self, dataset: str, origin: Sequence[int],
                       extents: Sequence[int],
                       data: Optional[np.ndarray] = None,
                       start_time: float = 0.0) -> SystemOpResult:
        copy = self._match(dataset, extents)
        index = self._tile_index(copy, origin)
        first = copy.start_page + index * copy.tile_pages
        payload = None
        if data is not None and self.store_data:
            raw = np.ascontiguousarray(np.asarray(data)).view(np.uint8).ravel()
            payload = [raw[i * self.page_size:(i + 1) * self.page_size]
                       for i in range(copy.tile_pages)]
        requests = self._split(first, copy.tile_pages, payload)
        tier = self.tier
        if tier is not None and tier.config.write_back:
            end = start_time
            for request in requests:
                done = self.cpu.copy(request.useful_bytes, start_time, 0,
                                     label="cache_copy")
                done = self._flush_overlapping_lpns(
                    request.lpns[0], request.lpns[-1], done,
                    invalidate=True)
                end = max(end, tier.insert(
                    ("lpn", request.lpns[0], request.lpns[-1]),
                    len(request.lpns) * self.page_size, done,
                    payload=request, dirty=True))
            useful = copy.element_size
            for t in copy.tile:
                useful *= t
            return SystemOpResult(start_time=start_time, end_time=end,
                                  useful_bytes=useful, fetched_bytes=0,
                                  requests=len(requests))
        if tier is not None:
            for request in requests:
                self._invalidate_overlapping_lpns(request.lpns[0],
                                                  request.lpns[-1])
        run = self.engine.run_writes(requests, start_time)
        useful = copy.element_size
        for t in copy.tile:
            useful *= t
        return SystemOpResult(start_time=start_time, end_time=run.end_time,
                              useful_bytes=useful,
                              fetched_bytes=run.fetched_bytes,
                              requests=len(requests), stats=run.stats)

    def reset_time(self) -> None:
        if self.cluster is not None:
            self.cluster.reset_time()
            self._reset_runtime()
            return
        self.engine.reset_time()
        self._reset_runtime()

    # ------------------------------------------------------------------
    def _cluster_align(self, dims: Sequence[int], element_size: int,
                       params: dict) -> int:
        """Extent boundaries land on stored-tile rows so every aligned
        tile read stays within one device-local copy."""
        tile = params.get("tile")
        return int(tile[0]) if tile else int(dims[0])

    def _cluster_ingest_key(self, dataset: str, dims: Tuple[int, ...],
                            params: dict):
        """One layout per (dataset, tile shape) — the oracle stores a
        separate tile-major copy for every consumer shape."""
        tile = params.get("tile")
        return (dataset, tuple(int(t) for t in (tile or dims)))

    def _cluster_read_key(self, dataset: str, extents: Tuple[int, ...]):
        return (dataset, tuple(int(e) for e in extents))

    def stored_bytes(self) -> int:
        """Total device bytes consumed by all copies (the oracle's
        duplication cost)."""
        return self._next_page * self.page_size

    # ------------------------------------------------------------------
    def _match(self, dataset: str, extents: Sequence[int]) -> _TiledCopy:
        copies = self._copies.get(dataset)
        if not copies:
            raise KeyError(f"unknown dataset {dataset!r}")
        copy = copies.get(tuple(int(e) for e in extents))
        if copy is None:
            raise KeyError(
                f"oracle has no copy of {dataset!r} for tile {tuple(extents)};"
                f" available: {sorted(copies)}")
        return copy

    @staticmethod
    def _tile_index(copy: _TiledCopy, origin: Sequence[int]) -> int:
        index = 0
        for o, t, g in zip(origin, copy.tile, copy.grid):
            if o % t != 0:
                raise ValueError(
                    f"oracle reads must be tile aligned: origin {origin}")
            index = index * g + o // t
        return index

    def _split(self, first_page: int, pages: int,
               payload: Optional[List[np.ndarray]]) -> List[IoRequest]:
        per = max(1, self.max_request_bytes // self.page_size)
        requests = []
        for offset in range(0, pages, per):
            count = min(per, pages - offset)
            chunk_payload = None
            if payload is not None:
                chunk_payload = payload[offset:offset + count]
            requests.append(IoRequest(
                lpns=list(range(first_page + offset,
                                first_page + offset + count)),
                useful_bytes=count * self.page_size,
                placement_chunk=None, payload=chunk_payload))
        return requests

    def _extract_tile(self, data: np.ndarray, copy: _TiledCopy,
                      index: int) -> np.ndarray:
        coords = []
        remaining = index
        for g in reversed(copy.grid):
            coords.append(remaining % g)
            remaining //= g
        coords.reverse()
        slicer = tuple(slice(c * t, (c + 1) * t)
                       for c, t in zip(coords, copy.tile))
        tile = np.ascontiguousarray(data[slicer]).view(np.uint8).ravel()
        padded = np.zeros(copy.tile_pages * self.page_size, dtype=np.uint8)
        padded[:tile.size] = tile
        return padded
