"""Tests for the STL's per-space B-tree index (§4.2, Fig. 6)."""

import pytest

from repro.core import BTreeIndex, Space
from repro.nvm import Geometry, PhysicalPageAddress


@pytest.fixture
def geometry():
    return Geometry(channels=4, banks_per_channel=2, page_size=256)


@pytest.fixture
def space3d(geometry):
    """The Fig. 6 shape: a 3-level tree for a 3-D space."""
    return Space.create(1, (64, 64, 4), 4, geometry)


@pytest.fixture
def index(space3d):
    return BTreeIndex(space3d)


class TestStructure:
    def test_tree_has_one_level_per_dimension(self, index, space3d):
        result = index.ensure((0, 0, 0))
        assert result.nodes_visited == space3d.rank

    def test_lookup_missing_is_none(self, index):
        result = index.lookup((1, 1, 1))
        assert result.entry is None
        assert result.nodes_visited >= 1

    def test_ensure_allocates_path(self, index):
        before = index.node_count
        result = index.ensure((3, 2, 1))
        assert result.entry is not None
        assert result.nodes_created == 2  # levels below the root
        assert index.node_count == before + 2

    def test_ensure_is_idempotent(self, index):
        first = index.ensure((1, 1, 0)).entry
        again = index.ensure((1, 1, 0))
        assert again.entry is first
        assert again.nodes_created == 0

    def test_shared_prefix_shares_nodes(self, index):
        index.ensure((0, 0, 0))
        created = index.ensure((0, 0, 1)).nodes_created
        assert created == 0  # same 2-D path, new leaf entry only

    def test_entry_has_page_slots(self, index, space3d):
        entry = index.ensure((0, 0, 0)).entry
        assert len(entry.pages) == space3d.pages_per_block
        assert entry.is_empty

    def test_out_of_grid_coordinate(self, index):
        with pytest.raises(ValueError):
            index.lookup((99, 0, 0))
        with pytest.raises(ValueError):
            index.ensure((0, 0, 99))

    def test_rank_mismatch(self, index):
        with pytest.raises(ValueError):
            index.lookup((0, 0))


class TestEntryBookkeeping:
    def test_record_alloc_updates_usage(self, index):
        entry = index.ensure((0, 0, 0)).entry
        ppa = PhysicalPageAddress(2, 1, 0, 0)
        entry.record_alloc(ppa, 0)
        assert entry.pages[0] == ppa
        assert entry.channel_use == {2: 1}
        assert entry.bank_use == {(2, 1): 1}
        assert entry.last_alloc == ppa

    def test_record_release(self, index):
        entry = index.ensure((0, 0, 0)).entry
        ppa = PhysicalPageAddress(2, 1, 0, 0)
        entry.record_alloc(ppa, 0)
        released = entry.record_release(0)
        assert released == ppa
        assert entry.channel_use == {}
        assert entry.bank_use == {}
        assert entry.is_empty

    def test_release_empty_slot(self, index):
        entry = index.ensure((0, 0, 0)).entry
        assert entry.record_release(0) is None


class TestIterationAndMemory:
    def test_iter_entries(self, index):
        coords = [(0, 0, 0), (1, 2, 3), (3, 3, 0)]
        for coord in coords:
            index.ensure(coord)
        found = {entry.coord for entry in index.iter_entries()}
        assert found == set(coords)

    def test_remove(self, index):
        index.ensure((1, 1, 1))
        assert index.remove((1, 1, 1)) is not None
        assert index.lookup((1, 1, 1)).entry is None
        assert index.remove((1, 1, 1)) is None

    def test_memory_grows_with_entries(self, index):
        empty = index.memory_bytes()
        for i in range(4):
            index.ensure((i, 0, 0))
        assert index.memory_bytes() > empty

    def test_space_overhead_is_small(self):
        """§7.3: with real 4 KB pages the full lookup structure stays
        in the 0.1 %-of-capacity band."""
        from repro.nvm import PAPER_PROTOTYPE
        space = Space.create(1, (4096, 4096), 4, PAPER_PROTOTYPE.geometry)
        index = BTreeIndex(space)
        for i in range(space.grid[0]):
            for j in range(space.grid[1]):
                entry = index.ensure((i, j)).entry
                for position in range(space.pages_per_block):
                    entry.record_alloc(PhysicalPageAddress(0, 0, 0, 0),
                                       position)
        overhead = index.memory_bytes() / space.total_bytes
        assert overhead < 0.005
