"""Synthetic dataset generators (paper §A.3.4).

The paper's artifact generates every input synthetically: random dense
matrices/tensors, clustering point sets, random graphs as binary
adjacency matrices, and a power-law graph for PageRank. We mirror those
generators (seeded, numpy-native, binary-encoded shapes).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "random_matrix",
    "random_tensor",
    "clustering_points",
    "random_adjacency",
    "weighted_adjacency",
    "pagerank_graph",
]


def random_matrix(rows: int, cols: int, dtype=np.float32,
                  seed: int = 0) -> np.ndarray:
    """Dense random matrix — GEMM / Conv2D / Hotspot inputs."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((rows, cols)).astype(dtype)


def random_tensor(d0: int, d1: int, d2: int, dtype=np.float32,
                  seed: int = 0) -> np.ndarray:
    """Dense random 3-D tensor — TTV / TC input."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((d0, d1, d2)).astype(dtype)


def clustering_points(points: int, attributes: int, clusters: int = 8,
                      dtype=np.float32, seed: int = 0,
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """K-Means / KNN input: ``points`` samples drawn around ``clusters``
    Gaussian centres. Returns (points, centres)."""
    rng = np.random.default_rng(seed)
    centres = rng.uniform(-10.0, 10.0, size=(clusters, attributes))
    assignment = rng.integers(0, clusters, size=points)
    data = centres[assignment] + rng.standard_normal((points, attributes))
    return data.astype(dtype), centres.astype(dtype)


def random_adjacency(nodes: int, edges: int, dtype=np.int32,
                     seed: int = 0) -> np.ndarray:
    """BFS input: binary adjacency matrix with ~``edges`` directed edges
    (the NDS variant of Rodinia's generator stores binary-encoded
    adjacency matrices)."""
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((nodes, nodes), dtype=dtype)
    rows = rng.integers(0, nodes, size=edges)
    cols = rng.integers(0, nodes, size=edges)
    adjacency[rows, cols] = 1
    # keep the graph connected enough for traversal: a random chain
    order = rng.permutation(nodes)
    adjacency[order[:-1], order[1:]] = 1
    return adjacency


def weighted_adjacency(nodes: int, edges: int, max_weight: float = 10.0,
                       dtype=np.float32, seed: int = 0) -> np.ndarray:
    """SSSP input: weighted adjacency, 0 = no edge."""
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((nodes, nodes), dtype=dtype)
    rows = rng.integers(0, nodes, size=edges)
    cols = rng.integers(0, nodes, size=edges)
    adjacency[rows, cols] = rng.uniform(0.1, max_weight, size=edges)
    order = rng.permutation(nodes)
    adjacency[order[:-1], order[1:]] = rng.uniform(0.1, max_weight,
                                                   size=nodes - 1)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


def pagerank_graph(nodes: int, mean_degree: int = 16, dtype=np.float32,
                   seed: int = 0) -> np.ndarray:
    """PageRank input: adjacency with a skewed (power-law-ish) in-degree
    distribution, mirroring the DIMACS-derived graph of §A.3.4."""
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((nodes, nodes), dtype=dtype)
    # preferential targets: Zipf-like popularity
    popularity = 1.0 / np.arange(1, nodes + 1)
    popularity /= popularity.sum()
    total_edges = nodes * mean_degree
    sources = rng.integers(0, nodes, size=total_edges)
    targets = rng.choice(nodes, size=total_edges, p=popularity)
    adjacency[sources, targets] = 1.0
    np.fill_diagonal(adjacency, 0.0)
    return adjacency
