"""Integration: every architecture must deliver identical bytes.

The paper keeps compute kernels unchanged across storage systems (§6);
therefore all four architectures must feed them exactly the same tile
contents for any dataset and any tile.
"""

import numpy as np
import pytest

from repro.nvm import TINY_TEST
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)


@pytest.fixture
def dataset(rng):
    return rng.integers(0, 2**31, (64, 64)).astype(np.int32)


def test_all_systems_return_identical_tiles(dataset):
    systems = [BaselineSystem(TINY_TEST, store_data=True),
               SoftwareNdsSystem(TINY_TEST, store_data=True),
               HardwareNdsSystem(TINY_TEST, store_data=True)]
    for system in systems:
        system.ingest("m", (64, 64), 4, data=dataset)
    oracle = OracleSystem(TINY_TEST, store_data=True)
    oracle.ingest("m", (64, 64), 4, data=dataset, tile=(16, 16))

    for origin in [(0, 0), (16, 16), (48, 0)]:
        tiles = [s.read_tile("m", origin, (16, 16), with_data=True,
                             dtype=np.int32).data for s in systems]
        tiles.append(oracle.read_tile("m", origin, (16, 16),
                                      with_data=True, dtype=np.int32).data)
        for tile in tiles[1:]:
            assert np.array_equal(tiles[0], tile)
        assert np.array_equal(
            tiles[0], dataset[origin[0]:origin[0] + 16,
                              origin[1]:origin[1] + 16])


def test_nds_systems_agree_on_unaligned_tiles(dataset):
    software = SoftwareNdsSystem(TINY_TEST, store_data=True)
    hardware = HardwareNdsSystem(TINY_TEST, store_data=True)
    for system in (software, hardware):
        system.ingest("m", (64, 64), 4, data=dataset)
    for origin, extents in [((3, 7), (11, 23)), ((0, 63), (64, 1)),
                            ((31, 31), (2, 2))]:
        a = software.read_tile("m", origin, extents, with_data=True,
                               dtype=np.int32).data
        b = hardware.read_tile("m", origin, extents, with_data=True,
                               dtype=np.int32).data
        assert np.array_equal(a, b)
        expected = dataset[origin[0]:origin[0] + extents[0],
                           origin[1]:origin[1] + extents[1]]
        assert np.array_equal(a, expected)


def test_write_tile_visible_across_views(dataset, rng):
    system = HardwareNdsSystem(TINY_TEST, store_data=True)
    system.ingest("m", (64, 64), 4, data=dataset)
    patch = rng.integers(0, 2**31, (8, 8)).astype(np.int32)
    system.write_tile("m", (20, 20), (8, 8), data=patch)
    full = system.read_tile("m", (0, 0), (64, 64), with_data=True,
                            dtype=np.int32).data
    expected = dataset.copy()
    expected[20:28, 20:28] = patch
    assert np.array_equal(full, expected)


def test_timing_only_and_functional_agree_on_structure():
    """Timing-only mode must issue the same requests/pages as the
    functional mode (only the payload differs)."""
    functional = HardwareNdsSystem(TINY_TEST, store_data=True)
    timing = HardwareNdsSystem(TINY_TEST, store_data=False)
    data = np.zeros((64, 64), dtype=np.int32)
    functional.ingest("m", (64, 64), 4, data=data)
    timing.ingest("m", (64, 64), 4)
    functional.reset_time()
    timing.reset_time()
    a = functional.read_tile("m", (8, 8), (32, 32))
    b = timing.read_tile("m", (8, 8), (32, 32))
    assert a.fetched_bytes == b.fetched_bytes
    assert a.requests == b.requests
    assert a.elapsed == pytest.approx(b.elapsed, rel=1e-9)
