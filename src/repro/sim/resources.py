"""Resource timelines: the analytic core of the timing model.

A :class:`Timeline` models a single FCFS server (one flash channel, one
bank, the PCIe link, one CPU hardware thread...). Reserving an interval
returns when the work actually started and finished, pushing the
server's next-free time forward. Because every schedule in the
storage model is deterministic FCFS, chains of ``reserve`` calls
reproduce exactly the behaviour an event-driven simulation would produce,
at a fraction of the cost.

:class:`MultiTimeline` models ``k`` identical servers with
earliest-available dispatch (e.g. "any free bank").
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["Timeline", "MultiTimeline"]

#: below this server count the plain Python scan beats numpy argmin
#: (array-call overhead dominates); at or above it the columnar mirror
#: wins. 16 is conservative: measured crossover is ~8 servers.
_ARGMIN_MIN_SERVERS = 16


class Timeline:
    """A single FCFS server with a next-free-time cursor.

    Tracks total busy time so utilization can be reported. An optional
    ``observer`` callable ``(name, start, end)`` is invoked after every
    reservation — the metrics registry's hook for per-server busy
    counters. It never feeds back into timing.
    """

    __slots__ = ("name", "free_at", "busy_time", "ops", "observer")

    def __init__(self, name: str = "", start_time: float = 0.0) -> None:
        self.name = name
        self.free_at = float(start_time)
        self.busy_time = 0.0
        self.ops = 0
        self.observer = None

    def reserve(self, earliest_start: float, duration: float) -> Tuple[float, float]:
        """Occupy the server for ``duration`` seconds, starting no earlier
        than ``earliest_start``.

        Returns ``(start, end)``: the actual interval granted.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        start = max(earliest_start, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        self.ops += 1
        if self.observer is not None:
            self.observer(self.name, start, end)
        return start, end

    def reserve_many(self, starts, durations) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized sequence of :meth:`reserve` calls.

        ``starts[i]``/``durations[i]`` describe the i-th reservation in
        FCFS order. Returns ``(start, end)`` float64 arrays. The result
        is bit-identical to calling :meth:`reserve` element by element:
        stretches where the server never idles are computed with
        ``np.add.accumulate`` (a strictly sequential recurrence, so the
        float rounding matches the scalar chain exactly), and every
        arrival that finds the server idle restarts the scan from its
        own start time. With an observer attached the scalar path runs
        instead, so per-reservation callbacks keep their exact order.
        """
        starts = np.ascontiguousarray(starts, dtype=np.float64)
        durations = np.ascontiguousarray(durations, dtype=np.float64)
        n = starts.shape[0]
        if durations.shape[0] != n:
            raise ValueError(
                f"{n} starts but {durations.shape[0]} durations")
        if n == 0:
            return np.empty(0), np.empty(0)
        if durations.min() < 0:
            raise ValueError(f"negative duration: {durations.min()}")
        if self.observer is not None:
            out_start = np.empty(n)
            out_end = np.empty(n)
            for i in range(n):
                out_start[i], out_end[i] = self.reserve(
                    float(starts[i]), float(durations[i]))
            return out_start, out_end
        out_start = np.empty(n)
        out_end = np.empty(n)
        free = self.free_at
        i = 0
        while i < n:
            tail = n - i
            chain = np.empty(tail + 1)
            chain[0] = free
            chain[1:] = durations[i:]
            np.add.accumulate(chain, out=chain)
            # chain[j] is the server's free time before op i+j assuming
            # it never idles; the first op that starts later breaks the
            # back-to-back run
            late = np.nonzero(starts[i:] > chain[:tail])[0]
            stop = tail if late.size == 0 else int(late[0])
            if stop:
                out_start[i:i + stop] = chain[:stop]
                out_end[i:i + stop] = chain[1:stop + 1]
                free = float(chain[stop])
                i += stop
            if i < n and stop < tail:
                # this op found the server idle: it starts at its own
                # start time and seeds the next back-to-back run
                start = float(starts[i])
                end = start + float(durations[i])
                out_start[i] = start
                out_end[i] = end
                free = end
                i += 1
        self.free_at = free
        # busy_time accumulates one duration per op in order, exactly
        # like the scalar path (sum order changes the rounding)
        acc = np.empty(n + 1)
        acc[0] = self.busy_time
        acc[1:] = durations
        np.add.accumulate(acc, out=acc)
        self.busy_time = float(acc[-1])
        self.ops += n
        return out_start, out_end

    def peek(self, earliest_start: float) -> float:
        """When would a reservation made now actually start?"""
        return max(earliest_start, self.free_at)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this server was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def reset(self, start_time: float = 0.0) -> None:
        self.free_at = float(start_time)
        self.busy_time = 0.0
        self.ops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline({self.name!r}, free_at={self.free_at:.6g}, ops={self.ops})"


class MultiTimeline:
    """``k`` identical FCFS servers with earliest-available dispatch.

    Dispatch keeps a numpy mirror of every server's ``free_at`` so wide
    pools (32 channels × 8 banks) pick the earliest-available server
    with one ``argmin`` instead of a Python scan. The mirror is
    maintained by :meth:`reserve`/:meth:`reserve_on`/:meth:`reset`;
    code that mutates a member ``Timeline`` directly must call
    :meth:`refresh` afterwards.
    """

    __slots__ = ("name", "servers", "_free_col")

    def __init__(self, count: int, name: str = "", start_time: float = 0.0) -> None:
        if count < 1:
            raise ValueError("MultiTimeline needs at least one server")
        self.name = name
        self.servers: List[Timeline] = [
            Timeline(f"{name}[{i}]", start_time) for i in range(count)
        ]
        self._free_col = np.full(count, float(start_time))

    def refresh(self) -> None:
        """Resync the dispatch mirror after direct server mutation."""
        for i, server in enumerate(self.servers):
            self._free_col[i] = server.free_at

    def reserve(self, earliest_start: float, duration: float) -> Tuple[float, float, int]:
        """Dispatch to the server that can start soonest.

        Returns ``(start, end, server_index)``.
        """
        servers = self.servers
        if len(servers) >= _ARGMIN_MIN_SERVERS:
            # argmin returns the first occurrence of the minimum: the
            # same first-minimal tie-break as the scan below
            index = int(self._free_col.argmin())
            best = servers[index]
        else:
            # Plain scan, no lambda/closure: this sits on the
            # per-request hot path of every host copy, where the pool
            # is small and the numpy call overhead dominates. Strict <
            # keeps the first-minimal tie-break of min(..., key=...).
            best = servers[0]
            index = 0
            best_free = best.free_at
            for i in range(1, len(servers)):
                candidate = servers[i]
                if candidate.free_at < best_free:
                    best = candidate
                    best_free = candidate.free_at
                    index = i
        start, end = best.reserve(earliest_start, duration)
        self._free_col[index] = best.free_at
        return start, end, index

    def reserve_on(self, index: int, earliest_start: float, duration: float) -> Tuple[float, float]:
        """Reserve on a specific server (e.g. a request pinned to one bank)."""
        start, end = self.servers[index].reserve(earliest_start, duration)
        self._free_col[index] = end
        return start, end

    def reserve_fanout(self, indices, earliest_starts,
                       durations) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized batch of pinned reservations.

        ``indices[i]`` names the server of the i-th reservation (issue
        order); ``earliest_starts``/``durations`` are arrays or scalars
        broadcast over the batch. Returns ``(start, end)`` arrays in
        issue order, bit-identical to sequential :meth:`reserve_on`
        calls: servers are independent, so the batch is grouped per
        server and each group runs through
        :meth:`Timeline.reserve_many` with its order preserved.
        """
        idx = np.ascontiguousarray(indices, dtype=np.intp)
        n = idx.shape[0]
        starts = np.broadcast_to(
            np.asarray(earliest_starts, dtype=np.float64), (n,))
        durs = np.broadcast_to(
            np.asarray(durations, dtype=np.float64), (n,))
        out_start = np.empty(n)
        out_end = np.empty(n)
        if n == 0:
            return out_start, out_end
        order = np.argsort(idx, kind="stable")
        sorted_idx = idx[order]
        run_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_idx)) + 1, [n]))
        servers = self.servers
        col = self._free_col
        for r in range(run_starts.size - 1):
            sel = order[run_starts[r]:run_starts[r + 1]]
            server_index = int(sorted_idx[run_starts[r]])
            server = servers[server_index]
            group_start, group_end = server.reserve_many(starts[sel],
                                                         durs[sel])
            out_start[sel] = group_start
            out_end[sel] = group_end
            col[server_index] = server.free_at
        return out_start, out_end

    @property
    def count(self) -> int:
        return len(self.servers)

    def busy_time(self) -> float:
        return sum(s.busy_time for s in self.servers)

    def utilization(self, horizon: float) -> float:
        """Mean utilization over all servers for ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time() / (horizon * len(self.servers)))

    def max_free_at(self) -> float:
        return max(s.free_at for s in self.servers)

    def reset(self, start_time: float = 0.0) -> None:
        for s in self.servers:
            s.reset(start_time)
        self._free_col[:] = float(start_time)
