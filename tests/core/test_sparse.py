"""Tests for the §8 sparse / page-zero optimization."""

import numpy as np
import pytest

from repro.core import SpaceTranslationLayer
from repro.core.api import array_to_bytes, bytes_to_array
from repro.nvm import FlashArray, TINY_TEST


@pytest.fixture
def sparse_stl():
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                       store_data=True)
    return SpaceTranslationLayer(flash, elide_zero_pages=True)


class TestZeroPageElision:
    def test_all_zero_dataset_allocates_nothing(self, sparse_stl):
        stl = sparse_stl
        space = stl.create_space((32, 32), 4)
        result = stl.write(space.space_id, (0, 0), (32, 32),
                           data=array_to_bytes(
                               np.zeros((32, 32), dtype=np.int32)))
        assert sum(block.units_allocated for block in result.blocks) == 0
        assert stl.stats.get_count("stl_pages_elided") > 0
        read = stl.read(space.space_id, (0, 0), (32, 32))
        assert bytes_to_array(read.data, np.int32).sum() == 0

    def test_sparse_dataset_allocates_proportionally(self, sparse_stl, rng):
        stl = sparse_stl
        space = stl.create_space((32, 32), 4)
        data = np.zeros((32, 32), dtype=np.int32)
        data[0, :8] = rng.integers(1, 100, 8)  # one dirty corner
        result = stl.write(space.space_id, (0, 0), (32, 32),
                           data=array_to_bytes(data))
        units = sum(block.units_allocated for block in result.blocks)
        total_pages = space.total_blocks * space.pages_per_block
        assert 0 < units < total_pages
        read = stl.read(space.space_id, (0, 0), (32, 32))
        assert np.array_equal(bytes_to_array(read.data, np.int32), data)

    def test_overwriting_zero_with_data_materializes(self, sparse_stl, rng):
        stl = sparse_stl
        space = stl.create_space((32, 32), 4)
        stl.write(space.space_id, (0, 0), (32, 32),
                  data=array_to_bytes(np.zeros((32, 32), dtype=np.int32)))
        patch = rng.integers(1, 100, (4, 4)).astype(np.int32)
        stl.write_region(space.space_id, (8, 8), (4, 4),
                         data=array_to_bytes(patch))
        read = stl.read(space.space_id, (0, 0), (32, 32))
        merged = bytes_to_array(read.data, np.int32)
        assert np.array_equal(merged[8:12, 8:12], patch)
        assert merged.sum() == patch.sum()

    def test_overwriting_data_with_zero_keeps_unit(self, sparse_stl, rng):
        """Elision applies only to never-written pages: zeroing an
        existing page rewrites it (the unit stays allocated)."""
        stl = sparse_stl
        space = stl.create_space((16, 16), 4)
        data = rng.integers(1, 100, (16, 16)).astype(np.int32)
        stl.write(space.space_id, (0, 0), (16, 16),
                  data=array_to_bytes(data))
        stl.write(space.space_id, (0, 0), (16, 16),
                  data=array_to_bytes(np.zeros((16, 16), dtype=np.int32)))
        read = stl.read(space.space_id, (0, 0), (16, 16))
        assert bytes_to_array(read.data, np.int32).sum() == 0

    def test_timing_only_mode_rejected(self):
        flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                           store_data=False)
        with pytest.raises(ValueError):
            SpaceTranslationLayer(flash, elide_zero_pages=True)


class TestProfileVariety:
    def test_block_optima_differ_across_devices(self):
        """[C1]: the same dataset gets different building blocks on
        different devices — flash vs consumer vs PCM."""
        from repro.core.building_block import block_dims
        from repro.nvm import CONSUMER_SSD, PAPER_PROTOTYPE, PCM_PROTOTYPE
        dims = (65536, 65536)
        blocks = {profile.name: block_dims(dims, 4, profile.geometry)
                  for profile in (PAPER_PROTOTYPE, CONSUMER_SSD,
                                  PCM_PROTOTYPE)}
        assert len(set(blocks.values())) >= 2

    def test_pcm_profile_is_faster_to_read(self):
        from repro.nvm import PAPER_PROTOTYPE, PCM_PROTOTYPE
        assert PCM_PROTOTYPE.timing.t_read < PAPER_PROTOTYPE.timing.t_read
        assert PCM_PROTOTYPE.geometry.page_size < \
            PAPER_PROTOTYPE.geometry.page_size
