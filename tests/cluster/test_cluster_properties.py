"""Property: pooled read-back equality under migration + kill churn.

A shadow numpy array tracks ground truth while a randomized action
sequence — tile reads, tile writes, extent migrations, one whole-device
kill — runs against a 4-device parity-protected pool. Whatever the
churn, every read must return exactly the shadow's bytes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig
from repro.nvm import TINY_TEST
from repro.systems import SoftwareNdsSystem

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

N = 64
BAND = 16  # TINY_TEST building-block rows — the extent alignment


@SETTINGS
@given(st.data())
def test_readback_equality_under_migration_and_kill_churn(data):
    system = SoftwareNdsSystem(TINY_TEST, store_data=True, devices=4,
                               faults=FaultConfig(parity=True))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
    shadow = rng.integers(0, 2**31, size=(N, N), dtype=np.int32)
    system.ingest("M", (N, N), 4, data=shadow.copy())
    cluster = system.cluster
    layout = next(iter(cluster.layouts.values()))

    killed = False
    now = 0.01
    for _ in range(data.draw(st.integers(4, 10))):
        action = data.draw(st.sampled_from(
            ["read", "write", "migrate", "kill"]))
        if action == "read":
            row = data.draw(st.integers(0, (N - BAND) // BAND)) * BAND
            result = system.read_tile("M", (row, 0), (BAND, N),
                                      start_time=now, with_data=True,
                                      dtype=np.dtype(np.int32))
            assert np.array_equal(result.data, shadow[row:row + BAND]), (
                f"rows {row}..{row + BAND} diverged from ground truth")
            now = result.end_time
        elif action == "write":
            row = data.draw(st.integers(0, (N - BAND) // BAND)) * BAND
            patch = np.full((BAND, N), data.draw(st.integers(0, 2**30)),
                            dtype=np.int32)
            result = system.write_tile("M", (row, 0), (BAND, N),
                                       data=patch, start_time=now)
            shadow[row:row + BAND] = patch
            now = result.end_time
        elif action == "migrate":
            extent = data.draw(st.sampled_from(layout.extents))
            target = data.draw(st.sampled_from(layout.devices))
            try:
                now = cluster.migrate_extent(layout, extent, target, now)
            except ValueError:
                pass  # invalid target (home/dead/group clash) — skip
        elif action == "kill" and not killed:
            cluster.pool.observe(now)
            victim = data.draw(st.sampled_from(layout.devices))
            if len(cluster.pool.live_devices()) == 4:
                cluster.pool.kill_now(victim)
                killed = True

    # final full sweep: every byte still reconstructable
    result = system.read_tile("M", (0, 0), (N, N), start_time=now,
                              with_data=True, dtype=np.dtype(np.int32))
    assert np.array_equal(result.data, shadow)
