"""Multi-tenant isolation experiment: interference with and without QoS.

Two tenants (GEMM and BFS) share one NDS device under four regimes —
each alone, co-run with plain round-robin, co-run with 3:1 weighted
shares, and co-run with disjoint per-tenant channel shards — and the
sweep quantifies what each regime buys: per-stream slowdown against the
solo run, service-time shares, SLO accounting, and how much busy time
the tenants overlap on *shared flash channels* (the physical source of
interference). With disjoint shards the overlap is exactly zero: hard
isolation in the FlashBlox sense, enforced by the STL allocator rather
than the scheduler.

Everything is deterministic: two calls with the same arguments produce
identical numbers.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nvm.profiles import TINY_TEST, DeviceProfile
from repro.runtime import PoolShardSpec, QosSpec, ShardSpec, TraceRecorder
from repro.systems.software_nds import SoftwareNdsSystem
from repro.workloads.bfs import BfsWorkload
from repro.workloads.gemm import GemmWorkload
from repro.workloads.runner import co_run_workloads

__all__ = ["channel_overlap", "isolation_sweep"]

#: flash-channel busy lines; pooled systems prefix device scope (d0:ch3)
_CHANNEL_LINE = re.compile(r"^(?:d\d+:)?ch\d+$")


def _busy_intervals(trace: TraceRecorder, stream: str
                    ) -> Dict[str, List[Tuple[float, float]]]:
    """Busy intervals per flash *channel line* for one stream.

    Bank lines (``ch{c}/bk{b}``) are excluded: bank busy time nests
    inside its channel, so channel lines alone decide whether two
    tenants ever touched the same physical resource."""
    intervals: Dict[str, List[Tuple[float, float]]] = {}
    for span in trace.spans:
        if span.instant or span.stream != stream:
            continue
        if not _CHANNEL_LINE.match(span.resource):
            continue
        intervals.setdefault(span.resource, []).append(
            (span.start, span.end))
    for spans in intervals.values():
        spans.sort()
    return intervals


def channel_overlap(trace: TraceRecorder, stream_a: str, stream_b: str
                    ) -> Dict[str, object]:
    """Where two tenants' flash-channel busy intervals land on the same
    channels.

    Channel timelines are exclusive FCFS servers, so two tenants'
    intervals on one channel interleave rather than intersect in time —
    interference shows up as *footprint* overlap: a channel both
    tenants keep busy means each tenant's ops queue behind the other's.
    Returns ``{"channels": {ch: {stream: busy_seconds}},
    "shared_channels": [...], "shared_busy_time": seconds}`` where
    ``shared_channels`` lists channels on which *both* streams had busy
    intervals and ``shared_busy_time`` totals both tenants' busy time
    on those channels. Zero shared channels is the signature of hard
    (shard) isolation.
    """
    busy_a = _busy_intervals(trace, stream_a)
    busy_b = _busy_intervals(trace, stream_b)

    def total(spans: List[Tuple[float, float]]) -> float:
        return sum(end - start for start, end in spans)

    channels: Dict[str, Dict[str, float]] = {}
    for channel in sorted(set(busy_a) | set(busy_b)):
        channels[channel] = {
            stream_a: total(busy_a.get(channel, [])),
            stream_b: total(busy_b.get(channel, [])),
        }
    shared = [ch for ch, busy in channels.items()
              if busy[stream_a] > 0.0 and busy[stream_b] > 0.0]
    return {
        "channels": channels,
        "shared_channels": shared,
        "shared_busy_time": sum(sum(channels[ch].values())
                                for ch in shared),
    }


def _workloads() -> List[object]:
    return [GemmWorkload(n=64, tile=16, max_tiles=12),
            BfsWorkload(nodes=64, batch_rows=16)]


def _stream_summary(stream, solo_makespan: float) -> Dict[str, float]:
    summary = {
        "tiles": stream.tiles,
        "io_makespan": stream.io_makespan,
        "slowdown": (stream.io_makespan / solo_makespan
                     if solo_makespan > 0 else 0.0),
        "mean_io_latency": stream.mean_io_latency,
        "p95_io_latency": stream.p95_io_latency,
        "weight": stream.weight,
        "service_time": stream.service_time,
    }
    if stream.latency_target is not None:
        summary["slo"] = {"target": stream.latency_target,
                          "met": stream.slo_met,
                          "violated": stream.slo_violated}
    return summary


def isolation_sweep(profile: DeviceProfile = TINY_TEST,
                    queue_depth: int = 4,
                    weight: float = 3.0,
                    latency_target: Optional[float] = None,
                    shard_channels: Optional[Tuple[Sequence[int],
                                                   Sequence[int]]] = None,
                    devices: int = 1,
                    cache=None,
                    ) -> Dict[str, object]:
    """Interference sweep: solo → shared → weighted → sharded.

    ``weight`` is the favoured tenant's (GEMM's) share against the
    co-tenant's implicit 1.0; ``shard_channels`` overrides the default
    half/half channel split of the sharded regime. With ``devices > 1``
    the tenants co-run over a pool of that many simulated SSDs behind
    the cluster translation layer, and the sharded regime splits the
    *pool* instead of the channels: each tenant gets a disjoint device
    subset (:class:`~repro.runtime.PoolShardSpec`), so hard isolation
    holds at device rather than channel granularity. Returns a
    JSON-serialisable summary plus the shared- and sharded-regime
    :class:`TraceRecorder` objects under ``"traces"`` (pop that key
    before serialising).
    """
    workloads = _workloads()
    names = [w.name for w in workloads]
    if devices < 1:
        raise ValueError("devices must be >= 1")
    shard_devices: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
    if devices > 1:
        half_pool = devices // 2
        if half_pool == 0:
            raise ValueError("pools need at least 2 devices to shard")
        shard_devices = (tuple(range(half_pool)),
                         tuple(range(half_pool, devices)))
    if shard_channels is None:
        half = profile.geometry.channels // 2
        if half == 0:
            raise ValueError("profile needs at least 2 channels to shard")
        shard_channels = (tuple(range(half)),
                         tuple(range(half, profile.geometry.channels)))

    def system():
        if devices > 1:
            return SoftwareNdsSystem(profile, store_data=False,
                                     devices=devices, cache=cache)
        return SoftwareNdsSystem(profile, store_data=False, cache=cache)

    solo: Dict[str, float] = {}
    for workload in _workloads():
        result = co_run_workloads([workload], system(),
                                  queue_depth=queue_depth)
        solo[workload.name] = result.streams[workload.name].io_makespan

    scenarios: Dict[str, Dict[str, object]] = {}
    traces: Dict[str, TraceRecorder] = {}

    def run(key: str, arbitration: str,
            qos: Optional[Dict[str, QosSpec]]) -> None:
        trace = TraceRecorder()
        target = system()
        result = co_run_workloads(_workloads(), target,
                                  queue_depth=queue_depth,
                                  arbitration=arbitration,
                                  trace=trace, qos=qos)
        scenarios[key] = {
            "arbitration": arbitration,
            "streams": {name: _stream_summary(stream, solo[name])
                        for name, stream in result.streams.items()},
            "overlap": channel_overlap(trace, names[0], names[1]),
        }
        if cache is not None:
            scenarios[key]["cache"] = target.cache_report()
            stream_cache = target.scheduler.stream_cache_report()
            if stream_cache:
                scenarios[key]["stream_cache"] = stream_cache
        traces[key] = trace

    if shard_devices is not None:
        shards = (PoolShardSpec(devices=shard_devices[0]),
                  PoolShardSpec(devices=shard_devices[1]))
    else:
        shards = (ShardSpec(tuple(shard_channels[0])),
                  ShardSpec(tuple(shard_channels[1])))

    run("shared", "round_robin", None)
    run("weighted", "weighted",
        {names[0]: QosSpec(weight=weight, latency_target=latency_target),
         names[1]: QosSpec(weight=1.0, latency_target=latency_target)})
    run("sharded", "weighted",
        {names[0]: QosSpec(weight=weight, latency_target=latency_target,
                           shard=shards[0]),
         names[1]: QosSpec(weight=1.0, latency_target=latency_target,
                           shard=shards[1])})

    summary: Dict[str, object] = {
        "profile": profile.name,
        "queue_depth": queue_depth,
        "weight": weight,
        "devices": devices,
        "shard_channels": [list(shard_channels[0]),
                           list(shard_channels[1])],
        "solo_makespan": solo,
        "scenarios": scenarios,
        "traces": traces,
    }
    if shard_devices is not None:
        summary["shard_devices"] = [list(shard_devices[0]),
                                    list(shard_devices[1])]
    return summary
