"""Figure 2 — motivation: matrix multiplication with row-store
(sequential) vs sub-block storage formats (§2.1).

(a) Data already in main memory: the row-store pipeline needs an extra
CPU restructuring stage and takes ~2.11× the sub-block configuration.
(b) Data from the SSD: on top of the CPU overhead the row-store fetch
takes ~1.92× longer than an optimal sub-block layout, and the breakdown
splits into SSD / CPU / compute-kernel time.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_baseline, fresh_oracle, once
from repro.accelerator import KernelModel, RTX2080
from repro.analysis import PAPER, comparison_row, format_table
from repro.host import MemoryModel, run_pipeline

#: scaled geometry: the paper multiplies 32768² matrices in 8192² blocks
#: (1/4 ratio); we use 4096² data in 1024² blocks
N = 4096
TILE = 1024
ELEM = 4


def _kernel_time():
    return KernelModel(RTX2080).gemm(TILE, TILE, TILE, use_tensor_cores=True)


def _restructure_time():
    """CPU time to gather one TILE×TILE sub-block out of row-store rows
    already in main memory: one memcpy per row segment."""
    memory = MemoryModel()
    return memory.copy_time(TILE * TILE * ELEM, chunk_bytes=TILE * ELEM)


def test_fig2a_in_memory(benchmark):
    def run():
        kernel = _kernel_time()
        h2d = RTX2080.h2d_time(TILE * TILE * ELEM)
        restructure = _restructure_time()
        tiles = 16
        seq = run_pipeline([[restructure, h2d, kernel]] * tiles,
                           ["cpu", "h2d", "kernel"])
        sub = run_pipeline([[0.0, h2d, kernel]] * tiles,
                           ["cpu", "h2d", "kernel"])
        return seq.total_time, sub.total_time

    seq_time, sub_time = once(benchmark, run)
    ratio = seq_time / sub_time
    print()
    print(format_table(
        ["configuration", "relative time"],
        [["sub-block", "1.00"], ["row-store/sequential", f"{ratio:.2f}"]],
        title="Fig 2(a) MM from main memory"))
    print(format_table(["anchor", "paper", "measured", "delta"],
                       [comparison_row("row-store slowdown",
                                       PAPER.fig2a_row_store_slowdown,
                                       ratio)]))
    # Shape: restructuring the row-store costs roughly 2x end to end.
    assert 1.4 < ratio < 3.2


def test_fig2b_from_ssd(benchmark):
    def run():
        baseline = fresh_baseline()
        baseline.ingest("A", (N, N), ELEM)
        oracle = fresh_oracle()
        oracle.ingest("A", (N, N), ELEM, tile=(TILE, TILE))

        baseline.reset_time()
        seq_fetch = baseline.read_tile("A", (0, 0), (TILE, TILE)).elapsed
        oracle.reset_time()
        sub_fetch = oracle.read_tile("A", (0, 0), (TILE, TILE)).elapsed

        kernel = _kernel_time()
        h2d = RTX2080.h2d_time(TILE * TILE * ELEM)
        tiles = 16
        seq = run_pipeline([[seq_fetch, h2d, kernel]] * tiles,
                           ["ssd", "h2d", "kernel"])
        sub = run_pipeline([[sub_fetch, h2d, kernel]] * tiles,
                           ["ssd", "h2d", "kernel"])
        return seq_fetch, sub_fetch, seq, sub

    seq_fetch, sub_fetch, seq, sub = once(benchmark, run)
    fetch_ratio = seq_fetch / sub_fetch
    total_ratio = seq.total_time / sub.total_time
    breakdown = [
        ["row-store/sequential",
         f"{seq.busy_of('ssd') / seq.total_time:.0%}",
         f"{seq.busy_of('h2d') / seq.total_time:.0%}",
         f"{seq.busy_of('kernel') / seq.total_time:.0%}",
         f"{total_ratio:.2f}"],
        ["sub-block",
         f"{sub.busy_of('ssd') / sub.total_time:.0%}",
         f"{sub.busy_of('h2d') / sub.total_time:.0%}",
         f"{sub.busy_of('kernel') / sub.total_time:.0%}",
         "1.00"],
    ]
    print()
    print(format_table(
        ["configuration", "SSD share", "CPU/H2D share", "kernel share",
         "relative time"], breakdown, title="Fig 2(b) MM from the SSD"))
    print(format_table(["anchor", "paper", "measured", "delta"],
                       [comparison_row("fetch slowdown",
                                       PAPER.fig2b_fetch_slowdown,
                                       fetch_ratio)]))
    # Shape: fetching a sub-block from row-store data takes a multiple of
    # the optimal-layout fetch (the paper measures 1.92x at its scale;
    # at our shorter run lengths the penalty is larger), and the
    # end-to-end pipeline is SSD-bound in the sequential configuration.
    assert fetch_ratio > 1.5
    assert total_ratio > 1.3
    assert seq.busy_of("ssd") > seq.busy_of("kernel")
