"""repro — a from-scratch reproduction of *NDS: N-Dimensional Storage*
(Liu & Tseng, MICRO 2021).

The package provides:

* :mod:`repro.core` — the paper's contribution: multi-dimensional
  spaces, building blocks, the space translation layer (STL), the NDS
  API, and the NDS controller model;
* substrates — :mod:`repro.nvm` (flash array), :mod:`repro.ftl`
  (baseline SSD), :mod:`repro.interconnect`, :mod:`repro.host`,
  :mod:`repro.accelerator`, all on a small simulation kernel
  (:mod:`repro.sim`);
* :mod:`repro.systems` — the end-to-end architectures of Fig. 7
  (baseline, software NDS, hardware NDS) plus the software oracle;
* :mod:`repro.workloads` — the ten Table 1 applications and the
  pipelined runner;
* :mod:`repro.analysis` — paper-number calibration and reporting.

Quick start::

    from repro.nvm import PAPER_PROTOTYPE, FlashArray
    from repro.core import SpaceTranslationLayer, NdsApi

    flash = FlashArray(PAPER_PROTOTYPE.geometry, PAPER_PROTOTYPE.timing)
    api = NdsApi(SpaceTranslationLayer(flash))
    sid = api.create_space((4096, 4096), element_size=4)
    handle = api.open_space(sid)
    api.write(handle, (0, 0), (4096, 4096), my_matrix)
    tile, timing = api.read(handle, (1, 2), (512, 512), dtype="float32")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
