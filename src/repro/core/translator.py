"""The space translator (§4.3, Eq. 5).

Given a request — a coordinate in an application-defined space plus the
sub-dimensionality of the requested partition — the translator produces
the set of building blocks covering the partition, together with the
intra-block region and the position of that region inside the request
buffer. This is Eq. 5 of the paper: per axis *i* the block indices run
from ``floor(origin_i / bb_i)`` through
``floor((origin_i + extent_i - 1) / bb_i)``.

The translator also computes which *pages* of a block a partial access
touches (blocks store their elements row-major, split sequentially into
pages, §4.2), so partial reads fetch only the necessary units.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.space import Space

__all__ = ["BlockAccess", "translate", "translate_region",
           "pages_for_region", "region_volume",
           "set_translation_cache_limit", "translation_cache_limit",
           "translation_cache_stats", "reset_translation_cache_stats"]

#: per-Space entry cap for each memo cache. Tile plans revisit a small
#: set of (origin, shape) pairs, so the working set is tiny; the cap
#: only guards pathological workloads that sweep millions of distinct
#: regions. 0 disables caching entirely (the knob the equivalence
#: tests use to A/B the cached path against the raw walk).
_DEFAULT_CACHE_LIMIT = 4096
_cache_limit = _DEFAULT_CACHE_LIMIT
_cache_stats = {"region_hits": 0, "region_misses": 0,
                "pages_hits": 0, "pages_misses": 0}

#: switch the vectorized page walk on above this many outer rows (the
#: numpy setup cost beats the scalar loop from roughly a dozen rows)
_VECTOR_THRESHOLD = 16


def set_translation_cache_limit(limit: int) -> None:
    """Set the per-Space translation cache capacity (entries per cache;
    0 disables memoization). A full cache evicts its least-recently-used
    entry — hits refresh recency — so a working set one entry over the
    cap degrades gracefully instead of thrashing from a wholesale
    clear."""
    global _cache_limit
    if limit < 0:
        raise ValueError("cache limit must be >= 0")
    _cache_limit = int(limit)


def translation_cache_limit() -> int:
    return _cache_limit


def translation_cache_stats(space: Optional[Space] = None) -> dict:
    """Hit/miss counters over both memo caches.

    With ``space`` given, that space's own counters; without, the
    process-wide aggregate across every space (the historical behaviour,
    kept as a compat shim — prefer :meth:`Space.translation_cache_stats`
    when comparing systems, since the aggregate mixes every space,
    system, and pooled device in the process)."""
    if space is not None:
        return space.translation_cache_stats()
    return dict(_cache_stats)


def reset_translation_cache_stats(space: Optional[Space] = None) -> None:
    """Zero the aggregate counters, or one space's with ``space``."""
    if space is not None:
        space.reset_translation_cache_stats()
        return
    for key in _cache_stats:
        _cache_stats[key] = 0


@dataclass(frozen=True)
class BlockAccess:
    """One building block touched by a request.

    ``block_slice`` / ``out_slice`` are per-axis ``(start, stop)`` pairs
    relative to the block origin / the request origin respectively.
    """

    block_coord: Tuple[int, ...]
    block_slice: Tuple[Tuple[int, int], ...]
    out_slice: Tuple[Tuple[int, int], ...]

    @property
    def is_full_block(self) -> bool:
        return all(start == 0 for start, _stop in self.block_slice)

    def extent(self) -> Tuple[int, ...]:
        return tuple(stop - start for start, stop in self.block_slice)

    def element_count(self) -> int:
        count = 1
        for start, stop in self.block_slice:
            count *= stop - start
        return count


def region_volume(extents: Sequence[int]) -> int:
    volume = 1
    for extent in extents:
        volume *= extent
    return volume


def translate(space: Space, coordinate: Sequence[int],
              sub_dim: Sequence[int]) -> List[BlockAccess]:
    """Map a (coordinate, sub-dimensionality) request onto building
    blocks (Eq. 5). Blocks are emitted in row-major grid order."""
    space.validate_request(coordinate, sub_dim)
    origin = space.request_origin(coordinate, sub_dim)
    return translate_region(space, origin, tuple(sub_dim))


def translate_region(space: Space, origin: Sequence[int],
                     extents: Sequence[int]) -> List[BlockAccess]:
    """Raw-region variant of :func:`translate` (used by views, whose
    regions need not be partition-aligned).

    Results are memoized per Space keyed on ``(origin, extents)``:
    the mapping depends only on the space's immutable geometry, so a
    hit is always valid. Callers get a fresh list (the BlockAccess
    records themselves are frozen and shared)."""
    key = (tuple(origin), tuple(extents))
    cache = space._region_cache
    stats = space._translation_stats
    hit = cache.get(key)
    if hit is not None:
        stats["region_hits"] += 1
        _cache_stats["region_hits"] += 1
        cache.move_to_end(key)
        return list(hit)
    stats["region_misses"] += 1
    _cache_stats["region_misses"] += 1
    if len(origin) != space.rank or len(extents) != space.rank:
        raise ValueError("origin/extents rank mismatch")
    for axis, (o, f, d) in enumerate(zip(origin, extents, space.dims)):
        if f < 1 or o < 0 or o + f > d:
            raise ValueError(
                f"region [{o}, {o + f}) exceeds extent {d} on axis {axis}")
    axis_ranges = []
    for o, f, bb in zip(origin, extents, space.bb):
        first = o // bb
        last = (o + f - 1) // bb
        axis_ranges.append(range(first, last + 1))

    accesses: List[BlockAccess] = []
    for block_coord in itertools.product(*axis_ranges):
        block_slice = []
        out_slice = []
        for axis, y in enumerate(block_coord):
            bb = space.bb[axis]
            lo = max(origin[axis], y * bb)
            hi = min(origin[axis] + extents[axis], (y + 1) * bb)
            block_slice.append((lo - y * bb, hi - y * bb))
            out_slice.append((lo - origin[axis], hi - origin[axis]))
        accesses.append(BlockAccess(
            block_coord=tuple(block_coord),
            block_slice=tuple(block_slice),
            out_slice=tuple(out_slice),
        ))
    if _cache_limit:
        while len(cache) >= _cache_limit:
            cache.popitem(last=False)
        cache[key] = tuple(accesses)
    return accesses


def pages_for_region(space: Space,
                     block_slice: Sequence[Tuple[int, int]]) -> List[int]:
    """Page positions (0-based within the block) that a block region
    touches. Elements are row-major inside the block; pages split that
    byte stream sequentially.

    Memoized per Space keyed on ``block_slice`` (pure geometry, like
    :func:`translate_region`); large regions take a numpy-vectorized
    walk over the outer rows instead of the per-row Python loop."""
    key = tuple(tuple(pair) for pair in block_slice)
    cache = space._pages_cache
    stats = space._translation_stats
    hit = cache.get(key)
    if hit is not None:
        stats["pages_hits"] += 1
        _cache_stats["pages_hits"] += 1
        cache.move_to_end(key)
        return list(hit)
    stats["pages_misses"] += 1
    _cache_stats["pages_misses"] += 1
    bb = space.bb
    elem = space.element_size
    page = space.pages_per_block
    page_size_bytes = -(-space.block_bytes // page)
    full = all(start == 0 and stop == extent
               for (start, stop), extent in zip(block_slice, bb))
    if full:
        pages = list(range(page))
        if _cache_limit:
            while len(cache) >= _cache_limit:
                cache.popitem(last=False)
            cache[key] = tuple(pages)
        return pages

    # Walk contiguous runs: fix all axes but the last, the last axis is a
    # contiguous span of bytes in the block's row-major layout.
    last_start, last_stop = block_slice[-1]
    run_bytes = (last_stop - last_start) * elem
    strides = [elem] * len(bb)
    for axis in range(len(bb) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * bb[axis + 1]

    outer_rows = 1
    for start, stop in block_slice[:-1]:
        outer_rows *= stop - start
    if outer_rows >= _VECTOR_THRESHOLD:
        pages = _pages_vectorized(block_slice, strides, last_start, elem,
                                  run_bytes, page_size_bytes)
    else:
        page_set = set()
        outer_ranges = [range(start, stop)
                        for start, stop in block_slice[:-1]]
        for outer in itertools.product(*outer_ranges):
            offset = last_start * elem
            for axis, index in enumerate(outer):
                offset += index * strides[axis]
            first_page = offset // page_size_bytes
            last_page = (offset + run_bytes - 1) // page_size_bytes
            page_set.update(range(first_page, last_page + 1))
        pages = sorted(page_set)
    if _cache_limit:
        while len(cache) >= _cache_limit:
            cache.popitem(last=False)
        cache[key] = tuple(pages)
    return pages


def _pages_vectorized(block_slice: Sequence[Tuple[int, int]],
                      strides: Sequence[int], last_start: int, elem: int,
                      run_bytes: int, page_size_bytes: int) -> List[int]:
    """Vectorized equivalent of the per-row offset walk: build every
    outer-row byte offset with broadcast adds, then map run start/end
    bytes to page indices in bulk. Integer math throughout, so the
    result is identical to the scalar walk."""
    offsets = np.asarray([last_start * elem], dtype=np.int64)
    for (start, stop), stride in zip(block_slice[:-1], strides[:-1]):
        axis = np.arange(start, stop, dtype=np.int64) * stride
        offsets = (offsets[:, None] + axis[None, :]).ravel()
    first = offsets // page_size_bytes
    last = (offsets + (run_bytes - 1)) // page_size_bytes
    if int((last - first).max()) == 0:
        touched = _sorted_unique(first)
    else:
        spans = [np.arange(f, l + 1, dtype=np.int64)
                 for f, l in zip(first.tolist(), last.tolist())]
        touched = _sorted_unique(np.concatenate(spans))
    return touched.tolist()


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an int array. Same result as
    ``np.unique``, without it: ``np.unique`` drags in the lazily-imported
    ``numpy.ma`` machinery (a ~30 ms one-time stall that lands on the
    first translated region of a run) and carries masked/axis handling
    this hot path never needs."""
    if values.size == 0:
        return values
    ordered = np.sort(values)
    keep = np.empty(ordered.shape, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]
