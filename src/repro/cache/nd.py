"""N-D helpers of the cache tier: region keys, overlap, prefetch.

The NDS systems cache at *block-region* granularity — the exact
``(block_coord, block_slice)`` a translated access touches — so the
tier only ever holds bytes the host actually fetched, and the
single-row reads of embedding serving are individually cacheable.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["region_key", "region_group", "slices_overlap",
           "neighbor_regions"]


def region_key(dataset: str, access) -> Tuple:
    """Cache key of one translated block access."""
    return ("nd", dataset, access.block_coord, access.block_slice)


def region_group(dataset: str, access) -> Tuple:
    """Locality bucket: all regions of one building block, so write
    coherence only scans entries that can possibly overlap."""
    return ("nd", dataset, access.block_coord)


def slices_overlap(a: Sequence[Tuple[int, int]],
                   b: Sequence[Tuple[int, int]]) -> bool:
    """Axis-aligned interval overlap of two block slices."""
    for (a_lo, a_hi), (b_lo, b_hi) in zip(a, b):
        if a_hi <= b_lo or b_hi <= a_lo:
            return False
    return True


def neighbor_regions(dims: Sequence[int], origin: Sequence[int],
                     extents: Sequence[int],
                     depth: int) -> List[Tuple[Tuple[int, ...],
                                               Tuple[int, ...]]]:
    """Forward neighbor regions along each accessed axis.

    For every axis whose extent does not already cover the dimension,
    emit up to ``depth`` regions obtained by advancing the origin by one
    region extent per step (the next embedding rows, the next tile
    column, ...), clipped out when they would cross the bound. Order is
    deterministic: axis-major, nearest first.
    """
    regions: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    origin = tuple(int(o) for o in origin)
    extents = tuple(int(e) for e in extents)
    for axis, (o, e, d) in enumerate(zip(origin, extents, dims)):
        if e >= d:
            continue
        for step in range(1, depth + 1):
            shifted = o + step * e
            if shifted + e > d:
                break
            neighbor = list(origin)
            neighbor[axis] = shifted
            regions.append((tuple(neighbor), extents))
    return regions
