"""Host ↔ device link model.

One FCFS :class:`~repro.sim.resources.Timeline` carries every transfer.
Each transfer pays a fixed per-command overhead plus ``size/bandwidth``
— the model behind the paper's [P2]: small requests cannot amortize the
per-transaction cost, so a 32 KB request reaches only ~66 % of peak
while ≥ 2 MB requests saturate (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.resources import Timeline
from repro.sim.stats import StatSet

__all__ = ["Link", "LinkTransfer"]


@dataclass
class LinkTransfer:
    """One completed link transfer."""

    start_time: float
    end_time: float
    num_bytes: int

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time


class Link:
    """A full-duplex-agnostic (single shared pipe) interconnect.

    Parameters
    ----------
    bandwidth:
        Peak payload bandwidth, bytes/second.
    command_overhead:
        Per-transfer fixed cost in seconds (doorbell, DMA setup,
        protocol framing).
    """

    def __init__(self, bandwidth: float, command_overhead: float,
                 name: str = "link") -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if command_overhead < 0:
            raise ValueError("command_overhead must be non-negative")
        self.bandwidth = bandwidth
        self.command_overhead = command_overhead
        self.line = Timeline(name)
        self.stats = StatSet()
        #: optional per-layer span recorder (set via the owning
        #: system's ``set_trace``)
        self.trace = None
        #: optional metrics registry (set via ``set_metrics``)
        self.metrics = None

    def transfer_duration(self, num_bytes: int) -> float:
        return self.command_overhead + num_bytes / self.bandwidth

    def transfer(self, num_bytes: int, earliest_start: float) -> LinkTransfer:
        """Occupy the link for one transfer; returns actual interval."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        start, end = self.line.reserve(earliest_start,
                                       self.transfer_duration(num_bytes))
        self.stats.count("transfers")
        self.stats.count("bytes", num_bytes)
        if self.trace is not None:
            self.trace.span("link", start, end, name="link_transfer",
                            bytes=num_bytes)
        if self.metrics is not None:
            self.metrics.observe("link.transfer", end - start)
            self.metrics.count("link.bytes", num_bytes)
        return LinkTransfer(start_time=start, end_time=end, num_bytes=num_bytes)

    def efficiency(self, request_bytes: int) -> float:
        """Achieved fraction of peak bandwidth at a given request size."""
        if request_bytes <= 0:
            return 0.0
        ideal = request_bytes / self.bandwidth
        return ideal / self.transfer_duration(request_bytes)

    def effective_bandwidth(self, request_bytes: int) -> float:
        """Achieved bytes/second for back-to-back requests of one size."""
        return self.bandwidth * self.efficiency(request_bytes)

    def reset_time(self) -> None:
        self.line.reset()
