"""Tests for §5.1 space expand/shrink."""

import numpy as np
import pytest

from repro.core import SpaceNotFoundError
from repro.core.api import array_to_bytes, bytes_to_array


class TestGrow:
    def test_data_survives_growth(self, tiny_stl, rng):
        stl = tiny_stl
        space = stl.create_space((32, 32), 4)
        data = rng.integers(0, 2**31, (32, 32)).astype(np.int32)
        stl.write(space.space_id, (0, 0), (32, 32),
                  data=array_to_bytes(data))
        resized = stl.resize_space(space.space_id, (64, 48))
        assert resized.dims == (64, 48)
        assert resized.bb == space.bb  # blocks are immutable
        old = stl.read_region(space.space_id, (0, 0), (32, 32))
        assert np.array_equal(bytes_to_array(old.data, np.int32), data)

    def test_new_region_is_writable(self, tiny_stl, rng):
        stl = tiny_stl
        space = stl.create_space((32, 32), 4)
        stl.resize_space(space.space_id, (64, 32))
        patch = rng.integers(0, 2**31, (16, 16)).astype(np.int32)
        stl.write_region(space.space_id, (40, 8), (16, 16),
                         data=array_to_bytes(patch))
        result = stl.read_region(space.space_id, (40, 8), (16, 16))
        assert np.array_equal(bytes_to_array(result.data, np.int32), patch)

    def test_grown_bounds_enforced(self, tiny_stl):
        stl = tiny_stl
        space = stl.create_space((32, 32), 4)
        stl.resize_space(space.space_id, (64, 32))
        with pytest.raises(ValueError):
            stl.read_region(space.space_id, (0, 0), (65, 32))


class TestShrink:
    def test_out_of_range_blocks_released(self, tiny_stl, rng):
        stl = tiny_stl
        space = stl.create_space((64, 64), 4)
        data = rng.integers(0, 2**31, (64, 64)).astype(np.int32)
        stl.write(space.space_id, (0, 0), (64, 64),
                  data=array_to_bytes(data))
        reverse_before = len(stl.gc.reverse)
        stl.resize_space(space.space_id, (32, 32))
        assert len(stl.gc.reverse) < reverse_before
        assert stl.stats.get_count("resize_units_released") > 0
        kept = stl.read_region(space.space_id, (0, 0), (32, 32))
        assert np.array_equal(bytes_to_array(kept.data, np.int32),
                              data[:32, :32])

    def test_shrunk_bounds_enforced(self, tiny_stl):
        stl = tiny_stl
        space = stl.create_space((64, 64), 4)
        stl.resize_space(space.space_id, (32, 32))
        with pytest.raises(ValueError):
            stl.read_region(space.space_id, (0, 0), (64, 64))

    def test_shrink_then_regrow_reads_zeros_outside(self, tiny_stl, rng):
        stl = tiny_stl
        space = stl.create_space((64, 32), 4)
        data = rng.integers(1, 2**31, (64, 32)).astype(np.int32)
        stl.write(space.space_id, (0, 0), (64, 32),
                  data=array_to_bytes(data))
        stl.resize_space(space.space_id, (32, 32))
        stl.resize_space(space.space_id, (64, 32))
        result = stl.read_region(space.space_id, (48, 0), (16, 32))
        # fully-released blocks read back as zeros after regrowth
        tail = bytes_to_array(result.data, np.int32)
        assert tail.sum() == 0


class TestValidation:
    def test_rank_change_rejected(self, tiny_stl):
        stl = tiny_stl
        space = stl.create_space((32, 32), 4)
        with pytest.raises(ValueError):
            stl.resize_space(space.space_id, (32, 32, 2))

    def test_unknown_space(self, tiny_stl):
        with pytest.raises(SpaceNotFoundError):
            tiny_stl.resize_space(99, (8, 8))


class TestApiPassthrough:
    def test_api_resize(self, tiny_stl, rng):
        from repro.core import NdsApi
        import numpy as np
        api = NdsApi(tiny_stl)
        sid = api.create_space((32, 32), 4)
        handle = api.open_space(sid)
        data = rng.integers(0, 99, (32, 32)).astype(np.int32)
        api.write(handle, (0, 0), (32, 32), data)
        assert api.resize_space(sid, (64, 32)) == sid
        assert api.space(sid).dims == (64, 32)
