#!/usr/bin/env python3
"""Quickstart: create an NDS space, store a matrix, read it back in any
dimensionality.

This exercises the core public API (repro.core) on the paper's
prototype device model: spaces, building blocks, coordinate+
sub-dimensionality addressed reads/writes, and views.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import NdsApi, SpaceTranslationLayer
from repro.nvm import PAPER_PROTOTYPE, FlashArray


def main() -> None:
    # An NDS-compliant device: the flash array plus the space
    # translation layer (STL) that replaces the conventional FTL.
    profile = PAPER_PROTOTYPE
    flash = FlashArray(profile.geometry, profile.timing, store_data=True)
    api = NdsApi(SpaceTranslationLayer(flash))

    # 1. The dataset producer creates a 2-D space of 4-byte elements.
    #    The STL sizes building blocks from the device geometry (Eq. 1/2).
    space_id = api.create_space((1024, 1024), element_size=4)
    space = api.space(space_id)
    print(f"space {space_id}: dims={space.dims}, building block={space.bb} "
          f"({space.pages_per_block} pages across "
          f"{profile.geometry.channels} channels)")

    # 2. Write the matrix under the producer's own view.
    producer = api.open_space(space_id)
    matrix = np.arange(1024 * 1024, dtype=np.int32).reshape(1024, 1024)
    write = api.write(producer, (0, 0), (1024, 1024), matrix)
    bandwidth = matrix.nbytes / write.elapsed
    print(f"wrote {matrix.nbytes >> 20} MiB in {write.elapsed * 1e3:.1f} ms "
          f"(device-internal {bandwidth / 1e6:.0f} MB/s)")

    # 3. Read an arbitrary tile — one command, no host marshalling code.
    flash.reset_time()  # fresh measurement window after the ingest
    tile, timing = api.read(producer, (1, 2), (256, 256), dtype=np.int32)
    assert np.array_equal(tile, matrix[256:512, 512:768])
    print(f"256x256 tile fetched in {timing.elapsed * 1e6:.0f} us, "
          f"touching {timing.pages_touched} pages in "
          f"{len(timing.blocks)} building blocks")

    # 4. A consumer opens the same space under a different
    #    dimensionality (volumes must match — §3 of the paper).
    consumer = api.open_space(space_id, view=(2048, 512))
    reshaped, _ = api.read(consumer, (0, 0), (64, 512), dtype=np.int32)
    assert np.array_equal(reshaped, matrix.reshape(2048, 512)[:64])
    print("consumer view (2048, 512) reads the same bytes — no "
          "producer-side changes, no restructuring code")

    # 5. Column reads are as natural as row reads (the linear-LBA
    #    pathology of Fig. 9(b) does not exist here).
    flash.reset_time()
    column, timing = api.read(producer, (0, 17), (1024, 1))
    print(f"a full column costs {timing.pages_touched} page reads "
          f"({timing.elapsed * 1e6:.0f} us)")

    api.close_space(consumer)
    api.close_space(producer)
    print("done.")


if __name__ == "__main__":
    main()
