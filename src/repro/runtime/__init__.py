"""The request spine: typed tile requests, multi-tenant scheduling and
per-layer tracing.

Paper Figures 7–10 are statements about *how requests flow* — host
software stack → link → controller → flash → link → host placement.
This package makes that flow an explicit, schedulable object instead of
a call stack:

* :class:`~repro.runtime.tileop.TileOp` — one typed dataset-level
  request (read/write/ingest a tile);
* :class:`~repro.runtime.scheduler.RequestScheduler` — admits N
  concurrent request streams (tenants) against one storage system's
  shared resource timelines, with per-stream queue depth and FIFO or
  round-robin arbitration;
* :class:`~repro.runtime.trace.TraceRecorder` — per-layer spans (STL
  translate, FTL map, channel/bank occupancy, link transfer, host copy)
  with Chrome ``trace_event`` JSON export and aggregate per-resource
  metrics.

Single-stream schedules stay bit-identical to the direct analytic
flows: the scheduler adds sequencing, never timing.
"""

from repro.runtime.qos import PoolShardSpec, QosSpec, ShardSpec
from repro.runtime.scheduler import (QueueDepthWindow, RequestScheduler,
                                     StreamHandle, percentile)
from repro.runtime.tileop import TileOp
from repro.runtime.trace import TraceRecorder, TraceSpan

__all__ = [
    "TileOp",
    "RequestScheduler",
    "StreamHandle",
    "QueueDepthWindow",
    "QosSpec",
    "ShardSpec",
    "PoolShardSpec",
    "percentile",
    "TraceRecorder",
    "TraceSpan",
]
