"""Exception hierarchy of the NDS core."""

from __future__ import annotations

__all__ = [
    "NdsError",
    "SpaceNotFoundError",
    "SpaceClosedError",
    "InvalidCoordinateError",
    "ViewVolumeError",
    "CapacityError",
]


class NdsError(Exception):
    """Base class for all NDS-level failures."""


class SpaceNotFoundError(NdsError, KeyError):
    """Unknown space identifier."""


class SpaceClosedError(NdsError):
    """Operation on a closed or deleted space handle."""


class InvalidCoordinateError(NdsError, ValueError):
    """Coordinate/sub-dimensionality outside the space bounds or with
    mismatched rank."""


class ViewVolumeError(NdsError, ValueError):
    """A consumer view whose volume differs from the producer space
    (§3: views must have matching volumes)."""


class CapacityError(NdsError, RuntimeError):
    """The device cannot supply free units even after garbage collection."""
