"""Discrete-event / analytic simulation kernel used by every substrate."""

from repro.sim.engine import SimulationError, Simulator
from repro.sim.resources import MultiTimeline, Timeline
from repro.sim.queues import BoundedPipelineResult, bounded_pipeline
from repro.sim.stats import BandwidthSample, StatSet, effective_bandwidth

__all__ = [
    "Simulator",
    "SimulationError",
    "Timeline",
    "MultiTimeline",
    "StatSet",
    "BandwidthSample",
    "effective_bandwidth",
    "bounded_pipeline",
    "BoundedPipelineResult",
]
