"""PageRank (Table 1: graph, 2-D kernel, full-width stripes).

GraphBLAST-style rank propagation: the kernel consumes full-width
adjacency stripes (4096×65536 in the paper), so its access pattern is
relatively layout-friendly — PageRank sits between BFS (no gain) and
GEMM (large gain) on the Fig. 10(a) spectrum.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import pagerank_graph

__all__ = ["PageRankWorkload"]


class PageRankWorkload(Workload):
    name = "PageRank"
    category = "Graph"
    data_dim_label = "2D"
    kernel_dim_label = "2D"

    def __init__(self, nodes: int = 4096, stripe: int = 1024,
                 damping: float = 0.85, max_tiles: int = 64) -> None:
        if nodes % stripe != 0:
            raise ValueError("stripe must divide nodes")
        self.nodes = nodes
        self.stripe = stripe
        self.damping = damping
        self.max_tiles = max_tiles

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset("graph", (self.nodes, self.nodes), 4)]

    def tile_plan(self) -> List[TileFetch]:
        """Destination-sorted shards (GraphChi-style): each fetch is a
        full-height *column* stripe — all in-edges of one destination
        block — which crosses the row-major adjacency layout."""
        plan: List[TileFetch] = []
        for stripe in range(self.nodes // self.stripe):
            plan.append(TileFetch("graph", (0, stripe * self.stripe),
                                  (self.nodes, self.stripe)))
            if len(plan) >= self.max_tiles:
                break
        return plan

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        return kernels.spmv_pass(self.nodes, self.stripe, element_size=4)

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {"graph": pagerank_graph(self.nodes,
                                        seed=int(rng.integers(2**31)))}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """Power iteration to a fixed tolerance."""
        adjacency = inputs["graph"].astype(np.float64)
        nodes = adjacency.shape[0]
        out_degree = adjacency.sum(axis=1)
        transition = np.divide(adjacency, out_degree[:, None],
                               out=np.zeros_like(adjacency),
                               where=out_degree[:, None] > 0)
        rank = np.full(nodes, 1.0 / nodes)
        teleport = (1.0 - self.damping) / nodes
        for _ in range(200):
            dangling = rank[out_degree == 0].sum() / nodes
            updated = teleport + self.damping * (rank @ transition + dangling)
            if np.abs(updated - rank).sum() < 1e-12:
                rank = updated
                break
            rank = updated
        return rank
