"""Whole-device loss under cross-device parity.

The headline fault-tolerance claim: with a 4-device pool and
cross-device XOR parity, a scripted ``FaultPlan.kill_device`` mid-run
loses zero data — every read reconstructs through degraded XOR, and
the dead device's extents are rebuilt onto survivors on first touch.
"""

import numpy as np
import pytest

from repro.core.errors import DegradedReadError
from repro.faults import FaultConfig, FaultPlan
from repro.nvm import TINY_TEST
from repro.systems import HardwareNdsSystem, SoftwareNdsSystem

N = 64
KILL_AT = 0.02  # comfortably after ingest settles


def _system(cls, victim=2, parity=True, devices=4):
    plan = FaultPlan().kill_device(victim, at=KILL_AT)
    faults = FaultConfig(parity=parity, plan=plan)
    return cls(TINY_TEST, store_data=True, devices=devices, faults=faults)


def _data(seed=3):
    return np.random.default_rng(seed).integers(
        0, 2**31, size=(N, N), dtype=np.int32)


@pytest.mark.parametrize("cls", [SoftwareNdsSystem, HardwareNdsSystem],
                         ids=["software-nds", "hardware-nds"])
def test_device_kill_reconstructs_every_read(cls):
    system = _system(cls)
    data = _data()
    system.ingest("M", (N, N), 4, data=data)

    layout = next(iter(system.cluster.layouts.values()))
    victim_extents = [x.index for x in layout.extents if x.device == 2]
    assert victim_extents, "layout must place at least one extent on d2"

    now = KILL_AT + 1e-3
    band = N // 4
    for row in range(0, N, band):
        result = system.read_tile("M", (row, 0), (band, N),
                                  start_time=now, with_data=True,
                                  dtype=np.dtype(np.int32))
        assert np.array_equal(result.data, data[row:row + band]), (
            f"rows {row}..{row + band} lost after device kill")
        now = result.end_time

    counters = system.fault_counters()
    assert counters["cluster_degraded_reads"] >= 1
    assert counters["cluster_rebuilds"] >= len(victim_extents)
    # every affected extent was relocated off the dead device
    for x in layout.extents:
        assert x.device != 2
        assert x.generation >= (1 if x.index in victim_extents else 0)


def test_write_after_kill_keeps_parity_consistent():
    system = _system(SoftwareNdsSystem)
    data = _data(5)
    system.ingest("M", (N, N), 4, data=data)

    new_band = np.full((16, N), 7, dtype=np.int32)
    now = KILL_AT + 1e-3
    write = system.write_tile("M", (32, 0), (16, N), data=new_band,
                              start_time=now)
    data[32:48] = new_band
    result = system.read_tile("M", (0, 0), (N, N),
                              start_time=write.end_time, with_data=True,
                              dtype=np.dtype(np.int32))
    assert np.array_equal(result.data, data)


def test_kill_without_parity_raises_typed_error():
    system = _system(SoftwareNdsSystem, parity=False)
    data = _data(9)
    system.ingest("M", (N, N), 4, data=data)
    layout = next(iter(system.cluster.layouts.values()))
    victim_rows = next(x.row_start for x in layout.extents if x.device == 2)
    with pytest.raises(DegradedReadError):
        system.read_tile("M", (victim_rows, 0), (16, N),
                         start_time=KILL_AT + 1e-3, with_data=True)


def test_second_device_loss_in_group_is_fatal():
    """Parity tolerates exactly one device per group — a second death
    must surface as a typed error, not silent corruption."""
    system = _system(SoftwareNdsSystem)
    data = _data(13)
    system.ingest("M", (N, N), 4, data=data)
    layout = next(iter(system.cluster.layouts.values()))
    # kill a second device hosting another member of the same group
    group = next(x.group for x in layout.extents if x.device == 2)
    other = next(x.device for x in layout.extents
                 if x.group == group and x.device != 2)
    system.cluster.pool.observe(KILL_AT + 1e-4)
    system.cluster.pool.kill_now(other)
    victim_rows = next(x.row_start for x in layout.extents
                       if x.device == 2 and x.group == group)
    with pytest.raises(DegradedReadError):
        system.read_tile("M", (victim_rows, 0), (16, N),
                         start_time=KILL_AT + 1e-3, with_data=True)


def test_degraded_read_spans_timed_run_without_data():
    """Timing-only pools degrade too: reads complete (no payload to
    verify) and the trace records the reconstruction."""
    from repro.runtime.trace import TraceRecorder

    plan = FaultPlan().kill_device(1, at=KILL_AT)
    system = SoftwareNdsSystem(TINY_TEST, devices=4,
                               faults=FaultConfig(parity=True, plan=plan))
    trace = TraceRecorder()
    system.set_trace(trace)
    system.ingest("M", (N, N), 4)
    layout = next(iter(system.cluster.layouts.values()))
    victim_rows = next(x.row_start for x in layout.extents if x.device == 1)
    result = system.read_tile("M", (victim_rows, 0), (16, N),
                              start_time=KILL_AT + 1e-3)
    assert result.end_time > KILL_AT
    names = {span.name for span in trace.spans if span.instant}
    assert "rebuild_extent" in names
