"""Tests for the page-mapped FTL and its striped allocation."""

import pytest

from repro.ftl import OutOfSpaceError, PageMapFTL, PlaneAllocator
from repro.nvm import Geometry


@pytest.fixture
def geometry():
    return Geometry(channels=4, banks_per_channel=2, blocks_per_bank=4,
                    pages_per_block=8, page_size=256)


@pytest.fixture
def ftl(geometry):
    return PageMapFTL(geometry)


class TestStripeTarget:
    def test_consecutive_lpns_cycle_channels(self, ftl):
        channels = [ftl.stripe_target(lpn)[0] for lpn in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_banks_cycle_after_channels(self, ftl):
        banks = [ftl.stripe_target(lpn)[1] for lpn in range(0, 16, 4)]
        assert banks == [0, 1, 0, 1]


class TestAllocate:
    def test_allocation_honours_stripe_target(self, ftl):
        for lpn in range(16):
            ppa, old = ftl.allocate(lpn)
            assert old is None
            assert (ppa.channel, ppa.bank) == ftl.stripe_target(lpn)

    def test_overwrite_invalidates_old(self, ftl):
        first, _ = ftl.allocate(0)
        second, old = ftl.allocate(0)
        assert old == first
        assert second != first
        assert (second.channel, second.bank) == (first.channel, first.bank)
        plane = ftl.planes[(first.channel, first.bank)]
        assert not plane.blocks[first.block].valid[first.page]

    def test_lookup(self, ftl):
        assert ftl.lookup(5) is None
        ppa, _ = ftl.allocate(5)
        assert ftl.lookup(5) == ppa

    def test_trim(self, ftl):
        ppa, _ = ftl.allocate(3)
        assert ftl.trim(3) == ppa
        assert ftl.lookup(3) is None
        assert ftl.trim(3) is None

    def test_mapped_pages(self, ftl):
        for lpn in range(10):
            ftl.allocate(lpn)
        assert ftl.mapped_pages() == 10


class TestPlaneAllocator:
    def test_exhaustion_raises(self, geometry):
        plane = PlaneAllocator(0, 0, geometry)
        for _ in range(geometry.pages_per_bank):
            plane.allocate_page()
        with pytest.raises(OutOfSpaceError):
            plane.allocate_page()

    def test_free_page_count_decreases(self, geometry):
        plane = PlaneAllocator(0, 0, geometry)
        start = plane.free_page_count()
        plane.allocate_page()
        assert plane.free_page_count() == start - 1

    def test_release_returns_block_to_pool(self, geometry):
        plane = PlaneAllocator(0, 0, geometry)
        pages = [plane.allocate_page() for _ in range(geometry.pages_per_block)]
        block = pages[0].block
        for ppa in pages:
            plane.invalidate(ppa)
        plane.release_block(block)
        assert plane.free_page_count() == geometry.pages_per_bank
        assert plane.blocks[block].erase_count == 1

    def test_victims_are_fully_written_most_invalid_first(self, geometry):
        plane = PlaneAllocator(0, 0, geometry)
        block_a = [plane.allocate_page() for _ in range(8)]
        block_b = [plane.allocate_page() for _ in range(8)]
        # invalidate more pages in block B
        plane.invalidate(block_a[0])
        for ppa in block_b[:4]:
            plane.invalidate(ppa)
        victims = plane.victim_candidates()
        assert victims[0] == block_b[0].block
        assert set(victims) == {block_a[0].block, block_b[0].block}

    def test_active_block_is_not_a_victim(self, geometry):
        plane = PlaneAllocator(0, 0, geometry)
        plane.allocate_page()  # partially fills the active block
        assert plane.victim_candidates() == []

    def test_lazy_block_state(self, geometry):
        plane = PlaneAllocator(0, 0, geometry)
        assert plane.blocks == {}
        plane.allocate_page()
        assert len(plane.blocks) == 1
