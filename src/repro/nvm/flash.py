"""The flash array: functional page store + timed operation scheduling.

This is the lowest substrate layer. It models:

* **Structure** — channels × banks × blocks × pages (:class:`Geometry`).
* **Timing** — FCFS scheduling over per-bank and per-channel
  :class:`~repro.sim.resources.Timeline` servers. A read occupies the
  bank for ``t_read`` and then the channel for the page transfer; a
  program transfers over the channel first and then occupies the bank
  for ``t_program``. Banks behind one channel pipeline naturally; this
  reproduces the channel-level and bank-level parallelism the paper's
  STL exploits (§2.1, §4.1).
* **Semantics** — program-once/erase-block NAND rules. Programming a
  page that is already programmed raises; erases reset a whole block.
  This keeps the FTL and the STL honest.
* **Data** — optional byte-accurate page contents (numpy ``uint8``
  arrays) so that every higher layer can be verified functionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.errors import (EraseFailError, ProgramFailError,
                                 UncorrectableError)
from repro.nvm.address import PhysicalPageAddress, ppa_to_index
from repro.nvm.geometry import Geometry
from repro.nvm.timing import NvmTiming
from repro.sim.resources import Timeline
from repro.sim.stats import StatSet

__all__ = ["FlashArray", "FlashOpResult", "FlashStateError", "EccError"]


class FlashStateError(RuntimeError):
    """Violation of NAND program/erase semantics."""


def _page_checksum(page: "np.ndarray") -> int:
    """Cheap ECC stand-in: XOR-fold of the page's 32-bit words."""
    words = page[: (page.size // 4) * 4].view(np.uint32)
    folded = int(np.bitwise_xor.reduce(words)) if words.size else 0
    return folded ^ int(page[(page.size // 4) * 4:].sum())


class EccError(RuntimeError):
    """Uncorrectable bit error detected on a page read.

    Real NAND pages carry ECC in their out-of-band area; the model keeps
    a checksum per programmed page and raises when a read encounters
    injected corruption — the hook for failure-injection tests."""


@dataclass
class FlashOpResult:
    """Outcome of a batch of page operations.

    ``start_time`` is when the batch was issued, ``end_time`` when the
    last page finished. ``completions`` holds per-page completion times
    in issue order.
    """

    start_time: float
    end_time: float
    completions: List[float] = field(default_factory=list)
    stats: StatSet = field(default_factory=StatSet)

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time


class FlashArray:
    """A multi-channel, multi-bank NVM array.

    Parameters
    ----------
    geometry, timing:
        Structure and latency parameters.
    store_data:
        When True (default) page contents are kept and NAND semantics
        are enforced; timing-only mode skips both for speed.
    """

    def __init__(self, geometry: Geometry, timing: NvmTiming,
                 store_data: bool = True) -> None:
        self.geometry = geometry
        self.timing = timing
        self.store_data = store_data
        self.channel_lines = [Timeline(f"ch{c}") for c in range(geometry.channels)]
        self.bank_lines = [
            [Timeline(f"ch{c}/bk{b}") for b in range(geometry.banks_per_channel)]
            for c in range(geometry.channels)
        ]
        #: bank timelines indexed by flat plane id (channel-major), the
        #: columnar core's lookup table
        self._bank_lines_flat = [line for row in self.bank_lines
                                 for line in row]
        #: dense per-plane free_at/busy_time scratch reused across
        #: columnar calls (only entries of involved planes are read)
        self._bank_free_scratch = np.zeros(len(self._bank_lines_flat))
        self._bank_busy_scratch = np.zeros(len(self._bank_lines_flat))
        self._pages: Dict[int, np.ndarray] = {}
        self._programmed: set = set()
        #: page-index -> checksum of the programmed content (the ECC
        #: model); pages whose content diverges raise on verified reads
        self._checksums: Dict[int, int] = {}
        self.stats = StatSet()
        #: optional per-layer span recorder (set via the owning
        #: system's ``set_trace``): records channel/bank occupancy
        self.trace = None
        #: optional metrics registry (set via ``set_metrics``)
        self.metrics = None
        #: optional :class:`~repro.faults.injector.FaultInjector`; with
        #: None (default) every path is bit-identical to the fault-free
        #: model — no bookkeeping, no draws, no extra reservations
        self.faults = None
        #: batched fan-out switch: when True (default) and no faults /
        #: trace / metrics are attached, read and program batches run an
        #: inlined reserve chain that performs the exact same float
        #: operations in the exact same order as the per-page path —
        #: bit-identical timings, a fraction of the interpreter work.
        #: Set False to force the per-page path (A/B equivalence tests).
        self.fast_path = True
        #: columnar core switch: wide batches (and parallel enough
        #: across channels) run the chain as numpy column operations —
        #: one vector op per pipeline depth level instead of one Python
        #: iteration per page. Channels are independent servers and
        #: within-channel order is preserved, so every float operation
        #: still happens with the identical operands: timings stay
        #: bit-identical either way (CI A/Bs the two paths). Off by
        #: default: on hosts where a numpy ufunc dispatch costs ~1 µs
        #: (containerized single-core runners, including this repo's
        #: CI) the measured crossover never arrives — the inlined
        #: scalar chain runs at ~0.2 µs/page, so per-bank snapshot and
        #: column extraction eat the vector win at every realistic
        #: batch shape (see docs/PERFORMANCE.md for the numbers). On
        #: hosts with cheap numpy dispatch, enable it for epoch-scale
        #: batches.
        self.columnar = False
        #: minimum batch size before the columnar core engages when the
        #: caller supplies integer column hints; without hints the
        #: per-page column extraction itself costs as much as the
        #: scalar chain, so the threshold is four times higher
        self.columnar_min_pages = 32

    def attach_faults(self, injector) -> None:
        """Attach a fault injector (None detaches). Attach before any
        timed operations so wear/retention bookkeeping is complete."""
        self.faults = injector

    # ------------------------------------------------------------------
    # functional access
    # ------------------------------------------------------------------
    def page_data(self, ppa: PhysicalPageAddress,
                  verify: bool = True) -> np.ndarray:
        """Contents of a programmed page (zero-filled if never written
        with data, e.g. timing-only programs).

        ``verify`` checks the page's ECC checksum and raises
        :class:`EccError` on injected corruption."""
        idx = ppa_to_index(ppa, self.geometry)
        data = self._pages.get(idx)
        if data is None:
            return np.zeros(self.geometry.page_size, dtype=np.uint8)
        if verify and idx in self._checksums:
            if _page_checksum(data) != self._checksums[idx]:
                raise EccError(f"uncorrectable bit error in {ppa}")
        return data

    def corrupt_page(self, ppa: PhysicalPageAddress,
                     byte_offset: int = 0) -> None:
        """Failure injection: flip bits in a programmed page's stored
        content so the next verified read raises :class:`EccError`."""
        idx = ppa_to_index(ppa, self.geometry)
        data = self._pages.get(idx)
        if data is None:
            raise FlashStateError(f"page {ppa} holds no data to corrupt")
        data[byte_offset % data.size] ^= 0xFF

    def is_programmed(self, ppa: PhysicalPageAddress) -> bool:
        return ppa_to_index(ppa, self.geometry) in self._programmed

    # ------------------------------------------------------------------
    # timed operations
    # ------------------------------------------------------------------
    def read_pages(self, ppas: Sequence[PhysicalPageAddress],
                   start_time: float = 0.0,
                   columns: Optional[Tuple[Sequence[int], Sequence[int]]]
                   = None) -> FlashOpResult:
        """Read a batch of pages issued in order at ``start_time``.

        Returns per-page completion times; the scheduler exposes exactly
        as much channel/bank parallelism as the addresses allow, which
        is the effect the paper's Figures 1 and 5 are about.
        ``columns``, when given, carries the batch's ``(channels,
        banks)`` as plain integer sequences so the columnar core skips
        the per-page attribute extraction; it must match ``ppas``.
        """
        result = FlashOpResult(start_time=start_time, end_time=start_time)
        if (self.fast_path and self.faults is None and self.trace is None
                and self.metrics is None):
            result.end_time = self._read_chain(ppas, start_time,
                                               result.completions,
                                               columns=columns)
        else:
            for ppa in ppas:
                end = self._read_one(ppa, start_time)
                result.completions.append(end)
                if end > result.end_time:
                    result.end_time = end
        result.stats.count("pages_read", len(ppas))
        self.stats.count("pages_read", len(ppas))
        return result

    def program_pages(self, ppas: Sequence[PhysicalPageAddress],
                      start_time: float = 0.0,
                      data: Optional[Sequence[Optional[np.ndarray]]] = None,
                      columns: Optional[Tuple[Sequence[int], Sequence[int]]]
                      = None) -> FlashOpResult:
        """Program a batch of pages issued in order at ``start_time``.

        ``data[i]``, when given, must be at most ``page_size`` bytes and
        is stored (zero-padded) for functional read-back. ``columns``
        carries optional ``(channels, banks)`` integer hints for the
        columnar core, as in :meth:`read_pages`.
        """
        result = FlashOpResult(start_time=start_time, end_time=start_time)
        if (self.fast_path and self.faults is None and self.trace is None
                and self.metrics is None):
            result.end_time = self._program_chain(ppas, start_time, data,
                                                  result.completions,
                                                  columns=columns)
        else:
            for position, ppa in enumerate(ppas):
                payload = data[position] if data is not None else None
                end = self._program_one(ppa, start_time, payload)
                result.completions.append(end)
                if end > result.end_time:
                    result.end_time = end
        result.stats.count("pages_programmed", len(ppas))
        self.stats.count("pages_programmed", len(ppas))
        return result

    def erase_block(self, channel: int, bank: int, block: int,
                    start_time: float = 0.0) -> FlashOpResult:
        """Erase one block: the bank is busy for ``t_erase`` and all
        pages in the block return to the erased state."""
        faults = self.faults
        verdict = None
        if faults is not None:
            faults.advance(start_time)
            verdict = faults.erase_check((channel, bank, block))
        line = self.bank_lines[channel][bank]
        start, end = line.reserve(start_time, self.timing.t_erase)
        if verdict is not None:
            self.stats.count("erase_fails")
            faults.stats.count("erase_fails")
            raise EraseFailError(channel, bank, block, fail_time=end,
                                 reason=verdict)
        if self.store_data:
            base = PhysicalPageAddress(channel, bank, block, 0)
            base_idx = ppa_to_index(base, self.geometry)
            for offset in range(self.geometry.pages_per_block):
                self._programmed.discard(base_idx + offset)
                self._pages.pop(base_idx + offset, None)
                self._checksums.pop(base_idx + offset, None)
        if faults is not None:
            base = PhysicalPageAddress(channel, bank, block, 0)
            faults.note_erase((channel, bank, block),
                              ppa_to_index(base, self.geometry),
                              self.geometry.pages_per_block, end)
        self.stats.count("blocks_erased")
        if self.metrics is not None:
            self.metrics.observe("flash.erase", end - start)
            self.metrics.count("flash.blocks_erased")
        result = FlashOpResult(start_time=start, end_time=end, completions=[end])
        result.stats.count("blocks_erased")
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _read_chain(self, ppas: Sequence[PhysicalPageAddress],
                    start_time: float,
                    completions: Optional[List[float]] = None,
                    columns: Optional[Tuple[Sequence[int], Sequence[int]]]
                    = None) -> float:
        """Batched fan-out of a read batch: the same bank→channel
        reserve chain as :meth:`_read_one` for every page, in the same
        FCFS issue order, with the Timeline bookkeeping inlined. Every
        float operation happens in the identical sequence, so timings
        are bit-identical to the per-page path. ``completions``, when
        given, receives the per-page completion times; callers that only
        need the batch end time (the engine fast path) pass None. The
        caller accounts ``pages_read`` stats. Wide batches dispatch to
        the columnar core (:meth:`_read_chain_columnar`); without
        ``columns`` hints the engagement threshold is 4× higher because
        extracting the channel/bank columns from the ppa objects costs
        about as much as the scalar chain itself."""
        if self.columnar:
            n = len(ppas)
            min_pages = self.columnar_min_pages
            if columns is not None:
                if n >= min_pages:
                    ch = np.ascontiguousarray(columns[0], dtype=np.intp)
                    bk = np.ascontiguousarray(columns[1], dtype=np.intp)
                    prep = self._columnar_prep(n, ch, bk)
                    if prep is not None:
                        return self._read_chain_columnar(
                            n, start_time, completions, prep)
            elif n >= min_pages * 4:
                ch = np.fromiter((p.channel for p in ppas),
                                 dtype=np.intp, count=n)
                bk = np.fromiter((p.bank for p in ppas),
                                 dtype=np.intp, count=n)
                prep = self._columnar_prep(n, ch, bk)
                if prep is not None:
                    return self._read_chain_columnar(
                        n, start_time, completions, prep)
        return self._read_chain_scalar(ppas, start_time, completions)

    def _read_chain_scalar(self, ppas: Sequence[PhysicalPageAddress],
                           start_time: float,
                           completions: Optional[List[float]] = None) -> float:
        timing = self.timing
        t_read = timing.t_read
        issue = start_time + timing.t_cmd
        xfer = timing.transfer_time(self.geometry.page_size)
        channel_lines = self.channel_lines
        bank_lines = self.bank_lines
        append = completions.append if completions is not None else None
        end_time = start_time
        for ppa in ppas:
            c = ppa.channel
            channel = channel_lines[c]
            bank = bank_lines[c][ppa.bank]
            if bank.observer is not None or channel.observer is not None:
                # a reservation observer is attached outside set_metrics:
                # take the instrumented path for this page
                xfer_end = self._read_one(ppa, start_time)
            else:
                read_start = bank.free_at
                if read_start < issue:
                    read_start = issue
                read_end = read_start + t_read
                bank.busy_time += t_read
                bank.ops += 1
                xfer_start = channel.free_at
                if xfer_start < read_end:
                    xfer_start = read_end
                xfer_end = xfer_start + xfer
                channel.free_at = xfer_end
                channel.busy_time += xfer
                channel.ops += 1
                # the die's page register is held until the transfer
                # drains
                bank.free_at = xfer_end
            if append is not None:
                append(xfer_end)
            if xfer_end > end_time:
                end_time = xfer_end
        return end_time

    def _columnar_prep(self, n: int, ch: np.ndarray, bk: np.ndarray):
        """Shared setup for the columnar chains, or None when the batch
        should fall back to the scalar chain.

        Snapshots the involved timelines' ``free_at`` into dense arrays
        and groups pages into pipeline depth levels: level ``k`` holds
        each channel's k-th page of the batch. Pages at one level touch
        distinct channels, so the levels run as elementwise vector steps
        while every within-channel dependency stays in its scalar order.
        Falls back when the batch is too serial for vector steps to win
        or when any involved timeline has a per-reservation observer
        attached (the columnar core cannot interleave callbacks)."""
        geometry = self.geometry
        counts = np.bincount(ch, minlength=geometry.channels)
        depth = int(counts.max())
        if depth * 4 > n and depth > 2:
            # not enough cross-channel parallelism: the per-level numpy
            # calls would outnumber the pages they replace
            return None
        channel_lines = self.channel_lines
        active = np.flatnonzero(counts).tolist()
        chan_free = np.empty(geometry.channels)
        chan_busy = np.empty(geometry.channels)
        for c in active:
            line = channel_lines[c]
            if line.observer is not None:
                return None
            chan_free[c] = line.free_at
            chan_busy[c] = line.busy_time
        flat = ch * geometry.banks_per_channel + bk
        flat_counts = np.bincount(flat)
        banks = np.flatnonzero(flat_counts).tolist()
        bank_free = self._bank_free_scratch
        bank_busy = self._bank_busy_scratch
        bank_lines_flat = self._bank_lines_flat
        for f in banks:
            line = bank_lines_flat[f]
            if line.observer is not None:
                return None
            bank_free[f] = line.free_at
            bank_busy[f] = line.busy_time
        unique_banks = int(flat_counts.max()) == 1
        if depth == 1:
            # every page on its own channel: a single level in issue
            # order, no regrouping needed
            return (counts, active, chan_free, chan_busy, flat,
                    flat_counts, banks, bank_free, bank_busy,
                    unique_banks, ch, flat, None, None, 1)
        order = np.argsort(ch, kind="stable")
        sorted_ch = ch[order]
        run_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_ch)) + 1))
        marks = np.zeros(n, dtype=np.intp)
        marks[run_starts[1:]] = 1
        run_id = np.cumsum(marks)
        pos_sorted = np.arange(n, dtype=np.intp) - run_starts[run_id]
        pos = np.empty(n, dtype=np.intp)
        pos[order] = pos_sorted
        dorder = np.argsort(pos, kind="stable")
        bounds = np.searchsorted(pos[dorder], np.arange(depth + 1))
        # pre-gather the level-ordered columns once so the level loop
        # slices views instead of fancy-indexing per level
        ch_d = ch[dorder]
        flat_d = flat[dorder]
        return (counts, active, chan_free, chan_busy, flat, flat_counts,
                banks, bank_free, bank_busy, unique_banks, ch_d, flat_d,
                dorder, bounds, depth)

    def _read_chain_columnar(self, n: int, start_time: float,
                             completions: Optional[List[float]],
                             prep) -> float:
        """Columnar read fan-out: one elementwise max/add step per
        pipeline depth level across all channels. Channels are
        independent FCFS servers and within-channel issue order is the
        level order, so every float max/add sees the identical operands
        as the scalar chain — bit-identical timings. When every bank
        appears at most once the bank-side max hoists out of the level
        loop entirely (each bank's sense starts from its initial
        ``free_at``)."""
        (counts, active, chan_free, chan_busy, flat, flat_counts, banks,
         bank_free, bank_busy, unique_banks, ch_d, flat_d, dorder,
         bounds, depth) = prep
        timing = self.timing
        t_read = timing.t_read
        issue = start_time + timing.t_cmd
        xfer = timing.transfer_time(self.geometry.page_size)
        # busy_time accumulates one constant add per page in level order
        # — identical per-line add sequence to the scalar chain, done as
        # one masked vector add per level (indices are unique within a
        # level, so the fancy-indexed += is well-defined)
        if unique_banks:
            read_end_d = np.maximum(bank_free[flat_d], issue) + t_read
            bank_busy[flat_d] += t_read
            if depth == 1:
                ends_d = np.maximum(chan_free[ch_d], read_end_d) + xfer
                chan_free[ch_d] = ends_d
                chan_busy[ch_d] += xfer
            else:
                ends_d = np.empty(n)
                for level in range(depth):
                    a = bounds[level]
                    b = bounds[level + 1]
                    cs = ch_d[a:b]
                    xe = np.maximum(chan_free[cs], read_end_d[a:b]) + xfer
                    chan_free[cs] = xe
                    chan_busy[cs] += xfer
                    ends_d[a:b] = xe
            # the die's page register is held until the transfer drains
            bank_free[flat_d] = ends_d
        else:
            ends_d = np.empty(n)
            for level in range(depth):
                a = bounds[level]
                b = bounds[level + 1]
                cs = ch_d[a:b]
                fs = flat_d[a:b]
                read_end = np.maximum(bank_free[fs], issue) + t_read
                xe = np.maximum(chan_free[cs], read_end) + xfer
                chan_free[cs] = xe
                bank_free[fs] = xe
                chan_busy[cs] += xfer
                bank_busy[fs] += t_read
                ends_d[a:b] = xe
        self._columnar_writeback(prep)
        if dorder is None:
            ends = ends_d
        else:
            ends = np.empty(n)
            ends[dorder] = ends_d
        if completions is not None:
            completions.extend(ends.tolist())
        end_time = float(ends_d.max())
        return end_time if end_time > start_time else start_time

    def _columnar_writeback(self, prep) -> None:
        """Copy the dense free/busy columns back into the Timeline
        objects. ``tolist`` first: plain-list indexing and Python floats
        are several times cheaper than per-element numpy scalar
        extraction, and the values are bit-identical."""
        (counts, active, chan_free, chan_busy, flat, flat_counts, banks,
         bank_free, bank_busy, unique_banks, ch_d, flat_d, dorder,
         bounds, depth) = prep
        chan_free_l = chan_free.tolist()
        chan_busy_l = chan_busy.tolist()
        counts_l = counts.tolist()
        channel_lines = self.channel_lines
        for c in active:
            line = channel_lines[c]
            line.free_at = chan_free_l[c]
            line.busy_time = chan_busy_l[c]
            line.ops += counts_l[c]
        bank_free_l = bank_free.tolist()
        bank_busy_l = bank_busy.tolist()
        bank_lines_flat = self._bank_lines_flat
        if unique_banks:
            for f in banks:
                line = bank_lines_flat[f]
                line.free_at = bank_free_l[f]
                line.busy_time = bank_busy_l[f]
                line.ops += 1
        else:
            flat_counts_l = flat_counts.tolist()
            for f in banks:
                line = bank_lines_flat[f]
                line.free_at = bank_free_l[f]
                line.busy_time = bank_busy_l[f]
                line.ops += flat_counts_l[f]

    def _program_chain_columnar(self, n: int, start_time: float,
                                completions: List[float], prep) -> float:
        """Columnar program fan-out (channel transfer, then bank
        program); see :meth:`_read_chain_columnar`. Timing-only: the
        dispatcher keeps functional batches on the scalar chain. With
        unique banks the program step vectorizes after the channel
        chain (each bank's program starts from its initial
        ``free_at``)."""
        (counts, active, chan_free, chan_busy, flat, flat_counts, banks,
         bank_free, bank_busy, unique_banks, ch_d, flat_d, dorder,
         bounds, depth) = prep
        timing = self.timing
        t_program = timing.t_program
        issue = start_time + timing.t_cmd
        xfer = timing.transfer_time(self.geometry.page_size)
        if unique_banks:
            if depth == 1:
                xfer_ends_d = np.maximum(chan_free[ch_d], issue) + xfer
                chan_free[ch_d] = xfer_ends_d
                chan_busy[ch_d] += xfer
            else:
                xfer_ends_d = np.empty(n)
                for level in range(depth):
                    a = bounds[level]
                    b = bounds[level + 1]
                    cs = ch_d[a:b]
                    xe = np.maximum(chan_free[cs], issue) + xfer
                    chan_free[cs] = xe
                    chan_busy[cs] += xfer
                    xfer_ends_d[a:b] = xe
            ends_d = np.maximum(bank_free[flat_d], xfer_ends_d) + t_program
            bank_free[flat_d] = ends_d
            bank_busy[flat_d] += t_program
        else:
            ends_d = np.empty(n)
            for level in range(depth):
                a = bounds[level]
                b = bounds[level + 1]
                cs = ch_d[a:b]
                fs = flat_d[a:b]
                xe = np.maximum(chan_free[cs], issue) + xfer
                pe = np.maximum(bank_free[fs], xe) + t_program
                chan_free[cs] = xe
                bank_free[fs] = pe
                chan_busy[cs] += xfer
                bank_busy[fs] += t_program
                ends_d[a:b] = pe
        self._columnar_writeback(prep)
        if dorder is None:
            ends = ends_d
        else:
            ends = np.empty(n)
            ends[dorder] = ends_d
        completions.extend(ends.tolist())
        end_time = float(ends_d.max())
        return end_time if end_time > start_time else start_time

    def _program_chain(self, ppas: Sequence[PhysicalPageAddress],
                       start_time: float,
                       data: Optional[Sequence[Optional[np.ndarray]]],
                       completions: List[float],
                       columns: Optional[Tuple[Sequence[int], Sequence[int]]]
                       = None) -> float:
        """Batched fan-out of a program batch (see :meth:`_read_chain`):
        channel→bank reserve chain per page, inlined, bit-identical.
        Wide timing-only batches dispatch to the columnar core; batches
        with functional content keep the scalar chain (NAND-semantics
        bookkeeping is per-page anyway)."""
        if self.columnar and not self.store_data:
            n = len(ppas)
            min_pages = self.columnar_min_pages
            if columns is not None:
                if n >= min_pages:
                    ch = np.ascontiguousarray(columns[0], dtype=np.intp)
                    bk = np.ascontiguousarray(columns[1], dtype=np.intp)
                    prep = self._columnar_prep(n, ch, bk)
                    if prep is not None:
                        return self._program_chain_columnar(
                            n, start_time, completions, prep)
            elif n >= min_pages * 4:
                ch = np.fromiter((p.channel for p in ppas),
                                 dtype=np.intp, count=n)
                bk = np.fromiter((p.bank for p in ppas),
                                 dtype=np.intp, count=n)
                prep = self._columnar_prep(n, ch, bk)
                if prep is not None:
                    return self._program_chain_columnar(
                        n, start_time, completions, prep)
        return self._program_chain_scalar(ppas, start_time, data,
                                          completions)

    def _program_chain_scalar(self, ppas: Sequence[PhysicalPageAddress],
                              start_time: float,
                              data: Optional[Sequence[Optional[np.ndarray]]],
                              completions: List[float]) -> float:
        timing = self.timing
        t_program = timing.t_program
        issue = start_time + timing.t_cmd
        geometry = self.geometry
        xfer = timing.transfer_time(geometry.page_size)
        channel_lines = self.channel_lines
        bank_lines = self.bank_lines
        store = self.store_data
        append = completions.append
        end_time = start_time
        for position, ppa in enumerate(ppas):
            c = ppa.channel
            channel = channel_lines[c]
            bank = bank_lines[c][ppa.bank]
            if bank.observer is not None or channel.observer is not None:
                payload = data[position] if data is not None else None
                prog_end = self._program_one(ppa, start_time, payload)
                append(prog_end)
                if prog_end > end_time:
                    end_time = prog_end
                continue
            if store:
                idx = ppa_to_index(ppa, geometry)
                if idx in self._programmed:
                    raise FlashStateError(
                        f"program to already-programmed page {ppa} "
                        f"(erase first)")
                self._programmed.add(idx)
                payload = data[position] if data is not None else None
                if payload is not None:
                    page = np.zeros(geometry.page_size, dtype=np.uint8)
                    raw = np.asarray(payload, dtype=np.uint8).ravel()
                    if raw.size > geometry.page_size:
                        raise ValueError(
                            f"payload of {raw.size} B exceeds page size")
                    page[: raw.size] = raw
                    self._pages[idx] = page
                    self._checksums[idx] = _page_checksum(page)
            xfer_start = channel.free_at
            if xfer_start < issue:
                xfer_start = issue
            xfer_end = xfer_start + xfer
            channel.free_at = xfer_end
            channel.busy_time += xfer
            channel.ops += 1
            prog_start = bank.free_at
            if prog_start < xfer_end:
                prog_start = xfer_end
            prog_end = prog_start + t_program
            bank.free_at = prog_end
            bank.busy_time += t_program
            bank.ops += 1
            append(prog_end)
            if prog_end > end_time:
                end_time = prog_end
        return end_time

    def _read_one(self, ppa: PhysicalPageAddress, issue_time: float) -> float:
        faults = self.faults
        if faults is not None:
            faults.advance(issue_time)
            if faults.channel_dead(ppa.channel):
                faults.stats.count("dead_channel_reads")
                raise UncorrectableError(ppa, fail_time=issue_time,
                                         reason="channel_dead")
        channel = self.channel_lines[ppa.channel]
        bank = self.bank_lines[ppa.channel][ppa.bank]
        # The command reaches the die after t_cmd (latency only: command
        # packets are tiny and interleave with data on the bus), the die
        # senses for t_read, then the page moves over the channel bus.
        read_start, read_end = bank.reserve(issue_time + self.timing.t_cmd,
                                            self.timing.t_read)
        xfer = self.timing.transfer_time(self.geometry.page_size)
        xfer_start, xfer_end = channel.reserve(read_end, xfer)
        # The die's page register is held until the transfer drains.
        if bank.free_at < xfer_end:
            bank.free_at = xfer_end
        if self.trace is not None:
            self.trace.span(bank.name, read_start, read_end, name="nand_read")
            self.trace.span(channel.name, xfer_start, xfer_end,
                            name="page_out", bytes=self.geometry.page_size)
        if self.metrics is not None:
            self.metrics.observe("flash.nand_read", read_end - read_start)
            self.metrics.observe("flash.page_out", xfer_end - xfer_start)
            self.metrics.count("flash.pages_read")
        if faults is None:
            return xfer_end
        return self._apply_read_faults(ppa, bank, channel, xfer,
                                       read_start, xfer_end)

    def _apply_read_faults(self, ppa: PhysicalPageAddress, bank: Timeline,
                           channel: Timeline, xfer: float,
                           sense_start: float, first_end: float) -> float:
        """Walk the ECC read-retry ladder: each retry re-senses at a
        tuned reference voltage (longer than a default sense) and moves
        the page out again so the ECC engine can re-decode."""
        idx = ppa_to_index(ppa, self.geometry)
        plan = self.faults.read_plan(
            idx, (ppa.channel, ppa.bank, ppa.block, ppa.page), sense_start)
        end = first_end
        for factor in plan.sense_factors:
            retry_start, retry_end = bank.reserve(end,
                                                  self.timing.t_read * factor)
            xfer_start, xfer_end = channel.reserve(retry_end, xfer)
            if bank.free_at < xfer_end:
                bank.free_at = xfer_end
            if self.trace is not None:
                self.trace.span(bank.name, retry_start, retry_end,
                                name="read_retry")
                self.trace.span(channel.name, xfer_start, xfer_end,
                                name="page_out_retry",
                                bytes=self.geometry.page_size)
            if self.metrics is not None:
                self.metrics.observe("flash.read_retry",
                                     retry_end - retry_start)
            end = xfer_end
        if plan.retries:
            self.stats.count("read_retries", plan.retries)
            self.faults.stats.count("read_retries", plan.retries)
            if self.metrics is not None:
                self.metrics.count("flash.read_retries", plan.retries)
        if plan.uncorrectable:
            self.stats.count("uncorrectable_reads")
            self.faults.stats.count("uncorrectable_reads")
            raise UncorrectableError(ppa, fail_time=end,
                                     retries=plan.retries,
                                     reason=plan.reason)
        return end

    def _program_one(self, ppa: PhysicalPageAddress, issue_time: float,
                     payload: Optional[np.ndarray]) -> float:
        faults = self.faults
        verdict = None
        if faults is not None:
            faults.advance(issue_time)
            idx = ppa_to_index(ppa, self.geometry)
            verdict = faults.program_check(
                idx, (ppa.channel, ppa.bank, ppa.block, ppa.page))
        if self.store_data and verdict is None:
            idx = ppa_to_index(ppa, self.geometry)
            if idx in self._programmed:
                raise FlashStateError(
                    f"program to already-programmed page {ppa} (erase first)")
            self._programmed.add(idx)
            if payload is not None:
                page = np.zeros(self.geometry.page_size, dtype=np.uint8)
                raw = np.asarray(payload, dtype=np.uint8).ravel()
                if raw.size > self.geometry.page_size:
                    raise ValueError(
                        f"payload of {raw.size} B exceeds page size")
                page[: raw.size] = raw
                self._pages[idx] = page
                self._checksums[idx] = _page_checksum(page)
        channel = self.channel_lines[ppa.channel]
        bank = self.bank_lines[ppa.channel][ppa.bank]
        xfer = self.timing.transfer_time(self.geometry.page_size)
        xfer_start, xfer_end = channel.reserve(issue_time + self.timing.t_cmd,
                                               xfer)
        prog_start, prog_end = bank.reserve(xfer_end, self.timing.t_program)
        if self.trace is not None:
            self.trace.span(channel.name, xfer_start, xfer_end,
                            name="page_in", bytes=self.geometry.page_size)
            self.trace.span(bank.name, prog_start, prog_end,
                            name="nand_program")
        if self.metrics is not None:
            self.metrics.observe("flash.page_in", xfer_end - xfer_start)
            self.metrics.observe("flash.nand_program", prog_end - prog_start)
            self.metrics.count("flash.pages_programmed")
        if verdict is not None:
            # the attempt cost real bus and array time before the status
            # register reported the failure
            self.stats.count("program_fails")
            faults.stats.count("program_fails")
            raise ProgramFailError(ppa, fail_time=prog_end, reason=verdict)
        if faults is not None:
            faults.note_program(ppa_to_index(ppa, self.geometry), prog_end)
        return prog_end

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def channel_utilization(self, horizon: float) -> List[float]:
        return [line.utilization(horizon) for line in self.channel_lines]

    def reset_time(self) -> None:
        """Reset all timelines to t=0 (page contents are preserved)."""
        for line in self.channel_lines:
            line.reset()
        for bank_row in self.bank_lines:
            for line in bank_row:
                line.reset()
        if self.faults is not None:
            self.faults.note_time_reset()
