"""Tests for the baseline SSD device model."""

import numpy as np
import pytest

from repro.ftl import BaselineSSD
from repro.nvm import TINY_TEST


@pytest.fixture
def ssd():
    return BaselineSSD(TINY_TEST, store_data=True)


class TestReadWrite:
    def test_roundtrip_pages(self, ssd, rng):
        data = [rng.integers(0, 256, ssd.page_size).astype(np.uint8)
                for _ in range(8)]
        ssd.write_lpns(list(range(8)), 0.0, data=data)
        result = ssd.read_lpns(list(range(8)), 0.0, with_data=True)
        for expected, actual in zip(data, result.data):
            assert np.array_equal(expected, actual)

    def test_unwritten_lpn_reads_zero(self, ssd):
        result = ssd.read_lpns([5], 0.0, with_data=True)
        assert result.data[0].sum() == 0
        assert result.stats.get_count("device_pages_unmapped") == 1

    def test_overwrite_returns_new_data(self, ssd):
        ones = np.ones(ssd.page_size, dtype=np.uint8)
        twos = np.full(ssd.page_size, 2, dtype=np.uint8)
        ssd.write_lpns([0], 0.0, data=[ones])
        ssd.write_lpns([0], 0.0, data=[twos])
        result = ssd.read_lpns([0], 0.0, with_data=True)
        assert result.data[0][0] == 2

    def test_lpn_out_of_range(self, ssd):
        with pytest.raises(ValueError):
            ssd.read_lpns([ssd.logical_pages], 0.0)
        with pytest.raises(ValueError):
            ssd.write_lpns([-1], 0.0)

    def test_logical_capacity_excludes_overprovisioning(self, ssd):
        assert ssd.logical_pages == int(
            TINY_TEST.geometry.total_pages * 0.9)


class TestByteInterface:
    def test_byte_roundtrip(self, ssd, rng):
        payload = rng.integers(0, 256, 3 * ssd.page_size).astype(np.uint8)
        ssd.write_bytes(0, payload, 0.0)
        result = ssd.read_bytes(0, payload.size, 0.0)
        assert np.array_equal(result.data[0], payload)

    def test_unaligned_offset_rejected_for_write(self, ssd):
        with pytest.raises(ValueError):
            ssd.write_bytes(1, np.zeros(10, np.uint8), 0.0)

    def test_read_sub_page_extent(self, ssd, rng):
        payload = rng.integers(0, 256, ssd.page_size).astype(np.uint8)
        ssd.write_bytes(0, payload, 0.0)
        result = ssd.read_bytes(10, 20, 0.0)
        assert np.array_equal(result.data[0], payload[10:30])


class TestGcIntegration:
    def test_sustained_overwrites_trigger_gc(self):
        ssd = BaselineSSD(TINY_TEST, store_data=True)
        # One plane holds 64 pages on the tiny device; hammer one stripe
        # target far beyond its capacity so GC must reclaim space.
        lpns = [i * TINY_TEST.geometry.channels
                * TINY_TEST.geometry.banks_per_channel for i in range(4)]
        marker = np.full(ssd.page_size, 7, dtype=np.uint8)
        for round_id in range(40):
            ssd.write_lpns(lpns, float(round_id), data=[marker] * len(lpns))
        assert ssd.gc.total_erased > 0
        # data survives collection
        result = ssd.read_lpns(lpns, 1000.0, with_data=True)
        for page in result.data:
            assert page[0] == 7

    def test_trim_releases_reverse_entries(self, ssd):
        ssd.write_lpns([0, 1], 0.0)
        before = len(ssd.gc.reverse)
        ssd.trim_lpns([0])
        assert len(ssd.gc.reverse) == before - 1
