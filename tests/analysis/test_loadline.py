"""Load-line sweep gates: determinism, saturation, layer attribution,
multi-tenant aggregation."""

from __future__ import annotations

import pytest

from repro.analysis.loadline_sweep import (arrival_process,
                                           default_workload,
                                           format_loadline, loadline_sweep,
                                           run_load_point, sweep_json)
from repro.traffic import DiurnalProcess, MmppProcess, PoissonProcess


def test_arrival_process_factory():
    assert isinstance(arrival_process("poisson", 100.0, 1),
                      PoissonProcess)
    assert isinstance(arrival_process("mmpp", 100.0, 1), MmppProcess)
    assert isinstance(arrival_process("diurnal", 100.0, 1),
                      DiurnalProcess)
    with pytest.raises(ValueError):
        arrival_process("weird", 100.0, 1)


def test_load_point_reports_tails_and_layers():
    cell = run_load_point("software-nds", 2000.0)
    assert cell["system"] == "software-nds"
    assert cell["completed"] > 0
    assert cell["goodput_rps"] > 0
    assert cell["p50_latency"] <= cell["p99_latency"] \
        <= cell["p999_latency"] <= cell["max_latency"]
    assert cell["mean_queue_wait"] >= 0.0
    assert cell["mean_service"] > 0.0
    layers = cell["layers"]
    assert layers, "critical-path layer attribution missing"
    assert sum(entry["share"] for entry in layers.values()) == \
        pytest.approx(1.0)


def test_load_point_unknown_system():
    with pytest.raises(ValueError):
        run_load_point("no-such-system", 100.0)


def test_sweep_is_byte_deterministic():
    kwargs = dict(systems=("software-nds",), device_counts=(1,),
                  max_points=3)
    assert sweep_json(loadline_sweep(**kwargs)) == \
        sweep_json(loadline_sweep(**kwargs))


def test_sweep_reaches_saturation_knee():
    sweep = loadline_sweep(systems=("software-nds",), device_counts=(1,),
                           base_rate=2000.0, max_points=8)
    cells = sweep["cells"]
    assert cells[-1]["saturated"] is True
    assert all(not c["saturated"] for c in cells[:-1])
    # goodput grows along the ramp until the knee
    goodputs = [c["goodput_rps"] for c in cells]
    assert goodputs[0] < goodputs[-2] if len(goodputs) > 2 else True


def test_sweep_scales_start_rate_with_devices():
    sweep = loadline_sweep(systems=("software-nds",),
                           device_counts=(1, 4), max_points=1,
                           base_rate=400.0)
    one = [c for c in sweep["cells"] if c["devices"] == 1][0]
    four = [c for c in sweep["cells"] if c["devices"] == 4][0]
    # offered_rate in the cell is measured; the ramp start is 4x
    assert four["offered"] > 2 * one["offered"]


def test_multi_tenant_cells_aggregate():
    cell = run_load_point("software-nds", 4000.0, tenants=2,
                          horizon=0.02)
    assert cell["tenants"] == 2
    assert sorted(cell["streams"]) == ["serve0", "serve1"]
    per_stream = cell["streams"]
    assert cell["offered"] == sum(s["offered"]
                                  for s in per_stream.values())
    assert cell["completed"] == sum(s["completed"]
                                    for s in per_stream.values())
    assert cell["useful_bytes"] == sum(s["useful_bytes"]
                                       for s in per_stream.values())
    # merged tails bound the per-stream tails
    assert cell["max_latency"] == max(s["max_latency"]
                                      for s in per_stream.values())


def test_multi_tenant_sweep_deterministic():
    kwargs = dict(systems=("software-nds",), device_counts=(1,),
                  max_points=2, tenants=2)
    assert sweep_json(loadline_sweep(**kwargs)) == \
        sweep_json(loadline_sweep(**kwargs))


def test_format_loadline_renders():
    sweep = loadline_sweep(systems=("software-nds",), device_counts=(1,),
                           max_points=2)
    table = format_loadline(sweep)
    assert "software-nds" in table
    assert "p999" in table


def test_default_workload_shape():
    wl = default_workload()
    assert wl.num_embeddings == 256
    assert wl.embedding_dim == 16
    assert wl.update_fraction == 0.25


def test_monitor_cells_carry_series_and_alerts():
    from repro.obs.slo import SloPolicy
    policy = SloPolicy(latency_target=300e-6)
    sweep = loadline_sweep(systems=("software-nds",), device_counts=(1,),
                           base_rate=2000.0, max_points=3,
                           arrival="mmpp", monitor=policy)
    assert sweep["slo"] == policy.to_dict()
    cells = sweep["cells"]
    assert all("monitor" in cell for cell in cells)
    for cell in cells:
        series = cell["monitor"]["series"]
        assert len(series["completed"]) == series["windows"]
        assert sum(series["completed"]) == cell["completed"]
        assert "alerts" in cell["monitor"]["slo"]
        # attribution rides along because the sweep traces by default
        assert "attribution" in cell["monitor"]
    # the saturated tail of the ramp must be burning budget
    assert cells[-1]["monitor"]["slo"]["alerts"]


def test_monitor_sweep_deterministic():
    from repro.obs.slo import SloPolicy
    kwargs = dict(systems=("software-nds",), device_counts=(1,),
                  max_points=2, monitor=SloPolicy(latency_target=300e-6))
    assert sweep_json(loadline_sweep(**kwargs)) == \
        sweep_json(loadline_sweep(**kwargs))


def test_mmpp_and_diurnal_points_run():
    for kind in ("mmpp", "diurnal"):
        cell = run_load_point("software-nds", 2000.0, arrival=kind,
                              horizon=0.02, attribute_layers=False)
        assert cell["arrival"] == kind
        assert cell["completed"] > 0
        assert "layers" not in cell
