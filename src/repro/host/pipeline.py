"""Multi-stage software pipeline model.

Every workload in the paper is pipelined: I/O and (when the layout
mismatches) host restructuring overlap with accelerator copies and
compute kernels (§6.2). This module computes the schedule of an
in-order pipeline where each stage is a dedicated resource, plus the
*idle time before each compute-kernel activation* that Figure 10(b)
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["PipelineResult", "run_pipeline"]


@dataclass
class PipelineResult:
    """Schedule summary of one pipelined run."""

    total_time: float
    stage_names: List[str]
    stage_busy: List[float]
    #: per-stage idle time: gaps a stage spent waiting for upstream data
    #: after processing its previous item (excludes initial pipeline fill
    #: of stages other than the last — for the compute kernel the paper
    #: counts the wait before *each* pipelined kernel, so the fill gap of
    #: the final stage is included).
    stage_idle: List[float] = field(default_factory=list)
    finish_times: List[List[float]] = field(default_factory=list)

    def idle_of(self, stage_name: str) -> float:
        return self.stage_idle[self.stage_names.index(stage_name)]

    def busy_of(self, stage_name: str) -> float:
        return self.stage_busy[self.stage_names.index(stage_name)]


def run_pipeline(stage_times: Sequence[Sequence[float]],
                 stage_names: Sequence[str] = (),
                 trace=None, stream: str = "pipeline") -> PipelineResult:
    """Schedule ``items × stages`` durations through an in-order pipeline.

    ``stage_times[i][s]`` is how long item ``i`` needs in stage ``s``.
    Item ``i`` enters stage ``s`` only after (a) it left stage ``s-1``
    and (b) item ``i-1`` left stage ``s``.

    Returns total latency, per-stage busy time and per-stage idle time
    (time a stage sat waiting between consecutive items — for the last
    stage this is the paper's "idle time before each pipelined compute
    kernel", Fig. 10(b)).

    ``trace``, when given, is a
    :class:`~repro.runtime.trace.TraceRecorder`: every stage activation
    is recorded as a span on resource ``"<stream>/<stage>"`` so pipeline
    occupancy lines up with the device-side spans in one Chrome trace.
    """
    items = len(stage_times)
    if items == 0:
        return PipelineResult(0.0, list(stage_names), [], [], [])
    stages = len(stage_times[0])
    for row in stage_times:
        if len(row) != stages:
            raise ValueError("ragged stage_times")
    names = list(stage_names) if stage_names else [f"stage{s}" for s in range(stages)]
    if len(names) != stages:
        raise ValueError("stage_names length mismatch")

    finish = [[0.0] * stages for _ in range(items)]
    stage_free = [0.0] * stages
    busy = [0.0] * stages
    idle = [0.0] * stages
    for i in range(items):
        upstream_done = 0.0
        for s in range(stages):
            start = max(upstream_done, stage_free[s])
            # Wait the stage experienced before taking this item. For the
            # last stage count the very first wait too (kernel launch
            # waits for the first tile); earlier stages' initial fill is
            # structural, not idle.
            if i > 0 or s == stages - 1:
                idle[s] += start - stage_free[s]
            duration = stage_times[i][s]
            if duration < 0:
                raise ValueError("negative stage duration")
            end = start + duration
            finish[i][s] = end
            stage_free[s] = end
            busy[s] += duration
            upstream_done = end
            if trace is not None and duration > 0:
                trace.span(f"{stream}/{names[s]}", start, end,
                           name=names[s], item=i)
    total = finish[-1][-1]
    return PipelineResult(total_time=total, stage_names=names,
                          stage_busy=busy, stage_idle=idle,
                          finish_times=finish)
