"""Process-per-device parallel execution for a :class:`DevicePool`.

Pool members are *independent* simulations: each device owns its flash
array, link lane, STL and host window, and the only cross-device state
(layouts, heat, GC round-robin, accounting) lives in the host
translation layer. That makes the pool embarrassingly parallel at the
sub-operation grain — every sub-op of one host-level op targets one
device and issues at the same ready time.

:class:`WorkerGroup` exploits that: it forks ``N`` worker processes,
each owning the device systems (and host-side queue-depth windows) of a
round-robin slice of the pool. The parent ships one *batch* of sub-op
calls per involved worker per host-level op; workers execute their
devices' calls in submission order (window semantics preserved) and
return plain result records. The parent then applies all bookkeeping —
accounting, heat, completion folding — in a deterministic order, so a
parallel run's reports are byte-identical to the serial pool's
regardless of worker scheduling.

Workers are forked lazily on the first routed op, after every device
system is fully constructed; from then on the children own the device
state and the parent's member systems are stale mirrors (used only for
structure checks). Fault injection, whole-device kill plans, parity,
rebalancing, tracing and metrics all keep cross-device or observer
state the fork would split — the translation layer refuses to route
ops to workers when any of them is active.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["WorkerGroup", "merge_completions"]


def merge_completions(records: Sequence[dict]) -> List[dict]:
    """Deterministic completion order for parallel result folding:
    stable sort by completion time, then device index, then submission
    (op) id. Worker scheduling can return device batches in any order;
    folding through this order makes every reduction reproducible."""
    return sorted(records,
                  key=lambda r: (r["end_time"], r["device"], r["op_id"]))


def _result_record(device: int, op_id: int, res) -> dict:
    """Wire form of one sub-op's :class:`SystemOpResult` (numpy payload
    rides along for functional runs)."""
    return {
        "device": device,
        "op_id": op_id,
        "start_time": res.start_time,
        "end_time": res.end_time,
        "useful_bytes": res.useful_bytes,
        "fetched_bytes": res.fetched_bytes,
        "requests": res.requests,
        "data": res.data,
    }


def _worker_main(conn, handles: Dict[int, object]) -> None:
    """Child process loop: execute batches for the owned devices.

    ``handles`` maps device id -> forked :class:`DeviceHandle`; the
    child's copies of system and window are authoritative from the
    fork on. Calls arrive per batch in submission order and run
    sequentially, so each device's window sees exactly the serial
    admission sequence.
    """
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "batch":
                out = []
                for device, op_id, method, args, kwargs, ready in msg[1]:
                    handle = handles[device]
                    start = handle.window.earliest(ready)
                    res = getattr(handle.system, method)(
                        *args, start_time=start, **kwargs)
                    handle.window.complete(res.end_time)
                    out.append(_result_record(device, op_id, res))
                conn.send(out)
            elif kind == "gc_offer":
                _kind, device, now, budget = msg
                stl = getattr(handles[device].system, "stl", None)
                gc = getattr(stl, "gc", None)
                if gc is None:
                    conn.send((False, 0))
                else:
                    result = gc.collect_background(now, budget)
                    conn.send((bool(result.ran),
                               int(result.blocks_erased)))
            elif kind == "reset_time":
                for handle in handles.values():
                    handle.system.reset_time()
                    handle.window.reset()
                conn.send(True)
            elif kind == "extras":
                extras = {}
                for device, handle in handles.items():
                    entry = {}
                    stl = getattr(handle.system, "stl", None)
                    if stl is not None:
                        gc = getattr(stl, "gc", None)
                        if gc is not None:
                            entry["gc_erased_blocks"] = gc.total_erased
                        allocator = getattr(stl, "allocator", None)
                        if allocator is not None:
                            entry["free_pages"] = \
                                allocator.total_free_pages()
                    extras[device] = entry
                conn.send(extras)
            elif kind == "stop":
                conn.close()
                return
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown worker message {kind!r}")
    except EOFError:  # parent went away
        return


class WorkerGroup:
    """``N`` forked workers, each owning a round-robin slice of the
    pool's devices."""

    def __init__(self, devices: Sequence, count: int) -> None:
        ctx = multiprocessing.get_context("fork")
        count = max(1, min(int(count), len(devices)))
        self.count = count
        #: device id -> worker ordinal
        self.assignment: Dict[int, int] = {
            handle.device_id: index % count
            for index, handle in enumerate(devices)}
        self._conns = []
        self._procs = []
        for worker in range(count):
            subset = {handle.device_id: handle for handle in devices
                      if self.assignment[handle.device_id] == worker}
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, subset), daemon=True)
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    # ------------------------------------------------------------------
    def run_batch(self, calls: Sequence[Tuple]) -> List[dict]:
        """Execute ``calls`` (``(device, method, args, kwargs, ready)``
        in submission order) across the workers; returns result records
        indexed like ``calls``. Per-device order is preserved; devices
        on different workers genuinely overlap."""
        per_worker: Dict[int, List] = {}
        for op_id, (device, method, args, kwargs, ready) in \
                enumerate(calls):
            worker = self.assignment[device]
            per_worker.setdefault(worker, []).append(
                (device, op_id, method, args, kwargs, ready))
        for worker, batch in per_worker.items():
            self._conns[worker].send(("batch", batch))
        results: List[Optional[dict]] = [None] * len(calls)
        for worker in per_worker:
            for record in self._conns[worker].recv():
                results[record["op_id"]] = record
        return results  # type: ignore[return-value]

    def gc_offer(self, device: int, now: float,
                 budget: float) -> Tuple[bool, int]:
        conn = self._conns[self.assignment[device]]
        conn.send(("gc_offer", device, now, budget))
        return conn.recv()

    def reset_time(self) -> None:
        for conn in self._conns:
            conn.send(("reset_time",))
        for conn in self._conns:
            conn.recv()

    def extras(self) -> Dict[int, dict]:
        """Per-device report fields only the workers can know
        (GC totals, free pages) — the parent's member systems are stale
        mirrors once the workers own the state."""
        merged: Dict[int, dict] = {}
        for conn in self._conns:
            conn.send(("extras",))
        for conn in self._conns:
            merged.update(conn.recv())
        return merged

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
        self._conns = []
        self._procs = []
