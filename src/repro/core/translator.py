"""The space translator (§4.3, Eq. 5).

Given a request — a coordinate in an application-defined space plus the
sub-dimensionality of the requested partition — the translator produces
the set of building blocks covering the partition, together with the
intra-block region and the position of that region inside the request
buffer. This is Eq. 5 of the paper: per axis *i* the block indices run
from ``floor(origin_i / bb_i)`` through
``floor((origin_i + extent_i - 1) / bb_i)``.

The translator also computes which *pages* of a block a partial access
touches (blocks store their elements row-major, split sequentially into
pages, §4.2), so partial reads fetch only the necessary units.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.space import Space

__all__ = ["BlockAccess", "translate", "translate_region",
           "pages_for_region", "region_volume"]


@dataclass(frozen=True)
class BlockAccess:
    """One building block touched by a request.

    ``block_slice`` / ``out_slice`` are per-axis ``(start, stop)`` pairs
    relative to the block origin / the request origin respectively.
    """

    block_coord: Tuple[int, ...]
    block_slice: Tuple[Tuple[int, int], ...]
    out_slice: Tuple[Tuple[int, int], ...]

    @property
    def is_full_block(self) -> bool:
        return all(start == 0 for start, _stop in self.block_slice)

    def extent(self) -> Tuple[int, ...]:
        return tuple(stop - start for start, stop in self.block_slice)

    def element_count(self) -> int:
        count = 1
        for start, stop in self.block_slice:
            count *= stop - start
        return count


def region_volume(extents: Sequence[int]) -> int:
    volume = 1
    for extent in extents:
        volume *= extent
    return volume


def translate(space: Space, coordinate: Sequence[int],
              sub_dim: Sequence[int]) -> List[BlockAccess]:
    """Map a (coordinate, sub-dimensionality) request onto building
    blocks (Eq. 5). Blocks are emitted in row-major grid order."""
    space.validate_request(coordinate, sub_dim)
    origin = space.request_origin(coordinate, sub_dim)
    return translate_region(space, origin, tuple(sub_dim))


def translate_region(space: Space, origin: Sequence[int],
                     extents: Sequence[int]) -> List[BlockAccess]:
    """Raw-region variant of :func:`translate` (used by views, whose
    regions need not be partition-aligned)."""
    if len(origin) != space.rank or len(extents) != space.rank:
        raise ValueError("origin/extents rank mismatch")
    for axis, (o, f, d) in enumerate(zip(origin, extents, space.dims)):
        if f < 1 or o < 0 or o + f > d:
            raise ValueError(
                f"region [{o}, {o + f}) exceeds extent {d} on axis {axis}")
    axis_ranges = []
    for o, f, bb in zip(origin, extents, space.bb):
        first = o // bb
        last = (o + f - 1) // bb
        axis_ranges.append(range(first, last + 1))

    accesses: List[BlockAccess] = []
    for block_coord in itertools.product(*axis_ranges):
        block_slice = []
        out_slice = []
        for axis, y in enumerate(block_coord):
            bb = space.bb[axis]
            lo = max(origin[axis], y * bb)
            hi = min(origin[axis] + extents[axis], (y + 1) * bb)
            block_slice.append((lo - y * bb, hi - y * bb))
            out_slice.append((lo - origin[axis], hi - origin[axis]))
        accesses.append(BlockAccess(
            block_coord=tuple(block_coord),
            block_slice=tuple(block_slice),
            out_slice=tuple(out_slice),
        ))
    return accesses


def pages_for_region(space: Space,
                     block_slice: Sequence[Tuple[int, int]]) -> List[int]:
    """Page positions (0-based within the block) that a block region
    touches. Elements are row-major inside the block; pages split that
    byte stream sequentially."""
    bb = space.bb
    elem = space.element_size
    page = space.pages_per_block
    page_size_bytes = -(-space.block_bytes // page)
    full = all(start == 0 and stop == extent
               for (start, stop), extent in zip(block_slice, bb))
    if full:
        return list(range(page))

    # Walk contiguous runs: fix all axes but the last, the last axis is a
    # contiguous span of bytes in the block's row-major layout.
    last_start, last_stop = block_slice[-1]
    run_bytes = (last_stop - last_start) * elem
    strides = [elem] * len(bb)
    for axis in range(len(bb) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * bb[axis + 1]

    pages = set()
    outer_ranges = [range(start, stop) for start, stop in block_slice[:-1]]
    for outer in itertools.product(*outer_ranges):
        offset = last_start * elem
        for axis, index in enumerate(outer):
            offset += index * strides[axis]
        first_page = offset // page_size_bytes
        last_page = (offset + run_bytes - 1) // page_size_bytes
        pages.update(range(first_page, last_page + 1))
    return sorted(pages)
