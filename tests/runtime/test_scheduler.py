"""Request-spine scheduler tests.

Covers the queue-depth window primitive, stream management and
arbitration order, schedule determinism, and — most importantly — the
regression that the scheduled path reproduces the seed-era direct call
path bit-for-bit for single-stream use (golden numbers captured on the
pre-refactor tree).
"""

from __future__ import annotations

import pytest

from repro.nvm.profiles import PAPER_PROTOTYPE, TINY_TEST
from repro.runtime import QueueDepthWindow, RequestScheduler, TileOp
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)
from repro.systems.base import SystemOpResult
from repro.workloads import BfsWorkload, GemmWorkload, run_workload

ALL_SYSTEMS = (BaselineSystem, SoftwareNdsSystem, HardwareNdsSystem,
               OracleSystem)


# ----------------------------------------------------------------------
# QueueDepthWindow
# ----------------------------------------------------------------------
def test_window_unbounded_never_gates():
    window = QueueDepthWindow(None)
    for t in (5.0, 1.0, 9.0):
        assert window.earliest(0.0) == 0.0
        window.complete(t)


def test_window_gates_on_kth_previous_completion():
    window = QueueDepthWindow(2)
    assert window.earliest(0.0) == 0.0
    window.complete(10.0)
    assert window.earliest(0.0) == 0.0          # 1 in flight, depth 2
    window.complete(12.0)
    assert window.earliest(0.0) == 10.0         # gated on completions[-2]
    window.complete(14.0)
    assert window.earliest(0.0) == 12.0
    assert window.earliest(13.0) == 13.0        # submit time dominates


def test_window_matches_seed_era_indexing_for_monotone_completions():
    # the seed-era HostIoEngine loop: if index >= depth:
    #     earliest = max(earliest, completions[index - depth])
    # — identical to the sorted window whenever completion times are
    # nondecreasing (every single-stream analytic flow).
    depth = 3
    completions = [1.0, 2.0, 4.0, 6.0, 8.0, 9.0]
    window = QueueDepthWindow(depth)
    for index, done in enumerate(completions):
        expected = 0.0
        if index >= depth:
            expected = max(expected, completions[index - depth])
        assert window.earliest(0.0) == expected
        window.complete(done)


def test_window_gates_on_kth_smallest_for_out_of_order_completions():
    """Regression: under round-robin multi-stream drains end times need
    not be monotone; the gate is the k-th *smallest* completion, not
    the k-th most recently appended one (which can mis-gate)."""
    depth = 3
    window = QueueDepthWindow(depth)
    for done in (1.0, 4.0, 2.0):
        window.complete(done)
    # 3 completions recorded, depth 3: the next request may issue once
    # the first of them (in *time*) finished — at 1.0, not at append
    # order's completions[-3] == 1.0; push the asymmetry further:
    assert window.earliest(0.0) == 1.0
    window.complete(8.0)
    # appended order would gate on completions[-3] == 2.0; sorted order
    # gates on the 2nd smallest of {1,2,4,8} == 2.0 — agree here...
    assert window.earliest(0.0) == 2.0
    window.complete(3.0)
    # ...but now append order [1,4,2,8,3][-3] == 2.0 gates too early
    # (4.0 and 8.0 are still "in flight" at 2.0); the correct gate is
    # the 3rd smallest of {1,2,3,4,8} == 3.0
    assert window.earliest(0.0) == 3.0


def test_window_rejects_bad_depth():
    with pytest.raises(ValueError):
        QueueDepthWindow(0)


# ----------------------------------------------------------------------
# streams and arbitration (stub executor: 0.1 s per op, no contention)
# ----------------------------------------------------------------------
class _StubExecutor:
    def __init__(self):
        self.order = []

    def _execute_op(self, op, earliest_start):
        self.order.append(op.dataset)
        return SystemOpResult(start_time=earliest_start,
                              end_time=earliest_start + 0.1,
                              useful_bytes=1, fetched_bytes=1, requests=1)


def _op(dataset, stream, submit_time=0.0):
    return TileOp.read(dataset, (0,), (1,), submit_time=submit_time,
                       stream=stream)


def test_fifo_drains_in_submission_order():
    sched = RequestScheduler(_StubExecutor(), arbitration="fifo")
    for name in ("a0", "b0", "a1", "b1", "a2"):
        sched.submit(_op(name, stream=name[0]))
    done = sched.drain()
    assert [op.dataset for op in done] == ["a0", "b0", "a1", "b1", "a2"]
    assert sched.pending == 0


def test_round_robin_cycles_streams():
    sched = RequestScheduler(_StubExecutor(), arbitration="round_robin")
    for name in ("a0", "a1", "a2", "b0", "b1", "c0"):
        sched.submit(_op(name, stream=name[0]))
    done = sched.drain()
    assert [op.dataset for op in done] == ["a0", "b0", "c0", "a1", "b1", "a2"]


def test_stream_queue_depth_conflict_raises():
    sched = RequestScheduler(_StubExecutor())
    sched.stream("t", queue_depth=4)
    sched.stream("t")                      # depth omitted: fine
    sched.stream("t", queue_depth=4)       # same depth: fine
    with pytest.raises(ValueError):
        sched.stream("t", queue_depth=8)


def test_bad_arbitration_rejected():
    with pytest.raises(ValueError):
        RequestScheduler(_StubExecutor(), arbitration="priority")


def test_queue_depth_gates_stream_issue():
    sched = RequestScheduler(_StubExecutor())
    sched.stream("t", queue_depth=1)
    for _ in range(3):
        sched.submit(_op("d", stream="t"))
    done = sched.drain()
    # depth 1: each op issues only after the previous one completed
    assert [op.result.start_time for op in done] == \
        pytest.approx([0.0, 0.1, 0.2])
    report = sched.stream_report()
    assert report["t"]["ops"] == 3
    assert report["t"]["makespan"] == pytest.approx(0.3)


def test_stream_metrics_and_reset():
    sched = RequestScheduler(_StubExecutor())
    sched.stream("t", queue_depth=1)
    for _ in range(2):
        sched.submit(_op("d", stream="t", submit_time=0.0))
    sched.drain()
    handle = sched.streams["t"]
    assert handle.completions == pytest.approx([0.1, 0.2])
    assert handle.mean_latency == pytest.approx(0.15)
    sched.reset()
    assert handle.ops == [] and sched.executed == []
    assert sched.streams["t"] is handle     # streams persist across reset


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("arbitration", ["fifo", "round_robin"])
def test_identical_submissions_yield_identical_timelines(arbitration):
    def run_once():
        system = HardwareNdsSystem(TINY_TEST, store_data=False)
        system.ingest("d", (64, 64), 4)
        system.reset_time()
        sched = system.scheduler
        sched.arbitration = arbitration
        for stream in ("t0", "t1"):
            sched.stream(stream, queue_depth=2)
        for i in range(4):
            for stream in ("t0", "t1"):
                sched.submit(TileOp.read("d", (16 * (i % 4), 0), (16, 16),
                                         submit_time=0.0, stream=stream))
        sched.drain()
        return {name: handle.completions
                for name, handle in sched.streams.items()}

    assert run_once() == run_once()


# ----------------------------------------------------------------------
# single-stream equivalence with the pre-refactor direct call path
# (golden numbers captured on the seed tree, PAPER_PROTOTYPE profile)
# ----------------------------------------------------------------------
GOLDEN_READ_END = {
    "baseline": 0.0011632630095238141,
    "software-nds": 0.0002552320380952381,
    "hardware-nds": 0.0002040768,
    "software-oracle": 0.0002175320380952381,
}

GOLDEN_WRITE_END = {
    "baseline": 0.0002380512380952381,
    "software-nds": 0.00022094780952380954,
    "hardware-nds": 0.00018334000000000002,
    "software-oracle": 0.000110784,
}

GOLDEN_GEMM = {
    "baseline": (0.025959174710149684, 0.02590439978834606),
    "software-nds": (0.00176344076729316, 0.0017086658454895317),
    "hardware-nds": (0.001622963510150303, 0.0015681885883466749),
    "software-oracle": (0.0017022407672931592, 0.0016474658454895311),
}

GOLDEN_BFS = {
    "baseline": (0.0010215341561904759, 0.0009790483961904762),
    "software-nds": (0.0017686823466666658, 0.001726196586666665),
    "hardware-nds": (0.0017686823466666658, 0.001726196586666665),
    "software-oracle": (0.0010215341561904759, 0.0009790483961904762),
}


@pytest.mark.parametrize("cls", ALL_SYSTEMS)
def test_read_tile_matches_seed_golden(cls):
    system = cls(PAPER_PROTOTYPE, store_data=False)
    extra = {"tile": (256, 256)} if cls is OracleSystem else {}
    system.ingest("d", (1024, 1024), 4, **extra)
    system.reset_time()
    result = system.read_tile("d", (256, 256), (256, 256))
    assert result.end_time == pytest.approx(GOLDEN_READ_END[system.name],
                                            abs=1e-9)


@pytest.mark.parametrize("cls", ALL_SYSTEMS)
def test_write_tile_matches_seed_golden(cls):
    system = cls(TINY_TEST, store_data=False)
    extra = {"tile": (16, 16)} if cls is OracleSystem else {}
    system.ingest("d", (64, 64), 4, **extra)
    system.reset_time()
    result = system.write_tile("d", (16, 16), (16, 16))
    assert result.end_time == pytest.approx(GOLDEN_WRITE_END[system.name],
                                            abs=1e-9)


@pytest.mark.parametrize("cls", ALL_SYSTEMS)
def test_gemm_run_matches_seed_golden(cls):
    result = run_workload(GemmWorkload(n=1024, tile=256, max_tiles=24),
                          cls(PAPER_PROTOTYPE, store_data=False))
    total, idle = GOLDEN_GEMM[result.system_name]
    assert result.total_time == pytest.approx(total, abs=1e-9)
    assert result.kernel_idle == pytest.approx(idle, abs=1e-9)


@pytest.mark.parametrize("cls", ALL_SYSTEMS)
def test_bfs_run_matches_seed_golden(cls):
    result = run_workload(BfsWorkload(nodes=1024),
                          cls(PAPER_PROTOTYPE, store_data=False))
    total, idle = GOLDEN_BFS[result.system_name]
    assert result.total_time == pytest.approx(total, abs=1e-9)
    assert result.kernel_idle == pytest.approx(idle, abs=1e-9)


def test_scheduled_stream_equals_direct_facade():
    """A drained single stream (unbounded depth) reproduces the exact
    end times of sequential read_tile calls on a fresh system."""
    direct = HardwareNdsSystem(TINY_TEST, store_data=False)
    direct.ingest("d", (64, 64), 4)
    direct.reset_time()
    origins = [(0, 0), (16, 16), (32, 0), (48, 48)]
    direct_ends = [direct.read_tile("d", o, (16, 16)).end_time
                   for o in origins]

    scheduled = HardwareNdsSystem(TINY_TEST, store_data=False)
    scheduled.ingest("d", (64, 64), 4)
    scheduled.reset_time()
    sched = scheduled.scheduler
    for origin in origins:
        sched.submit(TileOp.read("d", origin, (16, 16), submit_time=0.0,
                                 stream="solo"))
    done = sched.drain()
    assert [op.result.end_time for op in done] == \
        pytest.approx(direct_ends, abs=1e-12)
