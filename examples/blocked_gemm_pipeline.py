#!/usr/bin/env python3
"""Blocked GEMM over all four storage architectures.

The paper's flagship workload (Table 1 "GEMM"): multiply two large
matrices in sub-blocks streamed from storage, with the same compute
kernel on every architecture. This example runs a *functional* small
instance (verifying that every architecture feeds identical bytes and
the tiled product matches numpy) and a *timing* instance at the
benchmark scale (reporting the Fig. 10-style speedups).

Run:  python examples/blocked_gemm_pipeline.py
"""

import numpy as np

from repro.nvm import PAPER_PROTOTYPE, TINY_TEST
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)
from repro.workloads import GemmWorkload, run_workload, speedup


def functional_demo() -> None:
    """Tiny instance: fetch every tile through each architecture and
    run the actual blocked multiplication on the fetched bytes."""
    print("== functional check (64x64 matrices, 16x16 blocks) ==")
    workload = GemmWorkload(n=64, tile=16, max_tiles=10**9)
    rng = np.random.default_rng(42)
    inputs = workload.generate(rng)
    expected = workload.reference(inputs)

    for factory in (BaselineSystem, SoftwareNdsSystem, HardwareNdsSystem):
        system = factory(TINY_TEST, store_data=True)
        for ds in workload.datasets():
            system.ingest(ds.name, ds.dims, ds.element_size,
                          data=inputs[ds.name])

        n, t = workload.n, workload.tile
        blocks = n // t
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(blocks):
            for j in range(blocks):
                acc = np.zeros((t, t), dtype=np.float64)
                for k in range(blocks):
                    a = system.read_tile("A", (i * t, k * t), (t, t),
                                         with_data=True, dtype=np.float32)
                    b = system.read_tile("B", (k * t, j * t), (t, t),
                                         with_data=True, dtype=np.float32)
                    acc += a.data.astype(np.float64) @ b.data.astype(np.float64)
                out[i * t:(i + 1) * t, j * t:(j + 1) * t] = acc
        ok = np.allclose(out, expected)
        print(f"  {system.name:16s} tiled product matches numpy: {ok}")
        assert ok


def timing_demo() -> None:
    """Benchmark-scale timing: the Fig. 10 pipeline per architecture."""
    print("\n== end-to-end timing (4096x4096 matrices, 512x512 blocks) ==")
    workload = GemmWorkload()
    results = {}
    for factory in (BaselineSystem, SoftwareNdsSystem, OracleSystem,
                    HardwareNdsSystem):
        system = factory(PAPER_PROTOTYPE)
        results[system.name] = run_workload(workload, system)
    base = results["baseline"]
    print(f"  {'system':18s}{'total':>10s}{'io busy':>10s}"
          f"{'kernel idle':>13s}{'speedup':>9s}")
    for name, result in results.items():
        print(f"  {name:18s}{result.total_time * 1e3:9.1f}ms"
              f"{result.io_busy * 1e3:9.1f}ms"
              f"{result.kernel_idle * 1e3:12.1f}ms"
              f"{speedup(base, result):8.2f}x")


def main() -> None:
    functional_demo()
    timing_demo()


if __name__ == "__main__":
    main()
