"""Tests for the reproduction CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        assert set(sub.choices) == {"fig3", "fig9", "fig10", "overhead",
                                    "report", "scorecard", "table1",
                                    "bench", "loadtest", "monitor", "all"}

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out and "Tensor Algebra" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Tensor Cores" in out
        assert "2048x2048" in out

    def test_fig9_small(self, capsys):
        assert main(["fig9", "--size", "1024"]) == 0
        out = capsys.readouterr().out
        assert "row-fetch" in out and "write" in out

    def test_fig10_single_workload(self, capsys):
        assert main(["fig10", "-w", "KNN"]) == 0
        out = capsys.readouterr().out
        assert "KNN" in out and "x" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "single-page latency" in out


class TestAsciiChart:
    def test_chart_renders(self):
        from repro.analysis.figures import ascii_chart
        chart = ascii_chart({"a": {32: 1e3, 64: 1e6}, "b": {32: 1e4}},
                            title="demo")
        assert "demo" in chart
        assert "o=a" in chart and "x=b" in chart
        assert "32" in chart

    def test_empty(self):
        from repro.analysis.figures import ascii_chart
        assert ascii_chart({}, title="t") == "t"
