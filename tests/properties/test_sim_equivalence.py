"""Differential test: analytic timelines == event-driven simulation.

The entire timing model rests on replacing event-driven FCFS servers
with next-free-time cursors. This property test feeds both
implementations identical request streams and requires identical
grants.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Timeline
from repro.sim.validate import replay_requests


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1e-2),
                          st.floats(0, 1e-3)),
                min_size=1, max_size=40))
def test_timeline_matches_event_driven_server(requests):
    line = Timeline("analytic")
    analytic = [line.reserve(arrival, duration)
                for arrival, duration in requests]
    event_driven = replay_requests(requests)
    assert len(analytic) == len(event_driven)
    for (a_start, a_end), (e_start, e_end) in zip(analytic, event_driven):
        assert a_start == pytest.approx(e_start, abs=1e-12)
        assert a_end == pytest.approx(e_end, abs=1e-12)


def test_simple_known_schedule():
    grants = replay_requests([(0.0, 2.0), (0.0, 3.0), (10.0, 1.0)])
    assert grants == [(0.0, 2.0), (2.0, 5.0), (10.0, 11.0)]


def test_zero_duration_requests():
    grants = replay_requests([(1.0, 0.0), (1.0, 0.0)])
    assert grants == [(1.0, 1.0), (1.0, 1.0)]


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        replay_requests([(0.0, -1.0)])
