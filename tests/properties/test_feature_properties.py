"""Property-based tests for the optional STL features (compression,
sparse elision, crypto) under randomized write sequences."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SpaceTranslationLayer, ZlibCompressor
from repro.core.api import array_to_bytes, bytes_to_array
from repro.core.crypto import SECTION_BYTES, BlockCipherModel
from repro.nvm import FlashArray, TINY_TEST

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _random_write_sequence(data, stl, dims, reference, rng):
    """Apply 1-5 random region writes to both the STL and a numpy
    shadow copy."""
    for _ in range(data.draw(st.integers(1, 5))):
        origin = tuple(data.draw(st.integers(0, d - 1)) for d in dims)
        extents = tuple(data.draw(st.integers(1, d - o))
                        for o, d in zip(origin, dims))
        patch = rng.integers(0, 2**31, extents).astype(np.int32)
        stl.write_region(1, origin, extents, data=array_to_bytes(patch))
        slicer = tuple(slice(o, o + e) for o, e in zip(origin, extents))
        reference[slicer] = patch


@SETTINGS
@given(st.data())
def test_compressed_stl_equals_plain_stl(data):
    """The compressed STL is observationally identical to the plain
    one for any sequence of region writes."""
    dims = (24, 24)
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                       store_data=True)
    stl = SpaceTranslationLayer(flash, compressor=ZlibCompressor())
    stl.create_space(dims, 4)
    reference = np.zeros(dims, dtype=np.int32)
    _random_write_sequence(data, stl, dims, reference, rng)
    result = stl.read_region(1, (0, 0), dims)
    assert np.array_equal(bytes_to_array(result.data, np.int32), reference)


@SETTINGS
@given(st.data())
def test_sparse_stl_equals_plain_stl(data):
    dims = (24, 24)
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                       store_data=True)
    stl = SpaceTranslationLayer(flash, elide_zero_pages=True)
    stl.create_space(dims, 4)
    reference = np.zeros(dims, dtype=np.int32)
    _random_write_sequence(data, stl, dims, reference, rng)
    result = stl.read_region(1, (0, 0), dims)
    assert np.array_equal(bytes_to_array(result.data, np.int32), reference)


@settings(max_examples=60, deadline=None)
@given(sections=st.integers(1, 16), tweak=st.integers(0, 2**31 - 1),
       seed=st.integers(0, 2**31 - 1))
def test_cipher_is_a_size_preserving_bijection(sections, tweak, seed):
    cipher = BlockCipherModel(key=0xBEEF)
    plaintext = np.random.default_rng(seed).integers(
        0, 256, sections * SECTION_BYTES).astype(np.uint8)
    ciphertext = cipher.encrypt(plaintext, tweak)
    assert ciphertext.size == plaintext.size
    assert np.array_equal(cipher.decrypt(ciphertext, tweak), plaintext)
