"""Columnar flash chains must be bit-identical to the scalar chains.

The columnar core (``FlashArray.columnar = True``) reorders the Python
work — per-plane grouping, ``reserve_many`` chains — but every float it
produces must equal the scalar per-page chain exactly, for reads,
programs and the surrounding line state. Randomized A/B over batch
shapes (wide, narrow, clumped), with and without column hints.
"""

import random

from repro.nvm.address import PhysicalPageAddress
from repro.nvm.flash import FlashArray
from repro.nvm.geometry import Geometry
from repro.nvm.timing import NvmTiming


def _make(columnar):
    geo = Geometry(channels=32, banks_per_channel=8, blocks_per_bank=16,
                   pages_per_block=64, page_size=4096)
    arr = FlashArray(geo, NvmTiming(), store_data=False)
    arr.columnar = columnar
    return arr, geo


def _lines_state(arr):
    out = []
    for line in arr.channel_lines:
        out.append((line.free_at.hex(), line.busy_time.hex(), line.ops))
    for row in arr.bank_lines:
        for line in row:
            out.append((line.free_at.hex(), line.busy_time.hex(),
                        line.ops))
    return out


def _run_trial(seed):
    rng = random.Random(seed)
    a, geo = _make(True)
    b, _ = _make(False)
    t = 0.0
    for step in range(rng.randint(2, 6)):
        n = rng.choice([8, 32, 64, 128, 256, 300])
        mode = rng.choice(["wide", "narrow", "clumped"])
        ppas = []
        for i in range(n):
            if mode == "wide":
                c = rng.randrange(geo.channels)
                bk = rng.randrange(geo.banks_per_channel)
            elif mode == "narrow":
                c = rng.randrange(4)
                bk = rng.randrange(2)
            else:
                c = (i // 8) % geo.channels
                bk = rng.randrange(geo.banks_per_channel)
            ppas.append(PhysicalPageAddress(c, bk, rng.randrange(16),
                                            rng.randrange(64)))
        hinted = rng.random() < 0.5
        cols = (([p.channel for p in ppas], [p.bank for p in ppas])
                if hinted else None)
        t += rng.random() * 1e-3
        kind = rng.choice(["read", "prog", "read", "prog", "erase"])
        if kind == "erase":
            pa = ppas[0]
            ra = a.erase_block(pa.channel, pa.bank, pa.block, t)
            rb = b.erase_block(pa.channel, pa.bank, pa.block, t)
            assert ra.end_time.hex() == rb.end_time.hex()
            continue
        if kind == "read":
            ra = a.read_pages(ppas, t, columns=cols)
            rb = b.read_pages(ppas, t)
        else:
            ra = a.program_pages(ppas, t, columns=cols)
            rb = b.program_pages(ppas, t)
        assert ra.end_time.hex() == rb.end_time.hex(), (seed, step, kind)
        assert [x.hex() for x in ra.completions] == \
            [x.hex() for x in rb.completions], (seed, step, kind)
    assert _lines_state(a) == _lines_state(b), seed


def test_columnar_chains_bit_identical_to_scalar():
    for seed in range(30):
        _run_trial(seed)
