"""Multi-tenant request scheduling over shared resource timelines.

The scheduler is the admission layer of the request spine: N tenant
streams submit :class:`~repro.runtime.tileop.TileOp`s; the scheduler
orders them (global FIFO, per-stream round-robin, or weighted
virtual-time shares), gates each stream at its queue depth, and
executes them one after another against the owning system's analytic
flow. Contention is carried entirely by the shared FCFS
:class:`~repro.sim.resources.Timeline` servers the flows reserve — the
scheduler adds *sequencing*, never timing — so a single stream
reproduces the direct call path bit-for-bit, and any fixed submission
order yields a deterministic schedule.

QoS: each stream carries a ``weight`` (its service share under
``"weighted"`` arbitration — deficit/virtual-time scheduling over the
per-op service time actually consumed) and an optional
``latency_target`` SLO; the scheduler accounts met/violated ops and
latency percentiles per stream and marks violations in the trace.

:class:`QueueDepthWindow` is the one queue-depth primitive in the code
base: the same sliding completion window limits NVMe queue pairs inside
:class:`~repro.host.io_engine.HostIoEngine` and tenant streams here.
"""

from __future__ import annotations

from heapq import heappush, heapreplace
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.runtime.tileop import DEFAULT_STREAM, TileOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.trace import TraceRecorder

__all__ = ["QueueDepthWindow", "StreamHandle", "RequestScheduler",
           "percentile"]

_ARBITRATIONS = ("fifo", "round_robin", "weighted")


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class QueueDepthWindow:
    """Sliding in-flight window: request ``k`` may not issue before
    ``k - depth`` of the previously issued requests completed
    (``depth=None`` = unbounded).

    Under multi-stream round-robin drains end times arrive out of
    order, and the correct gate for the next request is the ``depth``-th
    *largest* completion seen so far. Only those ``depth`` completions
    can ever gate, so the window keeps exactly them in a min-heap whose
    root is the gate — O(log depth) per completion and O(depth) memory,
    versus the O(n) ``insort`` + unbounded list it replaces.
    """

    __slots__ = ("depth", "completed", "_heap")

    def __init__(self, depth: Optional[int] = None) -> None:
        if depth is not None and depth < 1:
            raise ValueError("queue depth must be >= 1 (or None)")
        self.depth = depth
        #: total completions recorded (the heap holds only the largest
        #: ``depth`` of them)
        self.completed = 0
        self._heap: List[float] = []

    def earliest(self, submit_time: float) -> float:
        """Earliest issue time for the next request, honouring the
        window against all previously completed requests."""
        if self.depth is not None and self.completed >= self.depth:
            gate = self._heap[0]
            if gate > submit_time:
                return gate
        return submit_time

    def complete(self, time: float) -> None:
        self.completed += 1
        if self.depth is None:
            return
        heap = self._heap
        if len(heap) < self.depth:
            heappush(heap, time)
        elif time > heap[0]:
            heapreplace(heap, time)

    def reset(self) -> None:
        self.completed = 0
        self._heap.clear()


class StreamHandle:
    """One tenant stream: identity, queue depth, QoS parameters,
    completion history and SLO accounting."""

    def __init__(self, name: str, queue_depth: Optional[int] = None,
                 weight: float = 1.0,
                 latency_target: Optional[float] = None) -> None:
        if weight <= 0:
            raise ValueError("stream weight must be > 0")
        if latency_target is not None and latency_target <= 0:
            raise ValueError("latency target must be > 0 seconds")
        self.name = name
        self.window = QueueDepthWindow(queue_depth)
        self.ops: List[TileOp] = []
        #: service share under ``"weighted"`` arbitration
        self.weight = float(weight)
        #: per-op latency SLO in seconds (None = no target)
        self.latency_target = latency_target
        #: accumulated device service time (sum of op elapsed times)
        self.service_time = 0.0
        #: SLO accounting (only advances when a target is set)
        self.slo_met = 0
        self.slo_violated = 0

    @property
    def queue_depth(self) -> Optional[int]:
        return self.window.depth

    @property
    def virtual_time(self) -> float:
        """Weighted-fair virtual time: service consumed over weight.
        The weighted arbiter always serves the backlogged stream with
        the smallest virtual time, so long-run service shares converge
        to the weight ratios."""
        return self.service_time / self.weight

    @property
    def completions(self) -> List[float]:
        return [op.result.end_time for op in self.ops if op.result is not None]

    @property
    def latencies(self) -> List[float]:
        return [op.latency for op in self.ops if op.result is not None]

    @property
    def queue_waits(self) -> List[float]:
        """Per-op enqueue→issue waits (queue-depth gating)."""
        return [op.queue_wait for op in self.ops
                if op.queue_wait is not None]

    @property
    def service_times(self) -> List[float]:
        """Per-op issue→completion service times."""
        return [op.service_time for op in self.ops
                if op.service_time is not None]

    @property
    def makespan(self) -> float:
        """Last completion over this stream (0.0 before any finish)."""
        completions = self.completions
        return max(completions) if completions else 0.0

    @property
    def mean_latency(self) -> float:
        latencies = self.latencies
        return sum(latencies) / len(latencies) if latencies else 0.0

    def note_result(self, elapsed: float, latency: float) -> bool:
        """Account one completed op; returns True when the op violated
        this stream's latency target."""
        self.service_time += max(elapsed, 0.0)
        if self.latency_target is None:
            return False
        if latency > self.latency_target:
            self.slo_violated += 1
            return True
        self.slo_met += 1
        return False

    def reset(self) -> None:
        self.window.reset()
        self.ops.clear()
        self.service_time = 0.0
        self.slo_met = 0
        self.slo_violated = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamHandle({self.name!r}, depth={self.queue_depth}, "
                f"weight={self.weight}, ops={len(self.ops)})")


class RequestScheduler:
    """Admits tenant streams of TileOps against one storage system.

    Parameters
    ----------
    executor:
        The owning system; must provide ``_execute_op(op,
        earliest_start) -> SystemOpResult``.
    arbitration:
        ``"fifo"`` drains submissions in global submit order;
        ``"round_robin"`` cycles over streams taking one op each;
        ``"weighted"`` serves the backlogged stream with the smallest
        virtual time (service consumed / weight), so a weight-3 stream
        receives ~3× the service share of a weight-1 co-tenant.
    trace:
        Optional :class:`~repro.runtime.trace.TraceRecorder`; every
        executed op gets a parent span and component spans inherit the
        op's stream context. SLO violations are marked as instant
        events.
    """

    def __init__(self, executor, arbitration: str = "fifo",
                 trace: Optional["TraceRecorder"] = None,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        if arbitration not in _ARBITRATIONS:
            raise ValueError(
                f"arbitration must be one of {_ARBITRATIONS}, "
                f"got {arbitration!r}")
        self.executor = executor
        self.arbitration = arbitration
        self.trace = trace
        #: optional :class:`~repro.obs.metrics.MetricsRegistry`; per-op
        #: queue-wait / service / latency observations land here
        self.metrics = metrics
        #: optional :class:`~repro.obs.monitor.Monitor`; completed ops
        #: are streamed to it (observation only — the monitor never
        #: feeds anything back into scheduling or timing)
        self.monitor = None
        self.streams: Dict[str, StreamHandle] = {}
        self.executed: List[TileOp] = []
        self._pending: List[TileOp] = []
        self._next_op_id = 0
        #: per-stream deltas of the executor's fault counters (empty
        #: unless the executor exposes ``fault_counters`` and an
        #: injector is attached)
        self._fault_totals: Dict[str, Dict[str, int]] = {}
        #: per-stream deltas of the executor's DRAM cache counters
        #: (empty unless a cache tier is attached)
        self._cache_totals: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # stream management
    # ------------------------------------------------------------------
    def stream(self, name: str = DEFAULT_STREAM,
               queue_depth: Optional[int] = None,
               weight: Optional[float] = None,
               latency_target: Optional[float] = None) -> StreamHandle:
        """Get or create the stream ``name``.

        ``queue_depth`` is fixed at creation; pass it again only with
        the same value. ``weight`` and ``latency_target`` may be set at
        creation or updated later (the next drain uses the new values).
        """
        handle = self.streams.get(name)
        if handle is None:
            handle = StreamHandle(name, queue_depth,
                                  weight=weight if weight is not None else 1.0,
                                  latency_target=latency_target)
            self.streams[name] = handle
            return handle
        if queue_depth is not None and handle.queue_depth != queue_depth:
            raise ValueError(
                f"stream {name!r} already exists with queue depth "
                f"{handle.queue_depth}, not {queue_depth}")
        if weight is not None:
            if weight <= 0:
                raise ValueError("stream weight must be > 0")
            handle.weight = float(weight)
        if latency_target is not None:
            if latency_target <= 0:
                raise ValueError("latency target must be > 0 seconds")
            handle.latency_target = latency_target
        return handle

    # ------------------------------------------------------------------
    # submission and execution
    # ------------------------------------------------------------------
    def submit(self, op: TileOp) -> TileOp:
        """Queue one op on its stream (created on first use)."""
        self.stream(op.stream)
        op.op_id = self._next_op_id
        self._next_op_id += 1
        op.enqueue_time = op.submit_time
        self._pending.append(op)
        return op

    @property
    def pending(self) -> int:
        return len(self._pending)

    def drain(self) -> List[TileOp]:
        """Execute every pending op in arbitration order; returns the
        executed ops (results attached) in execution order.

        Error policy: an op that raises a typed storage error is
        *consumed* (its fault counters land on its stream), the error
        propagates, and every not-yet-executed op **stays pending** — a
        later ``drain()`` resumes exactly where this one stopped.
        """
        executed: List[TileOp] = []
        rotation: List[str] = []
        for op in self._pending:
            if op.stream not in rotation:
                rotation.append(op.stream)
        rr_index = 0
        while self._pending:
            if self.arbitration == "round_robin":
                op, rr_index = self._pick_round_robin(rotation, rr_index)
            elif self.arbitration == "weighted":
                op = self._pick_weighted(rotation)
            else:
                op = self._pending[0]
            # remove *before* executing: a raising op is consumed, the
            # rest of the batch survives for the next drain
            self._pending.remove(op)
            self._run(op)
            executed.append(op)
        return executed

    def _pick_round_robin(self, rotation: List[str], rr_index: int):
        """One op per stream per cycle, streams in first-submission
        order — deterministic for a fixed submission order."""
        for _ in range(len(rotation)):
            name = rotation[rr_index % len(rotation)]
            rr_index += 1
            for op in self._pending:
                if op.stream == name:
                    return op, rr_index
        return self._pending[0], rr_index

    def _pick_weighted(self, rotation: List[str]) -> TileOp:
        """Virtual-time weighted fairness: serve the backlogged stream
        whose accumulated service/weight is smallest (ties broken by
        first-submission order), then charge it the op's actual service
        time. Long-run shares converge to the weight ratios without
        needing per-op costs up front."""
        backlogged = [name for name in rotation
                      if any(op.stream == name for op in self._pending)]
        for op in self._pending:
            if op.stream not in backlogged:
                backlogged.append(op.stream)
        chosen = min(backlogged,
                     key=lambda name: (self.streams[name].virtual_time,
                                       backlogged.index(name)))
        for op in self._pending:
            if op.stream == chosen:
                return op
        raise AssertionError("backlogged stream without a pending op")

    def execute(self, op: TileOp) -> "TileOp":
        """Submit and immediately execute one op (the synchronous
        facade used by ``StorageSystem.read_tile`` et al.). Pending
        batched ops are left untouched."""
        self.stream(op.stream)
        op.op_id = self._next_op_id
        self._next_op_id += 1
        op.enqueue_time = op.submit_time
        self._run(op)
        return op

    def reset(self) -> None:
        """Forget completion history and restart op-id numbering
        (streams and their QoS parameters persist). Pairs with the
        systems' ``reset_time`` between measurement phases; when a
        :class:`~repro.runtime.trace.TraceRecorder` is attached, call
        its ``clear()`` alongside so post-reset op ids (starting again
        at 0) cannot collide with pre-reset spans."""
        for handle in self.streams.values():
            handle.reset()
        self.executed.clear()
        self._pending.clear()
        self._next_op_id = 0
        self._fault_totals.clear()
        self._cache_totals.clear()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stream_report(self) -> Dict[str, Dict[str, object]]:
        """Per-stream aggregate metrics after a drain.

        Always includes op counts, makespan, mean/max/p50/p95/p99/p999
        latency,
        the queue-wait vs service split of that latency (from each op's
        enqueue→issue→complete timestamps), the stream's weight and
        accumulated ``service_time`` plus its ``service_share`` of all
        streams' service; when a latency target is set, an ``slo``
        sub-dict carries the target and the met/violated counts.
        """
        total_service = sum(h.service_time for h in self.streams.values())
        report: Dict[str, Dict[str, object]] = {}
        for name, handle in self.streams.items():
            if not handle.ops:
                continue
            latencies = handle.latencies
            queue_waits = handle.queue_waits
            services = handle.service_times
            entry: Dict[str, object] = {
                "ops": len(handle.ops),
                "makespan": handle.makespan,
                "mean_latency": handle.mean_latency,
                "max_latency": max(latencies) if latencies else 0.0,
                "p50_latency": percentile(latencies, 0.50),
                "p95_latency": percentile(latencies, 0.95),
                "p99_latency": percentile(latencies, 0.99),
                "p999_latency": percentile(latencies, 0.999),
                "mean_queue_wait": (sum(queue_waits) / len(queue_waits)
                                    if queue_waits else 0.0),
                "p95_queue_wait": percentile(queue_waits, 0.95),
                "mean_service": (sum(services) / len(services)
                                 if services else 0.0),
                "p95_service": percentile(services, 0.95),
                "weight": handle.weight,
                "service_time": handle.service_time,
                "service_share": (handle.service_time / total_service
                                  if total_service > 0 else 0.0),
            }
            if handle.latency_target is not None:
                entry["slo"] = {
                    "target": handle.latency_target,
                    "met": handle.slo_met,
                    "violated": handle.slo_violated,
                }
            cache_totals = self._cache_totals.get(name)
            if cache_totals:
                hits = cache_totals.get("hits", 0)
                misses = cache_totals.get("misses", 0)
                cache_entry: Dict[str, object] = dict(cache_totals)
                cache_entry["hit_rate"] = (round(hits / (hits + misses), 6)
                                           if hits + misses else 0.0)
                entry["cache"] = cache_entry
            report[name] = entry
        return report

    def device_report(self) -> Optional[Dict[str, Dict[str, object]]]:
        """Per-device accounting when the executor runs over a device
        pool (None for single-device systems) — sub-op counts, bytes,
        service seconds, degraded reads, rebuilds and migrations keyed
        ``d0``/``d1``/... like the trace and metrics labels."""
        cluster = getattr(self.executor, "cluster", None)
        if cluster is None:
            return None
        return cluster.device_report()

    def stream_fault_report(self) -> Dict[str, Dict[str, int]]:
        """Per-stream fault/retry/error counters accumulated across all
        executed ops (empty when no injector is attached or nothing
        fired). Keys mirror the injector's counters, plus
        ``ops_failed`` for ops that raised a typed storage error."""
        return {name: dict(counters)
                for name, counters in self._fault_totals.items() if counters}

    def stream_cache_report(self) -> Dict[str, Dict[str, object]]:
        """Per-stream DRAM-tier counters accumulated across all executed
        ops (empty when no cache tier is attached), each with its
        derived ``hit_rate``."""
        report: Dict[str, Dict[str, object]] = {}
        for name, counters in self._cache_totals.items():
            if not counters:
                continue
            entry: Dict[str, object] = dict(counters)
            hits = counters.get("hits", 0)
            misses = counters.get("misses", 0)
            entry["hit_rate"] = (round(hits / (hits + misses), 6)
                                 if hits + misses else 0.0)
            report[name] = entry
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _account_faults(self, op: TileOp, before: Dict[str, int],
                        after: Optional[Dict[str, int]],
                        failed: bool = False, result=None) -> None:
        if after is None:
            return
        totals = self._fault_totals.setdefault(op.stream, {})
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta:
                totals[name] = totals.get(name, 0) + delta
                if result is not None:
                    result.stats.count(name, delta)
        if failed:
            totals["ops_failed"] = totals.get("ops_failed", 0) + 1

    def _account_cache(self, op: TileOp, before: Dict[str, int],
                       after: Optional[Dict[str, int]]) -> None:
        if after is None:
            return
        totals = self._cache_totals.setdefault(op.stream, {})
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta:
                totals[name] = totals.get(name, 0) + delta

    def _run(self, op: TileOp) -> None:
        handle = self.streams[op.stream]
        earliest = handle.window.earliest(op.submit_time)
        probe = getattr(self.executor, "fault_counters", None)
        before = probe() if probe is not None else None
        cache_probe = getattr(self.executor, "cache_counters", None)
        cache_before = cache_probe() if cache_probe is not None else None
        if self.trace is not None:
            self.trace.push_op(op.stream, op.op_id)
        try:
            result = self.executor._execute_op(op, earliest)
        except Exception:
            if before is not None:
                self._account_faults(op, before, probe(), failed=True)
            raise
        finally:
            if self.trace is not None:
                self.trace.pop_op()
        op.result = result
        op.issue_time = result.start_time
        op.complete_time = result.end_time
        if before is not None:
            self._account_faults(op, before, probe(), result=result)
        cache_after = cache_probe() if cache_before is not None else None
        if cache_before is not None:
            self._account_cache(op, cache_before, cache_after)
        handle.window.complete(result.end_time)
        handle.ops.append(op)
        self.executed.append(op)
        violated = handle.note_result(result.end_time - result.start_time,
                                      result.end_time - op.submit_time)
        if self.metrics is not None:
            self.metrics.observe("sched.queue_wait",
                                 result.start_time - op.submit_time)
            self.metrics.observe("sched.service",
                                 result.end_time - result.start_time)
            self.metrics.observe("sched.latency",
                                 result.end_time - op.submit_time)
            self.metrics.count("sched.ops")
        if self.trace is not None:
            self.trace.op_span(op.stream, op.op_id, op.label,
                               result.start_time, result.end_time,
                               kind=op.kind, dataset=op.dataset,
                               queue_wait=result.start_time - op.submit_time,
                               submit=op.submit_time)
            if violated:
                self.trace.instant(
                    "slo", result.end_time, name="slo_violation",
                    stream=op.stream, op_id=op.op_id,
                    latency=result.end_time - op.submit_time,
                    target=handle.latency_target)
        if self.monitor is not None:
            self.monitor.note_op(op, violated=violated,
                                 cache_before=cache_before,
                                 cache_after=cache_after)
