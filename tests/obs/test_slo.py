"""SLO policy and multi-window burn-rate alerting arithmetic."""

from __future__ import annotations

import pytest

from repro.obs.slo import (DEFAULT_BURN_RULES, AlertEvent, BurnRule,
                           SloPolicy)


class TestBurnRule:
    def test_default_pair_is_fast_and_slow(self):
        assert [r.name for r in DEFAULT_BURN_RULES] == ["fast", "slow"]
        fast, slow = DEFAULT_BURN_RULES
        assert fast.threshold > slow.threshold
        assert fast.long_windows < slow.long_windows

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRule("r", long_windows=0, short_windows=1, threshold=1.0)
        with pytest.raises(ValueError):
            BurnRule("r", long_windows=2, short_windows=3, threshold=1.0)
        with pytest.raises(ValueError):
            BurnRule("r", long_windows=2, short_windows=1, threshold=0.0)


class TestSloPolicy:
    def test_error_budget(self):
        policy = SloPolicy(latency_target=1e-3, target_fraction=0.999)
        assert policy.error_budget == pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(latency_target=0.0)
        with pytest.raises(ValueError):
            SloPolicy(latency_target=1e-3, target_fraction=1.0)
        with pytest.raises(ValueError):
            SloPolicy(latency_target=1e-3, rules=())

    def test_burn_rate_math(self):
        policy = SloPolicy(latency_target=1e-3, target_fraction=0.999)
        # 1% bad against a 0.1% budget burns 10x
        assert policy.burn_rate(1, 100) == pytest.approx(10.0)
        assert policy.burn_rate(0, 100) == 0.0
        assert policy.burn_rate(0, 0) == 0.0  # idle window


class TestEvaluate:
    def policy(self):
        return SloPolicy(
            latency_target=1e-3, target_fraction=0.99,
            rules=(BurnRule("fast", long_windows=2, short_windows=1,
                            threshold=10.0),))

    def test_rising_edge_fires_once(self):
        # budget 1%; windows 2-4 are 50% bad = 50x burn
        bad = [0, 0, 50, 50, 50, 0, 0, 0]
        total = [100] * 8
        out = self.policy().evaluate(bad, total, window_seconds=0.25)
        firing = out["rules"]["fast"]["firing"]
        # the short window drops the rule the moment the burst ends
        assert firing == [False, False, True, True, True, False, False,
                          False]
        # one alert at the rising edge only, stamped at the right edge
        assert len(out["alerts"]) == 1
        alert = out["alerts"][0]
        assert alert["window"] == 2
        assert alert["time"] == pytest.approx(0.75)
        assert alert["burn_long"] >= 10.0
        assert alert["burn_short"] >= 10.0

    def test_rearms_after_recovery(self):
        bad = [50, 0, 0, 0, 50, 0]
        total = [100] * 6
        out = self.policy().evaluate(bad, total, window_seconds=1.0)
        assert [a["window"] for a in out["alerts"]] == [0, 4]

    def test_long_window_suppresses_blip(self):
        # a single 12%-bad window: short burn 12x but the 2-window long
        # burn is 6x — under the 10x threshold, no alert
        bad = [0, 12, 0, 0]
        total = [100] * 4
        out = self.policy().evaluate(bad, total, window_seconds=1.0)
        assert out["alerts"] == []

    def test_alerts_sorted_by_window_then_rule(self):
        policy = SloPolicy(
            latency_target=1e-3, target_fraction=0.99,
            rules=(BurnRule("b", 1, 1, 10.0), BurnRule("a", 1, 1, 10.0)))
        out = policy.evaluate([50, 50], [100, 100], window_seconds=1.0)
        assert [(a["window"], a["rule"]) for a in out["alerts"]] == \
            [(0, "a"), (0, "b")]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            self.policy().evaluate([1], [1, 2], window_seconds=1.0)

    def test_output_is_json_ready(self):
        import json
        out = self.policy().evaluate([0, 50], [100, 100],
                                     window_seconds=0.5)
        assert json.dumps(out, sort_keys=True)
        assert out["error_budget"] == pytest.approx(0.01)
        assert out["burn"] == [0.0, pytest.approx(50.0)]


class TestAlertEvent:
    def test_to_dict_round_trip(self):
        event = AlertEvent(rule="fast", time=0.5, window=3,
                           burn_long=12.0, burn_short=20.0, threshold=8.0)
        assert event.to_dict() == {
            "rule": "fast", "time": 0.5, "window": 3,
            "burn_long": 12.0, "burn_short": 20.0, "threshold": 8.0}
