"""Derived observability over the trace/metrics spine.

``repro.obs`` turns the raw spans the runtime records into answers:

* :mod:`repro.obs.metrics` — a deterministic Counter/Gauge/Histogram
  registry threaded through every timed layer via ``set_metrics``
  (absent ⇒ bit-identical timings, like ``set_trace``);
* :mod:`repro.obs.critical_path` — per-op latency attribution: each
  op's ``[start, end)`` is partitioned over the component spans that
  were active, yielding a "where time goes" breakdown per layer;
* :mod:`repro.obs.utilization` — windowed per-resource busy fractions
  (channel/bank heatmap data) from the same spans;
* :mod:`repro.obs.report` — the ``python -m repro report`` backend:
  runs a workload (or loads a saved Chrome trace) and emits breakdown
  tables, histograms and utilization data as text / stable JSON /
  Prometheus text.
"""

from repro.obs.critical_path import (LAYERS, OpAttribution, attribute_op,
                                     classify_span, critical_path)
from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry)
from repro.obs.utilization import utilization_csv, utilization_timeline

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "LAYERS", "OpAttribution", "attribute_op", "classify_span",
    "critical_path",
    "utilization_timeline", "utilization_csv",
]
