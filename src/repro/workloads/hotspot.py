"""Hotspot thermal simulation (Table 1: physics simulation).

Rodinia's Hotspot advances a temperature grid with a 5-point stencil
driven by a power grid: two 2-D datasets, square sub-block kernels
(4096² of 65536² in the paper; same 1/16 tile:data ratio here).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import random_matrix

__all__ = ["HotspotWorkload"]


class HotspotWorkload(Workload):
    name = "Hotspot"
    category = "Physics Simulation"
    data_dim_label = "2D"
    kernel_dim_label = "2D"

    def __init__(self, n: int = 4096, tile_rows: int = 256,
                 tile_cols: int = 1024, max_tiles: int = 64) -> None:
        if n % tile_rows != 0 or n % tile_cols != 0:
            raise ValueError("tile dims must divide n")
        self.n = n
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.max_tiles = max_tiles

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset("temp", (self.n, self.n), 4),
                WorkloadDataset("power", (self.n, self.n), 4)]

    def tile_plan(self) -> List[TileFetch]:
        plan: List[TileFetch] = []
        for i in range(self.n // self.tile_rows):
            for j in range(self.n // self.tile_cols):
                origin = (i * self.tile_rows, j * self.tile_cols)
                extents = (self.tile_rows, self.tile_cols)
                plan.append(TileFetch("temp", origin, extents))
                plan.append(TileFetch("power", origin, extents))
                if len(plan) >= self.max_tiles:
                    return plan
        return plan

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        if fetch.dataset == "power":
            return kernels.stencil(self.tile_rows, self.tile_cols,
                                   element_size=4)
        return 0.0

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        seed = int(rng.integers(2**31))
        return {"temp": random_matrix(self.n, self.n, seed=seed) + 320.0,
                "power": np.abs(random_matrix(self.n, self.n, seed=seed + 1))}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """One explicit stencil step of the simplified thermal model."""
        temp = inputs["temp"].astype(np.float64)
        power = inputs["power"].astype(np.float64)
        padded = np.pad(temp, 1, mode="edge")
        neighbours = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                      + padded[1:-1, :-2] + padded[1:-1, 2:])
        return temp + 0.1 * (neighbours - 4.0 * temp) + 0.05 * power
