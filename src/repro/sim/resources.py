"""Resource timelines: the analytic core of the timing model.

A :class:`Timeline` models a single FCFS server (one flash channel, one
bank, the PCIe link, one CPU hardware thread...). Reserving an interval
returns when the work actually started and finished, pushing the
server's next-free time forward. Because every schedule in the
storage model is deterministic FCFS, chains of ``reserve`` calls
reproduce exactly the behaviour an event-driven simulation would produce,
at a fraction of the cost.

:class:`MultiTimeline` models ``k`` identical servers with
earliest-available dispatch (e.g. "any free bank").
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["Timeline", "MultiTimeline"]


class Timeline:
    """A single FCFS server with a next-free-time cursor.

    Tracks total busy time so utilization can be reported. An optional
    ``observer`` callable ``(name, start, end)`` is invoked after every
    reservation — the metrics registry's hook for per-server busy
    counters. It never feeds back into timing.
    """

    __slots__ = ("name", "free_at", "busy_time", "ops", "observer")

    def __init__(self, name: str = "", start_time: float = 0.0) -> None:
        self.name = name
        self.free_at = float(start_time)
        self.busy_time = 0.0
        self.ops = 0
        self.observer = None

    def reserve(self, earliest_start: float, duration: float) -> Tuple[float, float]:
        """Occupy the server for ``duration`` seconds, starting no earlier
        than ``earliest_start``.

        Returns ``(start, end)``: the actual interval granted.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        start = max(earliest_start, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        self.ops += 1
        if self.observer is not None:
            self.observer(self.name, start, end)
        return start, end

    def peek(self, earliest_start: float) -> float:
        """When would a reservation made now actually start?"""
        return max(earliest_start, self.free_at)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this server was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def reset(self, start_time: float = 0.0) -> None:
        self.free_at = float(start_time)
        self.busy_time = 0.0
        self.ops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline({self.name!r}, free_at={self.free_at:.6g}, ops={self.ops})"


class MultiTimeline:
    """``k`` identical FCFS servers with earliest-available dispatch."""

    __slots__ = ("name", "servers")

    def __init__(self, count: int, name: str = "", start_time: float = 0.0) -> None:
        if count < 1:
            raise ValueError("MultiTimeline needs at least one server")
        self.name = name
        self.servers: List[Timeline] = [
            Timeline(f"{name}[{i}]", start_time) for i in range(count)
        ]

    def reserve(self, earliest_start: float, duration: float) -> Tuple[float, float, int]:
        """Dispatch to the server that can start soonest.

        Returns ``(start, end, server_index)``.
        """
        # Plain scan, no lambda/closure: this sits on the per-request hot
        # path of every host copy. Strict < keeps the first-minimal
        # tie-break of min(..., key=...).
        servers = self.servers
        best = servers[0]
        index = 0
        best_free = best.free_at
        for i in range(1, len(servers)):
            candidate = servers[i]
            if candidate.free_at < best_free:
                best = candidate
                best_free = candidate.free_at
                index = i
        start, end = best.reserve(earliest_start, duration)
        return start, end, index

    def reserve_on(self, index: int, earliest_start: float, duration: float) -> Tuple[float, float]:
        """Reserve on a specific server (e.g. a request pinned to one bank)."""
        return self.servers[index].reserve(earliest_start, duration)

    @property
    def count(self) -> int:
        return len(self.servers)

    def busy_time(self) -> float:
        return sum(s.busy_time for s in self.servers)

    def utilization(self, horizon: float) -> float:
        """Mean utilization over all servers for ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time() / (horizon * len(self.servers)))

    def max_free_at(self) -> float:
        return max(s.free_at for s in self.servers)

    def reset(self, start_time: float = 0.0) -> None:
        for s in self.servers:
            s.reset(start_time)
