"""Embedding-serving workload gates: plan shape, reference math,
request factory, functional read-back on real systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nvm import TINY_TEST
from repro.runtime.tileop import TileOp
from repro.systems import SoftwareNdsSystem
from repro.workloads.embedding import EmbeddingWorkload


def _workload(**kwargs) -> EmbeddingWorkload:
    defaults = dict(num_embeddings=128, embedding_dim=16, num_tables=2,
                    batch_size=2, pooling_factor=3, num_batches=2,
                    seed=5)
    defaults.update(kwargs)
    return EmbeddingWorkload(**defaults)


class TestPlan:
    def test_datasets_shapes(self):
        wl = _workload()
        datasets = wl.datasets()
        assert [ds.name for ds in datasets] == ["emb0", "emb1"]
        assert all(ds.dims == (128, 16) for ds in datasets)
        assert all(ds.element_size == 4 for ds in datasets)

    def test_tile_plan_is_single_rows(self):
        wl = _workload()
        plan = wl.tile_plan()
        # num_batches * num_tables * batch_size * pooling_factor
        assert len(plan) == 2 * 2 * 2 * 3
        for fetch in plan:
            assert fetch.extents == (1, 16)
            assert fetch.origin[1] == 0
            assert 0 <= fetch.origin[0] < 128

    def test_plan_deterministic_per_seed(self):
        assert _workload().plan_rows() == _workload().plan_rows()
        assert _workload().plan_rows() != _workload(seed=6).plan_rows()
        # tile_plan is frozen at construction: repeat calls identical
        wl = _workload()
        assert wl.tile_plan() == wl.tile_plan()

    def test_zipf_skew_concentrates_rows(self):
        wl = EmbeddingWorkload(num_embeddings=10_000, embedding_dim=8,
                               batch_size=8, pooling_factor=8,
                               num_batches=40, alpha=1.2, seed=3)
        rows = wl.plan_rows()
        hot = set(wl.hot_rows(top=64))
        in_hot = sum(1 for r in rows if r in hot)
        # 64 of 10k rows carry a large share of all lookups
        assert in_hot / len(rows) > 0.3

    def test_hot_rows_match_scatter(self):
        wl = _workload()
        assert len(set(wl.hot_rows(top=8))) == 8
        assert all(0 <= r < 128 for r in wl.hot_rows(top=8))


class TestReference:
    def test_reference_is_pooled_sum(self):
        wl = _workload()
        rng = np.random.default_rng(0)
        inputs = wl.generate(rng)
        out = wl.reference(inputs)
        assert out.shape == (2, 2, 2, 16)
        rows = wl.plan_rows()
        index = 0
        for batch in range(2):
            for table in range(2):
                for bag in range(2):
                    expected = np.zeros(16, dtype=np.float32)
                    for _ in range(3):
                        expected += inputs[f"emb{table}"][rows[index]]
                        index += 1
                    np.testing.assert_allclose(
                        out[batch, table, bag], expected, rtol=1e-6)

    def test_generate_requires_fp32(self):
        wl = _workload(weights_precision=2)
        with pytest.raises(NotImplementedError):
            wl.generate(np.random.default_rng(0))


class TestRequestFactory:
    def test_requests_deterministic_per_salt(self):
        wl = _workload()
        # a factory is a stateful stream: build once, drive in order
        fa = wl.request_factory(salt=0)
        fb = wl.request_factory(salt=0)
        a = [[op.origin for op in fa(seq, 0.0)] for seq in range(20)]
        b = [[op.origin for op in fb(seq, 0.0)] for seq in range(20)]
        assert a == b
        fc = wl.request_factory(salt=1)
        c = [[op.origin for op in fc(seq, 0.0)] for seq in range(20)]
        assert a != c

    def test_request_shape_reads_only(self):
        wl = _workload(update_fraction=0.0)
        factory = wl.request_factory()
        ops = factory(0, 0.0)
        # pooling_factor reads per table
        assert len(ops) == 2 * 3
        assert all(op.kind == "read" for op in ops)
        assert all(op.extents == (1, 16) for op in ops)
        datasets = [op.dataset for op in ops]
        assert datasets == ["emb0"] * 3 + ["emb1"] * 3

    def test_update_cadence(self):
        wl = _workload(update_fraction=0.25)
        factory = wl.request_factory()
        kinds = []
        for seq in range(8):
            ops = factory(seq, 0.0)
            kinds.append(any(op.kind == "write" for op in ops))
        # every 4th request (seq 3, 7) is a training update
        assert kinds == [False, False, False, True,
                         False, False, False, True]
        update_ops = factory(11, 0.0)
        # update requests write back exactly the rows they read
        reads = [op.origin for op in update_ops if op.kind == "read"]
        writes = [op.origin for op in update_ops if op.kind == "write"]
        assert reads == writes

    def test_request_bytes(self):
        wl = _workload()
        assert wl.request_bytes == 2 * 3 * 16 * 4


class TestOnSystems:
    def test_functional_readback_matches_reference(self):
        """Ingest real table bytes, run the closed-loop plan through a
        store_data system, pool the fetched rows, compare against the
        analytic reference."""
        wl = _workload(num_tables=1)
        system = SoftwareNdsSystem(TINY_TEST, store_data=True)
        inputs = wl.generate(np.random.default_rng(1))
        for ds in wl.datasets():
            system.ingest(ds.name, ds.dims, ds.element_size,
                          data=inputs[ds.name])
        expected = wl.reference(inputs)
        plan = wl.tile_plan()
        pooled = np.zeros_like(expected)
        index = 0
        clock = 0.0
        for batch in range(wl.num_batches):
            for table in range(wl.num_tables):
                for bag in range(wl.batch_size):
                    for _ in range(wl.pooling_factor):
                        fetch = plan[index]
                        index += 1
                        result = system.read_tile(
                            fetch.dataset, fetch.origin, fetch.extents,
                            start_time=clock, with_data=True,
                            dtype=np.dtype(np.float32))
                        clock = result.end_time
                        pooled[batch, table, bag] += result.data[0]
        np.testing.assert_allclose(pooled, expected, rtol=1e-6)

    def test_runs_through_scheduler_on_all_systems(self):
        from repro.obs.report import SYSTEM_FACTORIES
        wl = _workload(num_tables=1, num_batches=1)
        for name, factory in sorted(SYSTEM_FACTORIES.items()):
            system = factory(TINY_TEST)
            if name == "software-oracle":
                for ds in wl.datasets():
                    system.ingest(ds.name, ds.dims, ds.element_size,
                                  tile=(1, wl.embedding_dim))
            else:
                for ds in wl.datasets():
                    system.ingest(ds.name, ds.dims, ds.element_size)
            system.reset_time()
            ends = []
            for fetch in wl.tile_plan():
                op = TileOp.read(fetch.dataset, fetch.origin,
                                 fetch.extents, submit_time=0.0)
                system.scheduler.execute(op)
                ends.append(op.complete_time)
            assert len(ends) == len(wl.tile_plan())
            assert all(e > 0 for e in ends), name


def test_knob_validation():
    with pytest.raises(ValueError):
        EmbeddingWorkload(num_embeddings=0)
    with pytest.raises(ValueError):
        EmbeddingWorkload(batch_size=0)
    with pytest.raises(ValueError):
        EmbeddingWorkload(weights_precision=0)
    with pytest.raises(ValueError):
        EmbeddingWorkload(update_fraction=1.5)
