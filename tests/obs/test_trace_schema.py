"""Chrome trace schema validation and save/load round-trips.

The export must be loadable by chrome://tracing and Perfetto: integer
tids, thread_name / thread_sort_index metadata, complete events with
microsecond timestamps — and component spans must nest inside their
parent op span."""

from __future__ import annotations

import json

import pytest

from repro.nvm.profiles import TINY_TEST
from repro.runtime.tileop import TileOp
from repro.runtime.trace import TraceRecorder
from repro.systems import SoftwareNdsSystem


@pytest.fixture
def traced_run():
    system = SoftwareNdsSystem(TINY_TEST, store_data=False)
    system.ingest("d", (64, 64), 4)
    system.reset_time()
    trace = TraceRecorder()
    system.set_trace(trace)
    scheduler = system.scheduler
    scheduler.stream("t", 2)
    for origin in ((0, 0), (16, 16), (32, 32)):
        scheduler.submit(TileOp.read("d", origin, (16, 16),
                                     submit_time=0.0, stream="t"))
    scheduler.drain()
    return trace


def test_schema_required_keys(traced_run):
    payload = traced_run.to_chrome()
    assert set(payload) == {"traceEvents", "displayTimeUnit"}
    for event in payload["traceEvents"]:
        assert {"ph", "pid", "tid", "name"} <= set(event)
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert {"cat", "ts", "dur", "args"} <= set(event)
            assert event["dur"] >= 0
            assert "op_id" in event["args"]
        elif event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name",
                                     "thread_sort_index")
        elif event["ph"] == "i":
            assert "ts" in event and "s" in event
        elif event["ph"] == "C":
            assert {"cat", "ts", "args"} <= set(event)
            assert event["cat"] == "counter"
            assert event["args"]
        else:
            pytest.fail(f"unexpected phase {event['ph']!r}")


def test_every_resource_has_thread_metadata(traced_run):
    events = traced_run.to_chrome()["traceEvents"]
    announced = {(e["pid"], e["tid"]) for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
    for event in events:
        if event["ph"] == "X":
            assert (event["pid"], event["tid"]) in announced


def test_component_spans_nest_inside_parent_op(traced_run):
    ops = {s.op_id: s for s in traced_run.spans if s.resource == "ops"}
    assert ops
    checked = 0
    for op_id, op in ops.items():
        for child in traced_run.op_children(op_id):
            assert op.start - 1e-12 <= child.start
            assert child.end <= op.end + 1e-12
            checked += 1
    assert checked > 0


def test_save_is_byte_stable(traced_run, tmp_path):
    a = traced_run.save(tmp_path / "a.json").read_bytes()
    b = traced_run.save(tmp_path / "b.json").read_bytes()
    assert a == b
    # sorted keys: "args" precedes "ph" in every serialized event
    text = a.decode()
    assert text.index('"displayTimeUnit"') < text.index('"traceEvents"')


def test_round_trip_preserves_spans(traced_run, tmp_path):
    path = traced_run.save(tmp_path / "trace.json")
    loaded = TraceRecorder.load(path)
    assert len(loaded.spans) == len(traced_run.spans)
    originals = {(s.resource, s.name, round(s.start, 12), s.op_id)
                 for s in traced_run.spans}
    restored = {(s.resource, s.name, round(s.start, 12), s.op_id)
                for s in loaded.spans}
    assert originals == restored
    for span in loaded.spans:
        assert span.stream == "t"


def test_resource_metrics_survive_round_trip(traced_run, tmp_path):
    path = traced_run.save(tmp_path / "trace.json")
    loaded = TraceRecorder.load(path)
    before = traced_run.resource_metrics()
    after = loaded.resource_metrics()
    assert set(before) == set(after)
    for resource in before:
        assert after[resource]["spans"] == before[resource]["spans"]
        assert after[resource]["busy_time"] == \
            pytest.approx(before[resource]["busy_time"])
        assert after[resource]["bytes"] == before[resource]["bytes"]


def test_bytes_accumulator_ignores_non_numeric():
    trace = TraceRecorder()
    trace.span("link", 0.0, 1.0, bytes=128)
    trace.span("link", 1.0, 2.0, bytes="garbage")
    trace.span("link", 2.0, 3.0, bytes=True)  # bool is not a byte count
    metrics = trace.resource_metrics()
    assert metrics["link"]["bytes"] == 128
    assert metrics["link"]["spans"] == 3


def test_loaded_trace_is_json(tmp_path, traced_run):
    path = traced_run.save(tmp_path / "trace.json")
    payload = json.loads(path.read_text())
    assert payload["traceEvents"]


def test_counter_events_export_as_phase_c(traced_run):
    traced_run.counter("counters", 0.001, "queue_depth", stream="t",
                       depth=3)
    events = traced_run.to_chrome()["traceEvents"]
    counters = [e for e in events if e["ph"] == "C"]
    assert len(counters) == 1
    event = counters[0]
    assert event["name"] == "queue_depth"
    assert event["cat"] == "counter"
    assert event["args"] == {"depth": 3}
    assert event["ts"] == pytest.approx(1000.0)  # microseconds


def test_counter_events_round_trip(traced_run, tmp_path):
    traced_run.counter("counters", 0.001, "offered", stream="t",
                       offered=7, shed=2)
    path = traced_run.save(tmp_path / "trace.json")
    loaded = TraceRecorder.load(path)
    restored = loaded.counters("offered")
    assert len(restored) == 1
    span = restored[0]
    assert span.counter and span.instant
    assert dict(span.args) == {"offered": 7, "shed": 2}
    # counters never appear in the instants() accessor
    assert all(not s.counter for s in loaded.instants())


def test_counter_events_excluded_from_busy_time():
    trace = TraceRecorder()
    trace.span("link", 0.0, 1.0, bytes=128)
    trace.counter("link", 0.5, "depth", depth=10**9)
    metrics = trace.resource_metrics()
    assert metrics["link"]["busy_time"] == pytest.approx(1.0)
    assert metrics["link"]["bytes"] == 128
    assert metrics["link"]["spans"] == 1  # samples, not busy time
