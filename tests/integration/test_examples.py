"""The runnable examples must stay runnable (fast ones, end to end)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.skipif(not EXAMPLES.exists(), reason="examples not present")
class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "building block" in out
        assert "done." in out

    def test_multi_view_tensor(self, capsys):
        out = _run("multi_view_tensor.py", capsys)
        assert "grid view dims: (512, 512)" in out
        assert "done." in out

    def test_device_explorer(self, capsys):
        out = _run("device_explorer.py", capsys)
        assert "NDS placement" in out
        assert "[P3]" in out
        assert "done." in out

    def test_multi_tenant_trace(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = _run("multi_tenant_trace.py", capsys)
        assert "co-run" in out
        assert "vs solo" in out
        assert (tmp_path / "multi_tenant.trace.json").exists()

    def test_qos_isolation(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr("sys.argv", ["qos_isolation.py"])
        out = _run("qos_isolation.py", capsys)
        assert "isolation sweep" in out
        assert "shared channels: none" in out
        assert (tmp_path / "qos_isolation.metrics.json").exists()
        assert (tmp_path / "qos_isolation.sharded.trace.json").exists()
