"""Reliability experiment: retry/latency behaviour versus device age.

The ECC/read-retry model (:mod:`repro.faults`) makes raw bit-error rate
a function of block wear and time since program. This experiment sweeps
``initial_wear`` — modelling devices at different points of their P/E
life — and measures, per system, how the read-retry ladder inflates
tile-read latency and how often reads escalate past the ladder, the
classic RBER → retry-rate → tail-latency chain (Cai et al., DATE 2012;
Mielke et al., IRPS 2008).

Everything is seeded: two calls with the same arguments produce
identical numbers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.faults.model import FaultConfig
from repro.nvm.profiles import TINY_TEST, DeviceProfile
from repro.systems.baseline import BaselineSystem
from repro.systems.hardware_nds import HardwareNdsSystem
from repro.systems.software_nds import SoftwareNdsSystem

__all__ = ["reliability_sweep"]


def _make_systems(profile: DeviceProfile, config: Optional[FaultConfig],
                  store_data: bool) -> Dict[str, object]:
    return {
        "baseline": BaselineSystem(profile, store_data=store_data,
                                   faults=config),
        "software": SoftwareNdsSystem(profile, store_data=store_data,
                                      faults=config),
        "hardware": HardwareNdsSystem(profile, store_data=store_data,
                                      faults=config),
    }


def reliability_sweep(wear_levels: Sequence[int] = (0, 3000, 9000, 18000),
                      n: int = 64, elem: int = 1,
                      profile: DeviceProfile = TINY_TEST,
                      seed: int = 0xF417,
                      rber_base: float = 1e-3,
                      ) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Tile-read latency and retry counts per system per wear level.

    Returns ``{wear: {system: {"elapsed", "retries", "uncorrectable",
    "slowdown"}}}`` where ``slowdown`` is against the same system's
    fault-free run.
    """
    data = np.random.default_rng(seed).integers(
        0, 256, size=(n, n), dtype=np.uint8).astype(np.uint8)
    origin, extents = (0, 0), (n, n)

    clean_elapsed: Dict[str, float] = {}
    clean = _make_systems(profile, None, store_data=True)
    for name, system in clean.items():
        system.ingest("r", (n, n), elem, data=data)
        result = system.read_tile("r", origin, extents, start_time=1.0)
        clean_elapsed[name] = result.elapsed

    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for wear in wear_levels:
        config = FaultConfig(seed=seed, initial_wear=wear,
                             rber_base=rber_base, parity=True)
        systems = _make_systems(profile, config, store_data=True)
        out[wear] = {}
        for name, system in systems.items():
            system.ingest("r", (n, n), elem, data=data)
            result = system.read_tile("r", origin, extents, start_time=1.0)
            flash = getattr(system, "flash", None)
            if flash is None:
                flash = system.ssd.flash
            counters = flash.faults.counters()
            out[wear][name] = {
                "elapsed": result.elapsed,
                "retries": float(counters.get("read_retries", 0)),
                "uncorrectable": float(
                    counters.get("uncorrectable_reads", 0)),
                "reconstructed": float(
                    counters.get("stl_pages_reconstructed", 0)),
                "slowdown": (result.elapsed / clean_elapsed[name]
                             if clean_elapsed[name] > 0 else 0.0),
            }
    return out
