"""Automated bottleneck diagnosis for SLO burn-rate alerts.

For each :class:`~repro.obs.slo.AlertEvent` in a monitor payload the
diagnosis pass compares the alert's long-window span against the
preceding *healthy baseline* (the windows before the span whose
instantaneous burn stayed under 1.0 — on budget; all preceding windows
when none qualify) and names what changed:

* **layer** — windowed critical-path attribution, normalized to
  seconds per completed op, diffed per layer; the dominant layer is the
  largest positive delta and its share of all added per-op latency is
  reported ("+83% of added latency in ``flash``");
* **device** — per-device busy seconds per op, same diff; the dominant
  device is tagged ``(GC)`` when garbage collection accounts for a
  meaningful part of its added busy time;
* **stream** — per-stream mean latency deltas pick the most-affected
  tenant.

The result is one deterministic dict per alert with a human summary
like ``"latency SLO burn 14.2x: +83% of added per-op latency in
'bank' on d2 (GC), stream=tenant1"`` — built from window arithmetic
only, so two identical runs diagnose byte-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["diagnose_report", "diagnose_alert"]

#: a device is tagged (GC) when collections account for at least this
#: share of its added busy time over the alert span
GC_SHARE_THRESHOLD = 0.25


def _span_rate(values, completed, lo: int, hi: int) -> float:
    """Sum of ``values`` over windows ``[lo, hi]`` per completed op."""
    ops = sum(completed[lo:hi + 1])
    if ops <= 0:
        return 0.0
    return sum(values[lo:hi + 1]) / ops


def _baseline_span(burn, alert_lo: int) -> Optional[Tuple[int, int]]:
    """The healthy baseline before ``alert_lo``: trailing windows with
    burn < 1.0 (on budget); all preceding windows when none qualify;
    None when the alert starts at window 0 (nothing to compare)."""
    if alert_lo <= 0:
        return None
    healthy = [i for i in range(alert_lo) if burn[i] < 1.0]
    if healthy:
        return (healthy[0], healthy[-1])
    return (0, alert_lo - 1)


def _weighted_mean_latency(stream_series, lo: int, hi: int) -> float:
    completed = stream_series["completed"]
    means = stream_series["mean_latency"]
    ops = sum(completed[lo:hi + 1])
    if ops <= 0:
        return 0.0
    return sum(means[i] * completed[i]
               for i in range(lo, hi + 1)) / ops


def diagnose_alert(alert: Dict[str, object],
                   payload: Dict[str, object],
                   long_windows: int) -> Dict[str, object]:
    """Diagnose one alert against the monitor payload (see module
    docstring for the method)."""
    series = payload["series"]
    slo = payload["slo"]
    completed = series["completed"]
    window = int(alert["window"])
    alert_lo = max(0, window - long_windows + 1)
    alert_hi = window
    baseline = _baseline_span(slo["burn"], alert_lo)

    out: Dict[str, object] = {
        "alert": dict(alert),
        "alert_windows": [alert_lo, alert_hi],
        "baseline_windows": (list(baseline) if baseline is not None
                             else None),
        "dominant_layer": None,
        "layer_share": 0.0,
        "layer_deltas": {},
        "dominant_device": None,
        "device_gc": False,
        "dominant_stream": None,
        "stream_latency_delta": 0.0,
    }

    def rate(values, span):
        if span is None:
            return 0.0
        return _span_rate(values, completed, span[0], span[1])

    # --- layer: windowed critical-path attribution per completed op
    attribution = payload.get("attribution")
    if attribution is not None:
        layer_rows = attribution["layers"]
        layers = sorted({name for row in layer_rows for name in row})
        deltas: Dict[str, float] = {}
        for layer in layers:
            values = [row.get(layer, 0.0) for row in layer_rows]
            deltas[layer] = (rate(values, (alert_lo, alert_hi))
                             - rate(values, baseline))
        out["layer_deltas"] = deltas
        added = sum(delta for delta in deltas.values() if delta > 0)
        if added > 0:
            dominant = max(deltas.items(),
                           key=lambda item: (item[1], item[0]))
            out["dominant_layer"] = dominant[0]
            out["layer_share"] = dominant[1] / added

    # --- device: busy seconds per completed op, GC tag
    devices = payload.get("devices")
    if devices is not None and devices["busy_seconds"]:
        busy_deltas: Dict[str, float] = {}
        for name, values in devices["busy_seconds"].items():
            busy_deltas[name] = (rate(values, (alert_lo, alert_hi))
                                 - rate(values, baseline))
        dominant = max(busy_deltas.items(),
                       key=lambda item: (item[1], item[0]))
        if dominant[1] > 0:
            out["dominant_device"] = dominant[0]
            gc_values = devices["gc_seconds"].get(dominant[0])
            if gc_values is not None:
                gc_delta = (rate(gc_values, (alert_lo, alert_hi))
                            - rate(gc_values, baseline))
                out["device_gc"] = (
                    gc_delta > 0
                    and gc_delta >= GC_SHARE_THRESHOLD * dominant[1])

    # --- stream: most-affected tenant by mean latency delta
    streams = series.get("streams") or {}
    stream_deltas: Dict[str, float] = {}
    for name, stream_series in streams.items():
        stream_deltas[name] = (
            _weighted_mean_latency(stream_series, alert_lo, alert_hi)
            - (_weighted_mean_latency(stream_series, *baseline)
               if baseline is not None else 0.0))
    if stream_deltas:
        dominant = max(stream_deltas.items(),
                       key=lambda item: (item[1], item[0]))
        out["dominant_stream"] = dominant[0]
        out["stream_latency_delta"] = dominant[1]

    # --- human summary
    objective = payload.get("policy", {}).get("objective", "latency")
    parts = [f"{objective} SLO burn {float(alert['burn_long']):.1f}x"]
    if out["dominant_layer"] is not None:
        where = (f"+{out['layer_share']:.0%} of added per-op latency "
                 f"in '{out['dominant_layer']}'")
        if out["dominant_device"] is not None:
            where += f" on {out['dominant_device']}"
            if out["device_gc"]:
                where += " (GC)"
        parts.append(where)
    elif out["dominant_device"] is not None:
        where = f"added busy time on {out['dominant_device']}"
        if out["device_gc"]:
            where += " (GC)"
        parts.append(where)
    if out["dominant_stream"] is not None:
        parts.append(f"stream={out['dominant_stream']}")
    out["summary"] = ": ".join(parts[:1]) + (
        ": " + ", ".join(parts[1:]) if len(parts) > 1 else "")
    return out


def diagnose_report(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Diagnose every alert in a monitor payload (one dict per alert,
    in firing order). The payload must carry an ``slo`` section; the
    ``attribution`` and ``devices`` sections (trace-derived) enrich the
    diagnosis when present."""
    slo = payload.get("slo")
    if not slo or not slo.get("alerts"):
        return []
    rule_long: Dict[str, int] = {}
    for name, entry in slo.get("rules", {}).items():
        rule_long[name] = int(entry.get("long_windows", 1))
    policy = payload.get("policy") or {}
    for rule in policy.get("rules", []):
        rule_long.setdefault(rule["name"], int(rule["long_windows"]))
    return [diagnose_alert(alert, payload,
                           rule_long.get(alert["rule"], 1))
            for alert in slo["alerts"]]
