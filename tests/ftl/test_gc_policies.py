"""Tests for the GC victim-selection policies."""

import numpy as np
import pytest

from repro.ftl import BaselineSSD, GarbageCollector, PageMapFTL
from repro.ftl.mapping import PlaneAllocator
from repro.nvm import FlashArray, Geometry, NvmTiming
from repro.nvm.profiles import TINY_TEST


@pytest.fixture
def plane():
    geometry = Geometry(channels=1, banks_per_channel=1, blocks_per_bank=6,
                        pages_per_block=4, page_size=64)
    return PlaneAllocator(0, 0, geometry)


def _fill_block(plane):
    return [plane.allocate_page() for _ in range(4)]


class TestVictimPolicies:
    def test_greedy_picks_most_invalid(self, plane):
        a = _fill_block(plane)
        b = _fill_block(plane)
        plane.invalidate(a[0])
        for ppa in b[:3]:
            plane.invalidate(ppa)
        assert plane.victim_candidates("greedy")[0] == b[0].block

    def test_fifo_picks_oldest(self, plane):
        a = _fill_block(plane)
        b = _fill_block(plane)
        # b is emptier, but a filled first
        for ppa in b[:3]:
            plane.invalidate(ppa)
        assert plane.victim_candidates("fifo")[0] == a[0].block

    def test_cost_benefit_weighs_age_against_utilization(self, plane):
        a = _fill_block(plane)        # old, fully live
        b = _fill_block(plane)        # newer, mostly dead
        for ppa in b[:3]:
            plane.invalidate(ppa)
        # a is older but 100 % live => score 0; b wins
        assert plane.victim_candidates("cost-benefit")[0] == b[0].block
        # now kill a too: a becomes old AND empty => a wins
        for ppa in a:
            plane.invalidate(ppa)
        assert plane.victim_candidates("cost-benefit")[0] == a[0].block

    def test_unknown_policy(self, plane):
        _fill_block(plane)
        with pytest.raises(ValueError):
            plane.victim_candidates("magic")

    def test_collector_rejects_unknown_policy(self):
        geometry = Geometry(channels=1, banks_per_channel=1)
        timing = NvmTiming()
        flash = FlashArray(geometry, timing, store_data=False)
        with pytest.raises(ValueError):
            GarbageCollector(PageMapFTL(geometry), flash, policy="bogus")


class TestPoliciesEndToEnd:
    @pytest.mark.parametrize("policy", ["greedy", "fifo", "cost-benefit"])
    def test_churn_survives_under_every_policy(self, policy, rng):
        profile = TINY_TEST
        ssd = BaselineSSD(profile, store_data=True)
        ssd.gc.policy = policy
        stride = (profile.geometry.channels
                  * profile.geometry.banks_per_channel)
        lpns = [i * stride for i in range(4)]
        marker = np.full(ssd.page_size, 9, dtype=np.uint8)
        for round_id in range(40):
            ssd.write_lpns(lpns, float(round_id),
                           data=[marker] * len(lpns))
        assert ssd.gc.total_erased > 0
        result = ssd.read_lpns(lpns, 1000.0, with_data=True)
        for page in result.data:
            assert page[0] == 9

    def test_greedy_relocates_least_data(self, rng):
        """Greedy reclaims the emptiest blocks, so it copies no more
        live data than FIFO under the same churn."""
        def churn(policy):
            ssd = BaselineSSD(TINY_TEST, store_data=False)
            ssd.gc.policy = policy
            stride = (TINY_TEST.geometry.channels
                      * TINY_TEST.geometry.banks_per_channel)
            rng_local = np.random.default_rng(7)
            for round_id in range(120):
                lpn = int(rng_local.integers(0, 6)) * stride
                ssd.write_lpns([lpn], float(round_id))
            return ssd.gc.total_relocated

        assert churn("greedy") <= churn("fifo")
