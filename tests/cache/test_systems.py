"""Integration tests: the DRAM tier wired through all four systems."""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.nvm import TINY_TEST
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)

ALL_SYSTEMS = (BaselineSystem, SoftwareNdsSystem, HardwareNdsSystem,
               OracleSystem)
IDS = ("baseline", "software", "hardware", "oracle")

DIMS = (64, 64)
TILE = (16, 16)


def make_system(cls, cache, **kwargs):
    system = cls(TINY_TEST, cache=cache, **kwargs)
    tile = {"tile": TILE} if cls is OracleSystem else {}
    system.ingest("m", DIMS, 4, **tile)
    return system


class TestWiring:
    @pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=IDS)
    def test_no_cache_means_no_tier(self, cls):
        system = make_system(cls, cache=None)
        assert system.tier is None
        assert system.cache_report() is None
        assert system.cache_counters() is None
        # the fence is a no-op without a tier
        assert system.flush_cache(1.5) == 1.5

    @pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=IDS)
    def test_repeat_read_hits_and_speeds_up(self, cls):
        system = make_system(cls, cache=CacheConfig(capacity_bytes=1 << 20))
        miss = system.read_tile("m", (0, 0), TILE).end_time
        system.reset_time()  # drain timelines so latencies compare 1:1
        hit = system.read_tile("m", (0, 0), TILE).end_time
        report = system.cache_report()
        assert report["hits"] >= 1
        assert report["misses"] >= 1
        assert hit < miss

    @pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=IDS)
    def test_per_stream_hit_rates(self, cls):
        system = make_system(cls, cache=CacheConfig(capacity_bytes=1 << 20))
        system.read_tile("m", (0, 0), TILE, stream="hot")
        system.read_tile("m", (0, 0), TILE, stream="hot")
        system.read_tile("m", (16, 16), TILE, stream="cold")
        streams = system.scheduler.stream_cache_report()
        assert streams["hot"]["hits"] >= 1
        assert streams["hot"]["hit_rate"] > 0
        assert streams["cold"].get("hits", 0) == 0
        # the per-op report surfaces the same counters
        assert system.scheduler.stream_report()["hot"]["cache"]["hits"] >= 1

    @pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=IDS)
    def test_write_through_keeps_device_path(self, cls):
        system = make_system(cls, cache=CacheConfig(capacity_bytes=1 << 20))
        result = system.write_tile("m", (0, 0), TILE)
        assert result.fetched_bytes > 0
        assert system.cache_report()["writebacks"] == 0

    @pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=IDS)
    def test_write_back_defers_then_fences(self, cls):
        system = make_system(cls, cache=CacheConfig(
            capacity_bytes=1 << 20, write_back=True, dirty_max=64))
        result = system.write_tile("m", (0, 0), TILE)
        assert result.fetched_bytes == 0  # absorbed in DRAM
        assert system.tier.dirty_count >= 1
        fence = system.flush_cache(result.end_time)
        assert fence > result.end_time  # the deferred device write ran
        assert system.tier.dirty_count == 0
        assert system.cache_report()["writebacks"] >= 1

    @pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=IDS)
    def test_read_after_write_back_hits_dram(self, cls):
        system = make_system(cls, cache=CacheConfig(
            capacity_bytes=1 << 20, write_back=True))
        system.write_tile("m", (0, 0), TILE)
        before = system.cache_report()["hits"]
        system.read_tile("m", (0, 0), TILE)
        assert system.cache_report()["hits"] > before


class TestFunctionalCoherence:
    @pytest.mark.parametrize("cls", (SoftwareNdsSystem, HardwareNdsSystem),
                             ids=("software", "hardware"))
    @pytest.mark.parametrize("write_back", (False, True),
                             ids=("write-through", "write-back"))
    def test_cached_reads_return_fresh_bytes(self, cls, write_back, rng):
        system = cls(TINY_TEST, store_data=True, cache=CacheConfig(
            capacity_bytes=1 << 20, write_back=write_back))
        data = rng.integers(0, 2**31, DIMS).astype(np.int32)
        system.ingest("m", DIMS, 4, data=data)
        # populate the tier, then overwrite the cached tile
        system.read_tile("m", (0, 0), TILE, with_data=True, dtype=np.int32)
        patch = rng.integers(0, 2**31, TILE).astype(np.int32)
        system.write_tile("m", (0, 0), TILE, data=patch)
        result = system.read_tile("m", (0, 0), TILE, with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(result.data, patch)
        # unrelated tiles are untouched
        other = system.read_tile("m", (16, 16), TILE, with_data=True,
                                 dtype=np.int32)
        assert np.array_equal(other.data, data[16:32, 16:32])

    @pytest.mark.parametrize("cls", (BaselineSystem, OracleSystem),
                             ids=("baseline", "oracle"))
    def test_linear_systems_refuse_functional_reads_with_tier(self, cls):
        system = cls(TINY_TEST, store_data=True,
                     cache=CacheConfig(capacity_bytes=1 << 20))
        tile = {"tile": TILE} if cls is OracleSystem else {}
        system.ingest("m", DIMS, 4, **tile)
        with pytest.raises(NotImplementedError):
            system.read_tile("m", (0, 0), TILE, with_data=True)


class TestPrefetch:
    @pytest.mark.parametrize("cls", (SoftwareNdsSystem, HardwareNdsSystem),
                             ids=("software", "hardware"))
    def test_sequential_scan_hits_prefetched_regions(self, cls):
        system = cls(TINY_TEST, cache=CacheConfig(capacity_bytes=1 << 20,
                                                  prefetch=2))
        system.ingest("m", DIMS, 4)
        for row in range(0, DIMS[0], TILE[0]):
            system.read_tile("m", (row, 0), TILE)
        report = system.cache_report()
        assert report["prefetch_issued"] > 0
        assert report["prefetch_hits"] > 0
        assert report["prefetch_accuracy"] > 0

    @pytest.mark.parametrize("cls", (BaselineSystem, OracleSystem),
                             ids=("baseline", "oracle"))
    def test_linear_systems_ignore_prefetch(self, cls):
        system = make_system(cls, cache=CacheConfig(
            capacity_bytes=1 << 20, prefetch=2))
        system.read_tile("m", (0, 0), TILE)
        assert system.cache_report()["prefetch_issued"] == 0


class TestDeterminism:
    @staticmethod
    def _trace(cls, cache):
        system = cls(TINY_TEST, cache=cache)
        tile = {"tile": TILE} if cls is OracleSystem else {}
        system.ingest("m", DIMS, 4, **tile)
        ends = []
        for origin in [(0, 0), (16, 0), (0, 0), (16, 16), (0, 0)]:
            ends.append(system.read_tile("m", origin, TILE).end_time.hex())
            ends.append(system.write_tile("m", origin, TILE).end_time.hex())
        fence = system.flush_cache()
        return ends, fence.hex(), system.cache_report()

    @pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=IDS)
    @pytest.mark.parametrize("policy", ("lru", "clock", "admission"))
    def test_two_runs_bit_identical(self, cls, policy):
        cache = CacheConfig(capacity_bytes=32 * 1024, policy=policy,
                            write_back=True, dirty_max=4)
        assert self._trace(cls, cache) == self._trace(cls, cache)


class TestPooledAggregation:
    def test_cache_report_merges_pool_members(self):
        system = SoftwareNdsSystem(TINY_TEST, devices=2,
                                   cache=CacheConfig(capacity_bytes=1 << 20))
        system.ingest("m", DIMS, 4)
        system.read_tile("m", (0, 0), TILE)
        system.read_tile("m", (0, 0), TILE)
        report = system.cache_report()
        assert report is not None
        assert report["hits"] >= 1
        assert 0.0 < report["hit_rate"] <= 1.0
