"""Metrics registry: counters, histograms, registry semantics and the
Prometheus/snapshot exports."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry)


class TestCounter:
    def test_increments(self):
        c = Counter("ops")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("ops").inc(-1)

    def test_accumulates_seconds(self):
        c = Counter("busy")
        c.inc(1.5e-6)
        c.inc(0.5e-6)
        assert c.value == pytest.approx(2e-6)


class TestHistogram:
    def test_default_buckets_are_fixed_and_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-7)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(10.0)

    def test_observe_lands_in_bucket(self):
        h = Histogram("lat", bounds=(1e-6, 1e-3, 1.0))
        h.observe(5e-7)    # <= 1e-6
        h.observe(1e-6)    # inclusive upper edge
        h.observe(2e-4)    # <= 1e-3
        h.observe(50.0)    # overflow
        assert h.counts == [2, 1, 0]
        assert h.overflow == 1
        assert h.count == 4
        assert h.mean == pytest.approx((5e-7 + 1e-6 + 2e-4 + 50.0) / 4)

    def test_cumulative_ends_with_inf(self):
        h = Histogram("lat", bounds=(1.0, 2.0))
        h.observe(0.5)
        h.observe(3.0)
        cum = h.cumulative()
        assert cum[-1] == ("+Inf", 2)
        assert cum[0] == ("1", 1)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(2.0, 1.0))

    def test_quantile_within_one_bucket_of_exact(self):
        """The estimate must land in the same bucket as the exact
        nearest-rank sample quantile (= within one bucket width)."""
        import random
        rng = random.Random(7)
        samples = [rng.uniform(1e-6, 5e-3) for _ in range(500)]
        h = Histogram("lat")
        for value in samples:
            h.observe(value)
        bounds = (0.0,) + tuple(h.bounds)
        ordered = sorted(samples)
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = ordered[max(1, min(len(ordered),
                                       round(q * len(ordered)))) - 1]
            estimate = h.quantile(q)
            bucket = next(i for i in range(1, len(bounds))
                          if exact <= bounds[i])
            assert bounds[bucket - 1] <= estimate <= bounds[bucket], \
                f"q={q}: {estimate} outside bucket of exact {exact}"

    def test_quantile_single_bucket_interpolates_geometrically(self):
        h = Histogram("lat", bounds=(1e-6, 1e-3, 1.0))
        for _ in range(4):
            h.observe(2e-4)  # all land in the (1e-6, 1e-3] bucket
        # rank 2 of 4 => position 0.5, geometric midpoint of the bucket
        assert h.quantile(0.5) == pytest.approx(
            1e-6 * (1e-3 / 1e-6) ** 0.5)

    def test_quantile_edges_and_overflow(self):
        h = Histogram("lat", bounds=(1.0, 2.0))
        assert h.quantile(0.5) == 0.0  # empty
        h.observe(0.5)
        h.observe(100.0)  # overflow
        # overflow samples report the last finite bound
        assert h.quantile(1.0) == 2.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_snapshot_carries_p50_p99(self):
        reg = MetricsRegistry()
        for value in (1e-5, 2e-5, 3e-5):
            reg.observe("lat", value)
        snap = reg.snapshot()["histograms"]["lat"]
        assert snap["p50"] == reg.histogram("lat").quantile(0.50)
        assert snap["p99"] == reg.histogram("lat").quantile(0.99)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")

    def test_cross_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.count("x")
        with pytest.raises(ValueError):
            reg.observe("x", 1.0)

    def test_snapshot_is_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.count("z.ops", 2)
        reg.count("a.ops")
        reg.observe("lat", 1e-5)
        reg.set_gauge("depth", 4)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.ops", "z.ops"]
        assert snap["counters"]["z.ops"] == 2
        assert snap["gauges"]["depth"] == 4
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["histograms"]["lat"]["sum"] == pytest.approx(1e-5)

    def test_snapshot_identical_across_identical_runs(self):
        def run():
            reg = MetricsRegistry()
            for value in (1e-6, 3e-4, 2e-2):
                reg.observe("lat", value)
                reg.count("ops")
            return reg.snapshot()
        assert run() == run()

    def test_timeline_observer_accumulates(self):
        reg = MetricsRegistry()
        observe = reg.timeline_observer()
        observe("ch0", 0.0, 2e-5)
        observe("ch0", 5e-5, 6e-5)
        snap = reg.snapshot()
        assert snap["counters"]["timeline.ch0.busy_seconds"] == \
            pytest.approx(3e-5)
        assert snap["counters"]["timeline.ch0.reservations"] == 2

    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.count("flash.pages_read", 7)
        reg.observe("sched.latency", 0.5)
        text = reg.to_prometheus(prefix="repro")
        assert "# TYPE repro_flash_pages_read counter" in text
        assert "repro_flash_pages_read 7" in text
        assert "# TYPE repro_sched_latency histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_sched_latency_count 1" in text
        assert text.endswith("\n")

    def test_clear(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1
