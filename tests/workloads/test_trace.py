"""Tests for access-trace recording and replay."""

import numpy as np
import pytest

from repro.nvm import TINY_TEST
from repro.systems import BaselineSystem, HardwareNdsSystem
from repro.workloads.trace import (AccessTrace, TraceEvent, TracingSystem,
                                   replay_trace)


@pytest.fixture
def recorded(rng):
    inner = BaselineSystem(TINY_TEST, store_data=True)
    traced = TracingSystem(inner)
    data = rng.integers(0, 2**31, (32, 32)).astype(np.int32)
    traced.ingest("m", (32, 32), 4, data=data)
    traced.read_tile("m", (0, 0), (8, 32))
    traced.read_tile("m", (8, 0), (8, 32))
    traced.read_tile("m", (0, 0), (32, 8))
    return traced.trace, data


class TestRecording:
    def test_events_captured_in_order(self, recorded):
        trace, _data = recorded
        assert [e.kind for e in trace.events] == ["read"] * 3
        assert trace.events[0].extents == (8, 32)
        assert trace.events[2].extents == (32, 8)

    def test_datasets_recorded_once(self, recorded):
        trace, _data = recorded
        assert trace.datasets == [("m", (32, 32), 4)]

    def test_read_bytes(self, recorded):
        trace, _data = recorded
        assert trace.read_bytes == (8 * 32 + 8 * 32 + 32 * 8) * 4

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("scan", "m", (0,), (1,))


class TestSerialization:
    def test_json_roundtrip(self, recorded):
        trace, _data = recorded
        loaded = AccessTrace.from_json(trace.to_json())
        assert loaded.datasets == trace.datasets
        assert loaded.events == trace.events

    def test_file_roundtrip(self, recorded, tmp_path):
        trace, _data = recorded
        path = tmp_path / "trace.json"
        trace.save(path)
        assert AccessTrace.load(path).events == trace.events


class TestReplay:
    def test_replay_on_other_architecture(self, recorded):
        trace, data = recorded
        system = HardwareNdsSystem(TINY_TEST, store_data=True)
        total, results = replay_trace(trace, system, data={"m": data})
        assert len(results) == len(trace.events)
        assert total > 0
        # completions chain: each access starts at the previous end
        ends = [r.end_time for r in results]
        assert ends == sorted(ends)

    def test_replay_comparison_shows_architecture_gap(self, recorded):
        trace, _data = recorded
        base_total, _ = replay_trace(trace,
                                     BaselineSystem(TINY_TEST,
                                                    store_data=False))
        nds_total, _ = replay_trace(trace,
                                    HardwareNdsSystem(TINY_TEST,
                                                      store_data=False))
        # the trace contains a column fetch, so NDS wins overall
        assert nds_total < base_total

    def test_replay_with_writes(self, rng):
        trace = AccessTrace()
        trace.record_dataset("m", (16, 16), 4)
        trace.append(TraceEvent("write", "m", (0, 0), (16, 16)))
        trace.append(TraceEvent("read", "m", (4, 4), (8, 8)))
        data = {"m": rng.integers(0, 99, (16, 16)).astype(np.int32)}
        system = HardwareNdsSystem(TINY_TEST, store_data=True)
        _total, results = replay_trace(trace, system, data=data)
        assert len(results) == 2
