"""Tests for NDS garbage collection and the reverse lookup table."""

import numpy as np
import pytest

from repro.core import NdsGarbageCollector, SpaceTranslationLayer
from repro.core.api import array_to_bytes, bytes_to_array
from repro.core.gc import OOB_BYTES_PER_UNIT
from repro.nvm import FlashArray, Geometry, NvmTiming


@pytest.fixture
def pressured_stl():
    geometry = Geometry(channels=2, banks_per_channel=2, blocks_per_bank=4,
                        pages_per_block=4, page_size=64)
    timing = NvmTiming(t_read=1e-6, t_program=5e-6, t_erase=20e-6,
                       channel_bandwidth=100e6)
    flash = FlashArray(geometry, timing, store_data=True)
    return SpaceTranslationLayer(flash, gc_threshold=0.30)


class TestReverseTable:
    def test_alloc_populates_reverse(self, pressured_stl):
        stl = pressured_stl
        space = stl.create_space((8, 8), 2)
        stl.write(space.space_id, (0, 0), (8, 8))
        assert len(stl.gc.reverse) > 0
        for entry in stl.gc.reverse.values():
            assert entry.space_id == space.space_id

    def test_oob_accounting(self, pressured_stl):
        stl = pressured_stl
        space = stl.create_space((8, 8), 2)
        stl.write(space.space_id, (0, 0), (8, 8))
        assert (stl.gc.reverse_table_bytes()
                == len(stl.gc.reverse) * OOB_BYTES_PER_UNIT)


class TestCollection:
    def test_btree_patched_after_relocation(self, pressured_stl):
        stl = pressured_stl
        space = stl.create_space((8, 8), 2)
        data = np.arange(64, dtype=np.int16).reshape(8, 8)
        for round_id in range(24):
            stl.write(space.space_id, (0, 0), (8, 8),
                      data=array_to_bytes(data * 0 + round_id),
                      start_time=float(round_id))
        assert stl.gc.total_erased > 0
        # the index must point at live, programmed units
        index = stl.indexes[space.space_id]
        for entry in index.iter_entries():
            for ppa in entry.allocated_pages():
                assert stl.flash.is_programmed(ppa)
        result = stl.read(space.space_id, (0, 0), (8, 8))
        assert bytes_to_array(result.data, np.int16)[0, 0] == 23

    def test_gc_timing_charged(self, pressured_stl):
        stl = pressured_stl
        space = stl.create_space((8, 8), 2)
        saw_gc_time = False
        for round_id in range(24):
            result = stl.write(space.space_id, (0, 0), (8, 8),
                               start_time=float(round_id))
            if any(block.gc_time > 0 for block in result.blocks):
                saw_gc_time = True
        assert saw_gc_time

    def test_threshold_bounds(self, pressured_stl):
        with pytest.raises(ValueError):
            NdsGarbageCollector(pressured_stl.allocator,
                                pressured_stl.flash,
                                pressured_stl._resolve_entry,
                                threshold=1.5)
