"""Wall-clock hot-path benchmark suite.

Simulated time is free — the model is analytic — so the only cost that
matters for iterating on experiments is *wall-clock* time spent in the
Python hot path: region translation, page fan-out, and per-request
Timeline bookkeeping. This module runs the same GEMM / conv2d macro
scenario on all four systems and reports, per ``system × workload``:

- ``wall_s``        – wall-clock seconds for the whole scenario,
- ``ops``           – simulated operations executed (ingest + tile
  reads + one tile write),
- ``ops_per_s``     – wall-clock throughput,
- ``us_wall_per_op`` – microseconds of wall time per simulated op.

Next to the wall numbers it records a ``simulated`` section: the
deterministic model outputs (ingest / last read / write end times and a
sum over every read completion, all as ``float.hex()``). Two runs of
the benchmark must produce **byte-identical** simulated sections — CI's
``bench-smoke`` job asserts exactly that — while the wall numbers are
the ones allowed to move.

Run it via ``python -m repro bench`` or
``python benchmarks/bench_hotpath.py``.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.nvm import PAPER_PROTOTYPE
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)
from repro.workloads.conv2d import Conv2dWorkload
from repro.workloads.gemm import GemmWorkload

__all__ = ["BENCH_SYSTEMS", "bench_workloads", "run_scenario",
           "run_hotpath_bench", "run_micro_bench", "format_bench",
           "bench_json", "apply_tuning"]

BENCH_SYSTEMS = (BaselineSystem, SoftwareNdsSystem, HardwareNdsSystem,
                 OracleSystem)


def bench_workloads(max_tiles: int = 48) -> Dict[str, Callable[[], object]]:
    """The macro scenarios: a GEMM tile sweep and a conv2d halo sweep."""
    return {
        "gemm": lambda: GemmWorkload(n=512, tile=128, max_tiles=max_tiles),
        "conv2d": lambda: Conv2dWorkload(n=1024, tile_rows=128,
                                         tile_cols=256,
                                         max_tiles=max_tiles),
    }


def apply_tuning(system, mode: Optional[str]) -> None:
    """Force a hot-path tuning mode on an already-built system.

    ``"columnar"`` turns the flash arrays' columnar chains on;
    ``"scalar"`` turns every batched fast path (columnar chains, epoch
    batching, fan-out batching) off. Both change wall-clock only — the
    A/B cells below assert the simulated sections stay byte-identical.
    """
    if mode is None:
        return
    if mode not in ("columnar", "scalar"):
        raise ValueError(f"unknown tuning mode {mode!r}")
    cluster = getattr(system, "cluster", None)
    members = ([handle.system for handle in cluster.pool.devices]
               if cluster is not None else [system])
    for member in members:
        stl = getattr(member, "stl", None)
        flash = getattr(stl, "flash", None)
        if flash is None:
            ssd = getattr(member, "ssd", None)
            flash = getattr(ssd, "flash", None)
        if mode == "columnar":
            if flash is not None:
                flash.columnar = True
        else:
            if flash is not None:
                flash.columnar = False
            if stl is not None:
                stl.batch_epochs = False
                stl.batch_fanout = False


def run_scenario(cls, workload, devices: int = 1,
                 cache=None, parallel: int = 0,
                 tuning: Optional[str] = None) -> Tuple[int, Dict[str, str]]:
    """Ingest every dataset, read the full tile plan, write one tile.

    Returns ``(ops, simulated)`` where ``simulated`` holds the
    deterministic end times as ``float.hex()`` strings. Wall time is
    measured by the caller around this function. ``devices > 1`` runs
    the scenario over a device pool (the cluster-layer hot path);
    ``cache=CacheConfig(...)`` puts the host DRAM tier in the hot path
    (lookup/insert bookkeeping on every access); ``parallel=N`` runs
    the pool's devices in N worker processes — the simulated section
    must stay byte-identical to the serial pool's.
    """
    kwargs = {} if cache is None else {"cache": cache}
    if parallel:
        kwargs["parallel"] = parallel
    system = (cls(PAPER_PROTOTYPE, store_data=False, **kwargs)
              if devices <= 1
              else cls(PAPER_PROTOTYPE, store_data=False, devices=devices,
                       **kwargs))
    # before the first op, so parallel workers fork with the mode set
    apply_tuning(system, tuning)
    plan = workload.tile_plan()
    ops = 0
    ingest_result = None
    if isinstance(system, OracleSystem):
        shapes: Dict[str, list] = {}
        for fetch in plan:
            shapes.setdefault(fetch.dataset, [])
            if fetch.extents not in shapes[fetch.dataset]:
                shapes[fetch.dataset].append(fetch.extents)
        for ds in workload.datasets():
            for shape in shapes.get(ds.name, [ds.dims]):
                ingest_result = system.ingest(ds.name, ds.dims,
                                              ds.element_size, tile=shape)
                ops += 1
    else:
        for ds in workload.datasets():
            ingest_result = system.ingest(ds.name, ds.dims, ds.element_size)
            ops += 1
    ingest_end = ingest_result.end_time
    system.reset_time()
    read_sum = 0.0
    last_read = 0.0
    for fetch in plan:
        result = system.read_tile(fetch.dataset, fetch.origin, fetch.extents)
        last_read = result.end_time
        read_sum += result.end_time
        ops += 1
    system.reset_time()
    first = plan[0]
    write_end = system.write_tile(first.dataset, first.origin,
                                  first.extents).end_time
    ops += 1
    simulated = {
        "ingest_end": ingest_end.hex(),
        "last_read_end": last_read.hex(),
        "read_end_sum": read_sum.hex(),
        "write_end": write_end.hex(),
        "reads": len(plan),
    }
    cluster = getattr(system, "cluster", None)
    if cluster is not None:
        cluster.pool.close_workers()
    return ops, simulated


def run_hotpath_bench(max_tiles: int = 48, repeats: int = 1,
                      systems: Optional[Sequence] = None,
                      tuning: Optional[str] = None) -> Dict:
    """Run every ``system × workload`` scenario and time it.

    With ``repeats > 1`` each cell keeps the *fastest* wall time (the
    usual benchmarking practice: minimum wall time has the least noise)
    while asserting the simulated section never changes between
    repeats. ``tuning`` forces one :func:`apply_tuning` mode on every
    cell (the CLI's ``--scalar`` A/B switch); per-cell tuning variants
    are skipped then, since they would all measure the same thing.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    chosen = tuple(systems) if systems is not None else BENCH_SYSTEMS
    wall: Dict[str, Dict[str, float]] = {}
    simulated: Dict[str, Dict[str, str]] = {}
    cells = [{"key": f"{wl_name}/{cls.name}", "factory": factory,
              "cls": cls}
             for wl_name, factory in bench_workloads(max_tiles).items()
             for cls in chosen]
    if SoftwareNdsSystem in chosen:
        gemm = bench_workloads(max_tiles)["gemm"]
        # the cluster translation layer's hot path, serial and with
        # process-per-device workers (must agree byte-for-byte)
        cells.append({"key": "gemm/software-nds@4dev", "factory": gemm,
                      "cls": SoftwareNdsSystem, "devices": 4})
        cells.append({"key": "gemm/software-nds@4dev-par2",
                      "factory": gemm, "cls": SoftwareNdsSystem,
                      "devices": 4, "parallel": 2})
        # columnar-vs-scalar A/B on the same scenario: wall may move,
        # simulated output must not
        cells.append({"key": "gemm/software-nds@columnar",
                      "factory": gemm, "cls": SoftwareNdsSystem,
                      "tuning": "columnar"})
        cells.append({"key": "gemm/software-nds@scalar",
                      "factory": gemm, "cls": SoftwareNdsSystem,
                      "tuning": "scalar"})

        # one serving cell: many tiny single-row reads (embedding
        # lookups) stress per-request translation instead of fan-out
        def embedding():
            from repro.workloads.embedding import EmbeddingWorkload
            return EmbeddingWorkload(num_embeddings=4096, embedding_dim=64,
                                     num_tables=1, batch_size=4,
                                     pooling_factor=4, num_batches=6,
                                     alpha=1.05, weights_precision=4)
        cells.append({"key": "embedding/software-nds",
                      "factory": embedding, "cls": SoftwareNdsSystem})
        # the same serving scenario behind a hot DRAM tier: exercises
        # the cache lookup/insert bookkeeping on the wall-clock path
        from repro.cache.config import CacheConfig
        cells.append({"key": "embedding-cached/software-nds",
                      "factory": embedding, "cls": SoftwareNdsSystem,
                      "cache": CacheConfig(capacity_bytes=8 * 2**20)})
    if tuning is not None:
        cells = [dict(cell, tuning=tuning) for cell in cells
                 if "tuning" not in cell]
    for cell in cells:
        key = cell["key"]
        best = None
        ops = 0
        for _ in range(repeats):
            workload = cell["factory"]()
            t0 = time.perf_counter()
            ops, sim = run_scenario(
                cell["cls"], workload, devices=cell.get("devices", 1),
                cache=cell.get("cache"), parallel=cell.get("parallel", 0),
                tuning=cell.get("tuning"))
            elapsed = time.perf_counter() - t0
            prior = simulated.get(key)
            if prior is not None and prior != sim:
                raise AssertionError(
                    f"non-deterministic simulated output for {key}")
            simulated[key] = sim
            if best is None or elapsed < best:
                best = elapsed
        wall[key] = {
            "wall_s": round(best, 6),
            "ops": ops,
            "ops_per_s": round(ops / best, 1) if best > 0 else 0.0,
            "us_wall_per_op": round(best / ops * 1e6, 2),
        }
    # the A/B cells exist to prove the fast paths change wall time
    # only: their simulated sections must equal their reference cell's
    for variant, reference in (
            ("gemm/software-nds@columnar", "gemm/software-nds"),
            ("gemm/software-nds@scalar", "gemm/software-nds"),
            ("gemm/software-nds@4dev-par2", "gemm/software-nds@4dev")):
        if variant in simulated and reference in simulated:
            if simulated[variant] != simulated[reference]:
                raise AssertionError(
                    f"{variant} diverged from {reference}: "
                    f"{simulated[variant]} != {simulated[reference]}")
    return {
        "config": {"max_tiles": max_tiles, "repeats": repeats,
                   "systems": [cls.name for cls in chosen],
                   "workloads": sorted(bench_workloads(max_tiles))},
        "simulated": simulated,
        "wall": wall,
        "micro": run_micro_bench(),
    }


def run_micro_bench(servers: int = 256, batch: int = 4096,
                    rounds: int = 8) -> Dict[str, Dict[str, float]]:
    """Wall-clock micro-benchmarks of the columnar reservation core.

    Two cells over a 32 × 8 = 256-server :class:`MultiTimeline` (the
    paper prototype's channel × bank pool):

    - ``fanout``: one :meth:`~repro.sim.resources.MultiTimeline.
      reserve_fanout` batch vs the equivalent sequential
      ``reserve_on`` loop;
    - ``argmin_dispatch``: earliest-available dispatch through the
      numpy ``argmin`` mirror vs the plain Python scan.

    Both variants are asserted bit-identical on the final server state
    before the speedup is reported; only wall time differs.
    """
    from repro.sim.resources import MultiTimeline

    # the fan-out batch stripes over the 32 channels of the pool (one
    # contiguous run per channel), the shape a flash chain produces
    # when a wide access fans its pages over the array
    idx = ((np.arange(batch) * 32) // batch).astype(np.intp) % servers
    durs = ((np.arange(batch) % 7) + 1) * 1e-6
    starts = np.zeros(batch)

    mt_vec = MultiTimeline(servers)
    mt_seq = MultiTimeline(servers)
    t0 = time.perf_counter()
    for _ in range(rounds):
        mt_vec.reserve_fanout(idx, starts, durs)
    vec_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(rounds):
        for i in range(batch):
            mt_seq.reserve_on(int(idx[i]), 0.0, float(durs[i]))
    seq_s = time.perf_counter() - t0
    if [s.free_at for s in mt_vec.servers] != \
            [s.free_at for s in mt_seq.servers]:
        raise AssertionError("reserve_fanout diverged from reserve_on")

    mt_arg = MultiTimeline(servers)
    mt_scan = MultiTimeline(servers)
    n_dispatch = rounds * batch // 4
    t0 = time.perf_counter()
    for i in range(n_dispatch):
        mt_arg.reserve(0.0, 1e-6)
    arg_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i in range(n_dispatch):
        servers_list = mt_scan.servers
        best = servers_list[0]
        index = 0
        best_free = best.free_at
        for j in range(1, len(servers_list)):
            candidate = servers_list[j]
            if candidate.free_at < best_free:
                best = candidate
                best_free = candidate.free_at
                index = j
        best.reserve(0.0, 1e-6)
        mt_scan._free_col[index] = best.free_at
    scan_s = time.perf_counter() - t0
    if [s.free_at for s in mt_arg.servers] != \
            [s.free_at for s in mt_scan.servers]:
        raise AssertionError("argmin dispatch diverged from plain scan")

    return {
        "fanout": {
            "reservations": rounds * batch,
            "vectorized_s": round(vec_s, 6),
            "sequential_s": round(seq_s, 6),
            "speedup": round(seq_s / vec_s, 2) if vec_s > 0 else 0.0,
        },
        "argmin_dispatch": {
            "reservations": n_dispatch,
            "argmin_s": round(arg_s, 6),
            "scan_s": round(scan_s, 6),
            "speedup": round(scan_s / arg_s, 2) if arg_s > 0 else 0.0,
        },
    }


def format_bench(bench: Dict) -> str:
    """Human-readable table of the wall section."""
    from repro.analysis.report import format_table
    rows = []
    for key in sorted(bench["wall"]):
        cell = bench["wall"][key]
        rows.append([key, f"{cell['wall_s']:.3f}", str(cell["ops"]),
                     f"{cell['ops_per_s']:.0f}",
                     f"{cell['us_wall_per_op']:.1f}"])
    table = format_table(
        ["workload/system", "wall (s)", "ops", "ops/s", "us wall/op"],
        rows, title="Hot-path wall-clock benchmark")
    micro = bench.get("micro")
    if micro:
        micro_rows = []
        for key in sorted(micro):
            cell = micro[key]
            fast, slow = (("vectorized_s", "sequential_s")
                          if "vectorized_s" in cell
                          else ("argmin_s", "scan_s"))
            micro_rows.append([key, str(cell["reservations"]),
                               f"{cell[fast]:.4f}", f"{cell[slow]:.4f}",
                               f"{cell['speedup']:.1f}x"])
        table += "\n" + format_table(
            ["micro cell", "reservations", "fast (s)", "slow (s)",
             "speedup"],
            micro_rows, title="Reservation-core micro-benchmark")
    return table


def bench_json(bench: Dict) -> str:
    """Byte-stable JSON rendering (sorted keys, fixed separators)."""
    return json.dumps(bench, indent=1, sort_keys=True) + "\n"
