"""Typed dataset-level requests.

A :class:`TileOp` is the unit the :class:`~repro.runtime.scheduler.
RequestScheduler` admits, orders and executes: one read, write or
ingest of an axis-aligned region, tagged with the tenant stream that
issued it and the model time it was submitted. Systems consume ops
through their ``_execute_op`` hook and attach the resulting
:class:`~repro.systems.base.SystemOpResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["TileOp", "DEFAULT_STREAM"]

#: stream used by the synchronous ``read_tile``/``write_tile`` facade;
#: it is never queue-depth gated, so direct calls keep their seed-era
#: semantics (each call independent, ``start_time`` honoured exactly).
DEFAULT_STREAM = "main"

_KINDS = ("read", "write", "ingest")


@dataclass
class TileOp:
    """One dataset-level request flowing through the spine.

    ``extents`` doubles as the dataset ``dims`` for ingest ops, and
    ``params`` carries system-specific keywords (``layout=`` for the
    baseline, ``tile=`` for the oracle).
    """

    kind: str
    dataset: str
    origin: Tuple[int, ...]
    extents: Tuple[int, ...]
    submit_time: float = 0.0
    with_data: bool = False
    dtype: Optional[Any] = None
    data: Optional[Any] = None
    element_size: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    stream: str = DEFAULT_STREAM
    #: assigned by the scheduler at submission (global FIFO order)
    op_id: int = -1
    #: attached by the scheduler after execution
    result: Optional[Any] = None
    #: lifecycle timestamps stamped by the scheduler: model time the op
    #: entered its stream queue, the time it was actually issued to the
    #: system flow (after queue-depth gating), and the time it finished.
    #: ``None`` until the corresponding transition happens.
    enqueue_time: Optional[float] = None
    issue_time: Optional[float] = None
    complete_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown TileOp kind {self.kind!r}")
        self.origin = tuple(int(o) for o in self.origin)
        self.extents = tuple(int(e) for e in self.extents)

    # ------------------------------------------------------------------
    @classmethod
    def read(cls, dataset: str, origin, extents, *, submit_time: float = 0.0,
             with_data: bool = False, dtype=None,
             stream: str = DEFAULT_STREAM) -> "TileOp":
        return cls("read", dataset, tuple(origin), tuple(extents),
                   submit_time=submit_time, with_data=with_data,
                   dtype=dtype, stream=stream)

    @classmethod
    def write(cls, dataset: str, origin, extents, *, data=None,
              submit_time: float = 0.0,
              stream: str = DEFAULT_STREAM) -> "TileOp":
        return cls("write", dataset, tuple(origin), tuple(extents),
                   submit_time=submit_time, data=data, stream=stream)

    @classmethod
    def ingest(cls, dataset: str, dims, element_size: int, *, data=None,
               submit_time: float = 0.0, stream: str = DEFAULT_STREAM,
               **params) -> "TileOp":
        dims = tuple(dims)
        return cls("ingest", dataset, tuple(0 for _ in dims), dims,
                   submit_time=submit_time, data=data,
                   element_size=int(element_size), params=dict(params),
                   stream=stream)

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        return f"{self.kind}:{self.dataset}{list(self.extents)}@{list(self.origin)}"

    @property
    def completion_time(self) -> Optional[float]:
        return None if self.result is None else self.result.end_time

    @property
    def latency(self) -> Optional[float]:
        """Submit-to-completion latency (None before execution)."""
        if self.result is None:
            return None
        return self.result.end_time - self.submit_time

    @property
    def queue_wait(self) -> Optional[float]:
        """Enqueue-to-issue wait (None before the op was issued)."""
        if self.issue_time is None:
            return None
        base = self.enqueue_time if self.enqueue_time is not None \
            else self.submit_time
        return self.issue_time - base

    @property
    def service_time(self) -> Optional[float]:
        """Issue-to-completion service time (None before execution)."""
        if self.issue_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.issue_time
