"""QoS through co_run_workloads on real systems — the acceptance
scenarios: weighted 3:1 service delivery within 10%, hard isolation
with zero shared channels, and QoS config validation.
"""

from __future__ import annotations

import pytest

from repro.analysis.isolation import channel_overlap
from repro.nvm.profiles import TINY_TEST
from repro.runtime import QosSpec, ShardSpec, TraceRecorder
from repro.systems import BaselineSystem, SoftwareNdsSystem
from repro.workloads import BfsWorkload, GemmWorkload, co_run_workloads


def _gemm(name=None, max_tiles=12):
    workload = GemmWorkload(n=64, tile=16, max_tiles=max_tiles)
    if name is not None:
        workload.name = name
    return workload


def _bfs():
    return BfsWorkload(nodes=64, batch_rows=16)


def test_weighted_corun_delivers_three_to_one_service():
    """Acceptance: weights 3:1 between two identical tenants — while
    both are backlogged the delivered service-time shares are within
    10% of 3:1."""
    system = SoftwareNdsSystem(TINY_TEST, store_data=False)
    heavy = _gemm("heavy", max_tiles=40)
    light = _gemm("light", max_tiles=40)
    result = co_run_workloads(
        [heavy, light], system, queue_depth=4, arbitration="weighted",
        qos={"heavy": QosSpec(weight=3.0), "light": QosSpec(weight=1.0)})

    assert result.streams["heavy"].weight == 3.0
    # both-backlogged window ends when the first stream drains
    horizon = min(s.io_makespan for s in result.streams.values())
    delivered = {}
    for name in ("heavy", "light"):
        ops = [op for op in system.scheduler.executed
               if op.stream == name and op.result is not None
               and op.result.end_time <= horizon + 1e-12]
        delivered[name] = sum(op.result.end_time - op.result.start_time
                              for op in ops)
    ratio = delivered["heavy"] / delivered["light"]
    assert 2.7 <= ratio <= 3.3, f"service ratio {ratio:.2f} not ~3:1"
    # the favoured tenant must also finish no later than its co-tenant
    assert result.streams["heavy"].io_makespan <= \
        result.streams["light"].io_makespan + 1e-12


def test_disjoint_shards_share_zero_channels():
    """Acceptance: with per-tenant shards the tenants' flash-timeline
    busy intervals land on zero shared channels."""
    trace = TraceRecorder()
    result = co_run_workloads(
        [_gemm(), _bfs()], SoftwareNdsSystem(TINY_TEST, store_data=False),
        queue_depth=4, arbitration="weighted", trace=trace,
        qos={"GEMM": QosSpec(weight=3.0, shard=ShardSpec(channels=(0, 1))),
             "BFS": QosSpec(weight=1.0, shard=ShardSpec(channels=(2, 3)))})
    overlap = channel_overlap(trace, "GEMM", "BFS")
    assert overlap["shared_channels"] == []
    assert overlap["shared_busy_time"] == 0.0
    # both tenants did real flash work on their own channels
    gemm_channels = {ch for ch, busy in overlap["channels"].items()
                     if busy["GEMM"] > 0}
    bfs_channels = {ch for ch, busy in overlap["channels"].items()
                    if busy["BFS"] > 0}
    assert gemm_channels <= {"ch0", "ch1"} and gemm_channels
    assert bfs_channels <= {"ch2", "ch3"} and bfs_channels
    assert result.qos is not None


def test_without_shards_tenants_collide_on_channels():
    trace = TraceRecorder()
    co_run_workloads([_gemm(), _bfs()],
                     SoftwareNdsSystem(TINY_TEST, store_data=False),
                     queue_depth=4, trace=trace)
    overlap = channel_overlap(trace, "GEMM", "BFS")
    assert overlap["shared_channels"]
    assert overlap["shared_busy_time"] > 0.0


def test_corun_slo_fields_populated():
    result = co_run_workloads(
        [_gemm(), _bfs()], SoftwareNdsSystem(TINY_TEST, store_data=False),
        queue_depth=4,
        qos={"GEMM": QosSpec(latency_target=1e-9)})   # impossibly tight
    gemm = result.streams["GEMM"]
    assert gemm.latency_target == 1e-9
    assert gemm.slo_violated == gemm.tiles and gemm.slo_met == 0
    assert gemm.p95_io_latency >= gemm.p50_io_latency > 0.0
    bfs = result.streams["BFS"]
    assert bfs.latency_target is None
    assert bfs.slo_met == 0 and bfs.slo_violated == 0


def test_qos_for_unknown_workload_rejected():
    with pytest.raises(ValueError, match="unknown workloads"):
        co_run_workloads([_gemm()],
                         SoftwareNdsSystem(TINY_TEST, store_data=False),
                         qos={"nope": QosSpec(weight=2.0)})


def test_sharding_needs_an_stl_system():
    with pytest.raises(ValueError, match="STL"):
        co_run_workloads(
            [_gemm()], BaselineSystem(TINY_TEST, store_data=False),
            qos={"GEMM": QosSpec(shard=ShardSpec(channels=(0,)))})


def test_shared_dataset_with_conflicting_shards_rejected():
    a = BfsWorkload(nodes=64, batch_rows=16)
    b = BfsWorkload(nodes=64, batch_rows=32)
    b.name = "BFS-2"
    with pytest.raises(ValueError, match="shard"):
        co_run_workloads(
            [a, b], SoftwareNdsSystem(TINY_TEST, store_data=False),
            qos={"BFS": QosSpec(shard=ShardSpec(channels=(0, 1))),
                 "BFS-2": QosSpec(shard=ShardSpec(channels=(2, 3)))})


def test_weighted_corun_is_deterministic():
    def run():
        result = co_run_workloads(
            [_gemm(), _bfs()],
            SoftwareNdsSystem(TINY_TEST, store_data=False),
            queue_depth=2, arbitration="weighted",
            qos={"GEMM": QosSpec(weight=3.0)})
        return {name: s.completions for name, s in result.streams.items()}

    assert run() == run()
