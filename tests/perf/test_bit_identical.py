"""Exact-equality gates for the hot-path optimizations.

``golden_timings.json`` was captured at the pre-optimization commit:
ingest / per-fetch read / write end times (as ``float.hex()``) for the
four systems on a GEMM and a conv2d macro run. The cached translation,
batched page fan-out and engine fast path must reproduce every one of
those floats **bit for bit** — any drift here means an optimization
reordered the model's float operations and is a bug, not noise.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.nvm import PAPER_PROTOTYPE
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)
from repro.workloads.conv2d import Conv2dWorkload
from repro.workloads.gemm import GemmWorkload

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_timings.json").read_text())

SYSTEMS = (BaselineSystem, SoftwareNdsSystem, HardwareNdsSystem,
           OracleSystem)

WORKLOADS = {
    "gemm": lambda: GemmWorkload(n=512, tile=128, max_tiles=48),
    "conv2d": lambda: Conv2dWorkload(n=1024, tile_rows=128, tile_cols=256,
                                     max_tiles=48),
}


def _run_one(workload, cls, **system_kwargs):
    """Ingest + full tile-plan read sweep + one write, timing-only —
    the exact scenario the golden file was captured from."""
    system = cls(PAPER_PROTOTYPE, store_data=False, **system_kwargs)
    plan = workload.tile_plan()
    ingest_result = None
    if isinstance(system, OracleSystem):
        shapes = {}
        for fetch in plan:
            shapes.setdefault(fetch.dataset, [])
            if fetch.extents not in shapes[fetch.dataset]:
                shapes[fetch.dataset].append(fetch.extents)
        for ds in workload.datasets():
            for shape in shapes.get(ds.name, [ds.dims]):
                ingest_result = system.ingest(ds.name, ds.dims,
                                              ds.element_size, tile=shape)
    else:
        for ds in workload.datasets():
            ingest_result = system.ingest(ds.name, ds.dims, ds.element_size)
    ingest_end = ingest_result.end_time
    system.reset_time()
    read_ends = [system.read_tile(f.dataset, f.origin, f.extents).end_time
                 for f in plan]
    system.reset_time()
    first = plan[0]
    write_end = system.write_tile(first.dataset, first.origin,
                                  first.extents).end_time
    return ingest_end, read_ends, write_end


@pytest.mark.parametrize("wl_name", sorted(WORKLOADS))
@pytest.mark.parametrize("cls", SYSTEMS, ids=[c.name for c in SYSTEMS])
def test_simulated_timings_bit_identical_to_pre_pr(wl_name, cls):
    expected = GOLDEN[f"{wl_name}/{cls.name}"]
    ingest_end, read_ends, write_end = _run_one(WORKLOADS[wl_name](), cls)
    assert ingest_end.hex() == expected["ingest_end"]
    assert write_end.hex() == expected["write_end"]
    assert len(read_ends) == len(expected["read_ends"])
    for i, (got, want) in enumerate(zip(read_ends, expected["read_ends"])):
        assert got.hex() == want, f"fetch {i}: {got.hex()} != {want}"


@pytest.mark.parametrize("wl_name", sorted(WORKLOADS))
@pytest.mark.parametrize("cls", SYSTEMS, ids=[c.name for c in SYSTEMS])
def test_devices_one_bit_identical_to_single_device(wl_name, cls):
    """``devices=1`` must bypass the cluster layer entirely: identical
    floats to the plain single-device construction (and therefore to
    the pre-pool goldens)."""
    expected = GOLDEN[f"{wl_name}/{cls.name}"]
    ingest_end, read_ends, write_end = _run_one(WORKLOADS[wl_name](), cls,
                                                devices=1)
    assert ingest_end.hex() == expected["ingest_end"]
    assert write_end.hex() == expected["write_end"]
    assert [e.hex() for e in read_ends] == expected["read_ends"]


def _disable_fast_paths(system):
    """Force every optimized path back to its instrumentable original."""
    flash = getattr(system, "flash", None)
    if flash is None:
        flash = system.ssd.flash
    flash.fast_path = False
    flash.columnar = False
    engine = getattr(system, "engine", None)
    if engine is not None:
        engine.fast_path = False
    stl = getattr(system, "stl", None)
    if stl is not None:
        stl.batch_fanout = False
        stl.batch_epochs = False


@pytest.mark.parametrize("cls", SYSTEMS, ids=[c.name for c in SYSTEMS])
def test_fast_and_slow_paths_agree(cls):
    """A/B: the fast-path knobs off must give the same floats as on,
    with the translation cache disabled as well."""
    from repro.core.translator import (set_translation_cache_limit,
                                       translation_cache_limit)

    fast = _run_one(GemmWorkload(n=256, tile=128, max_tiles=12), cls)
    saved = translation_cache_limit()
    set_translation_cache_limit(0)
    try:
        slow = _run_one_slow(GemmWorkload(n=256, tile=128, max_tiles=12), cls)
    finally:
        set_translation_cache_limit(saved)
    assert fast[0].hex() == slow[0].hex()
    assert fast[2].hex() == slow[2].hex()
    assert [e.hex() for e in fast[1]] == [e.hex() for e in slow[1]]


def _run_one_slow(workload, cls):
    system = cls(PAPER_PROTOTYPE, store_data=False)
    _disable_fast_paths(system)
    plan = workload.tile_plan()
    ingest_result = None
    if isinstance(system, OracleSystem):
        shapes = {}
        for fetch in plan:
            shapes.setdefault(fetch.dataset, [])
            if fetch.extents not in shapes[fetch.dataset]:
                shapes[fetch.dataset].append(fetch.extents)
        for ds in workload.datasets():
            for shape in shapes.get(ds.name, [ds.dims]):
                ingest_result = system.ingest(ds.name, ds.dims,
                                              ds.element_size, tile=shape)
    else:
        for ds in workload.datasets():
            ingest_result = system.ingest(ds.name, ds.dims, ds.element_size)
    ingest_end = ingest_result.end_time
    system.reset_time()
    read_ends = [system.read_tile(f.dataset, f.origin, f.extents).end_time
                 for f in plan]
    system.reset_time()
    first = plan[0]
    write_end = system.write_tile(first.dataset, first.origin,
                                  first.extents).end_time
    return ingest_end, read_ends, write_end
