"""Property-based tests: the DRAM tier never changes what reads return.

The tier is a pure performance artifact — whatever mix of policies,
write-back buffering, evictions, flush fences and injected flash faults
a run goes through, a functional read must return exactly the bytes the
last write put there.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import CACHE_POLICIES, CacheConfig
from repro.faults import FaultConfig
from repro.nvm import TINY_TEST
from repro.systems import SoftwareNdsSystem

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

DIMS = (64, 64)
TILE = (16, 16)
ORIGINS = [(r, c) for r in range(0, DIMS[0], TILE[0])
           for c in range(0, DIMS[1], TILE[1])]

#: fault knobs that keep injected faults recoverable (mirrors the
#: fault property suite) so byte equality stays provable
_SAFE_RETRY = dict(rber_base=1e-3, jitter_log2=2.0)


@SETTINGS
@given(seed=st.integers(0, 2**31 - 1),
       policy=st.sampled_from(CACHE_POLICIES),
       write_back=st.booleans(),
       capacity_kib=st.sampled_from([4, 16, 64, 1024]),
       dirty_max=st.integers(1, 8),
       prefetch=st.integers(0, 2),
       ops=st.lists(st.tuples(st.booleans(),
                              st.sampled_from(range(len(ORIGINS)))),
                    min_size=4, max_size=24))
def test_readback_equality_under_cache_churn(seed, policy, write_back,
                                             capacity_kib, dirty_max,
                                             prefetch, ops):
    """Random read/write tile traffic through every tier configuration
    (tiny capacities force eviction+flush churn; write-back buffers
    dirty tiles; faults age the flash) reads back exactly the mirror."""
    system = SoftwareNdsSystem(
        TINY_TEST, store_data=True,
        cache=CacheConfig(capacity_bytes=capacity_kib * 1024, policy=policy,
                          write_back=write_back, dirty_max=dirty_max,
                          prefetch=prefetch),
        faults=FaultConfig(seed=seed, initial_wear=4000, **_SAFE_RETRY))
    rng = np.random.default_rng(seed)
    mirror = rng.integers(0, 2**31, DIMS).astype(np.int32)
    system.ingest("m", DIMS, 4, data=mirror.copy())
    for is_write, index in ops:
        r, c = ORIGINS[index]
        if is_write:
            patch = rng.integers(0, 2**31, TILE).astype(np.int32)
            mirror[r:r + TILE[0], c:c + TILE[1]] = patch
            system.write_tile("m", (r, c), TILE, data=patch)
        else:
            result = system.read_tile("m", (r, c), TILE, with_data=True,
                                      dtype=np.int32)
            assert np.array_equal(result.data,
                                  mirror[r:r + TILE[0], c:c + TILE[1]])
    # the durability fence flushes every buffered tile, after which a
    # full re-read still matches the mirror exactly
    system.flush_cache()
    result = system.read_tile("m", (0, 0), DIMS, with_data=True,
                              dtype=np.int32)
    assert np.array_equal(result.data, mirror)
    assert system.tier.dirty_count == 0


@SETTINGS
@given(seed=st.integers(0, 2**31 - 1),
       policy=st.sampled_from(CACHE_POLICIES))
def test_cache_timings_are_replayable(seed, policy):
    """Same seed, same config: every timed float and counter is
    bit-identical between runs (the determinism contract the CI
    cache job asserts end to end)."""
    def run():
        system = SoftwareNdsSystem(
            TINY_TEST,
            cache=CacheConfig(capacity_bytes=32 * 1024, policy=policy,
                              write_back=True, dirty_max=4))
        system.ingest("m", DIMS, 4)
        rng = np.random.default_rng(seed)
        trace = []
        for _ in range(12):
            r, c = ORIGINS[int(rng.integers(len(ORIGINS)))]
            if rng.integers(2):
                trace.append(
                    system.write_tile("m", (r, c), TILE).end_time.hex())
            else:
                trace.append(
                    system.read_tile("m", (r, c), TILE).end_time.hex())
        trace.append(system.flush_cache().hex())
        return trace, system.cache_report()
    assert run() == run()
