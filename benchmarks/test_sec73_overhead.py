"""§7.3 — the overhead of NDS.

Worst case: a request for a single page. The paper measures 41 µs of
additional latency for the software NDS and 17 µs for the hardware NDS
over the baseline — both shorter than (or the same order as) a NAND
page read (30–100 µs). A leaf node points at up to 512 pages, so larger
requests amortize one B-tree walk; and the whole STL lookup structure
occupies ~0.1 % of the stored capacity.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (MICRO_ELEM, MICRO_N, fresh_baseline,
                                 fresh_hardware, fresh_software, once)
from repro.analysis import PAPER, comparison_row, format_table
from repro.core.btree import BTreeIndex


def _single_page_latency(system, extents):
    system.reset_time()
    return system.read_tile("m", tuple(0 for _ in extents), extents).elapsed


def test_sec73_stl_latency_adders(benchmark):
    def run():
        base = fresh_baseline()
        software = fresh_software()
        hardware = fresh_hardware()
        for system in (base, software, hardware):
            system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
        # worst case: one page of data — 512 doubles = one page-aligned
        # row segment (no transformation, per the paper's setup)
        extents = (1, 512)
        return {
            "baseline": _single_page_latency(base, extents),
            "software": _single_page_latency(software, extents),
            "hardware": _single_page_latency(hardware, extents),
        }

    latency = once(benchmark, run)
    software_adder = (latency["software"] - latency["baseline"]) * 1e6
    hardware_adder = (latency["hardware"] - latency["baseline"]) * 1e6
    print()
    print(format_table(
        ["system", "single-page latency (us)"],
        [[k, f"{v * 1e6:.1f}"] for k, v in latency.items()],
        title="Sec 7.3 worst-case single-page request latency"))
    print(format_table(
        ["anchor", "paper", "measured", "delta"],
        [comparison_row("software adder (us)",
                        PAPER.software_stl_latency_us, software_adder),
         comparison_row("hardware adder (us)",
                        PAPER.hardware_stl_latency_us, hardware_adder)]))
    # Shape: software pays more than hardware; both adders are positive
    # and below a NAND page read's upper bound (100 us).
    assert software_adder > hardware_adder > 0
    assert software_adder == pytest.approx(PAPER.software_stl_latency_us,
                                           rel=0.5)
    assert hardware_adder == pytest.approx(PAPER.hardware_stl_latency_us,
                                           rel=0.6)
    assert software_adder < PAPER.nand_page_read_us_range[1]


def test_sec73_amortization_over_large_requests(benchmark):
    """One B-tree traversal serves many pages: the per-byte adder of a
    large request is far below the single-page adder."""
    def run():
        base = fresh_baseline()
        hardware = fresh_hardware()
        for system in (base, hardware):
            system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
        small_adder = (_single_page_latency(hardware, (1, 512))
                       - _single_page_latency(base, (1, 512)))
        base.reset_time()
        hardware.reset_time()
        big_base = base.read_tile("m", (0, 0), (256, MICRO_N)).elapsed
        hardware.reset_time()
        big_hw = hardware.read_tile("m", (0, 0), (256, MICRO_N)).elapsed
        return small_adder, big_base, big_hw

    small_adder, big_base, big_hw = once(benchmark, run)
    pages = 256 * MICRO_N * MICRO_ELEM // 4096
    per_page_adder = (big_hw - big_base) / pages
    print(f"\nsingle-page adder {small_adder * 1e6:.1f} us; "
          f"large-request per-page adder {per_page_adder * 1e9:.0f} ns")
    assert per_page_adder < small_adder / 10


def test_sec73_space_overhead(benchmark):
    """The STL lookup structures stay around 0.1 % of stored bytes."""
    def run():
        system = fresh_hardware()
        system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
        structures = system.stl.lookup_structure_bytes()
        reverse = system.stl.gc.reverse_table_bytes()
        stored = MICRO_N * MICRO_N * MICRO_ELEM
        return structures, reverse, stored

    structures, reverse, stored = once(benchmark, run)
    overhead = structures / stored
    print(f"\nSTL DRAM structures: {structures / 1024:.0f} KiB "
          f"({overhead:.3%} of stored data); "
          f"OOB reverse table: {reverse / 1024:.0f} KiB")
    print(format_table(
        ["anchor", "paper", "measured", "delta"],
        [comparison_row("space overhead",
                        PAPER.stl_space_overhead_fraction, overhead)]))
    assert overhead < 0.005
