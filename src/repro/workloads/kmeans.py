"""K-Means clustering (Table 1: data mining).

Points × attributes matrix; the 1-D kernel assigns one batch of points
per pipelined fetch (full-width row stripes). Shares its input dataset
with KNN (§6.2).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import clustering_points

__all__ = ["KMeansWorkload"]


class KMeansWorkload(Workload):
    name = "KMeans"
    category = "Data Mining"
    data_dim_label = "2D"
    kernel_dim_label = "1D"

    def __init__(self, points: int = 4096, attributes: int = 4096,
                 clusters: int = 16, stripe: int = 1024,
                 max_tiles: int = 64) -> None:
        if attributes % stripe != 0:
            raise ValueError("stripe must divide attributes")
        self.points = points
        self.attributes = attributes
        self.clusters = clusters
        self.stripe = stripe
        self.max_tiles = max_tiles

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset("points", (self.points, self.attributes), 4)]

    def tile_plan(self) -> List[TileFetch]:
        """Attribute-block stripes: the GPU kernel accumulates partial
        distances per attribute block over *all* points (coalesced
        feature-major access) — a column-crossing pattern over the
        row-major point store."""
        plan: List[TileFetch] = []
        for stripe in range(self.attributes // self.stripe):
            plan.append(TileFetch("points", (0, stripe * self.stripe),
                                  (self.points, self.stripe)))
            if len(plan) >= self.max_tiles:
                break
        return plan

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        return kernels.kmeans_assign(self.points, self.stripe,
                                     self.clusters, element_size=4)

    def shared_input_group(self) -> str:
        return "clustering-points"

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        data, _centres = clustering_points(
            self.points, self.attributes, clusters=self.clusters,
            seed=int(rng.integers(2**31)))
        return {"points": data}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """One Lloyd iteration from deterministic seeds; returns the
        per-point assignment."""
        data = inputs["points"].astype(np.float64)
        centres = data[:: max(1, len(data) // self.clusters)][:self.clusters]
        distances = ((data[:, None, :] - centres[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)
