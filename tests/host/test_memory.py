"""Tests for the host memory copy model."""

import pytest

from repro.host import MemoryModel


@pytest.fixture
def memory():
    return MemoryModel(copy_bandwidth=1e9, per_copy_overhead=1e-6)


class TestCopyTime:
    def test_single_copy(self, memory):
        assert memory.copy_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_chunked_copy_pays_per_chunk(self, memory):
        single = memory.copy_time(4000)
        chunked = memory.copy_time(4000, chunk_bytes=1000)
        assert chunked == pytest.approx(single + 3e-6)

    def test_chunk_larger_than_total_is_one_copy(self, memory):
        assert memory.copy_time(100, chunk_bytes=1000) == memory.copy_time(100)

    def test_zero_bytes(self, memory):
        assert memory.copy_time(0) == 0.0

    def test_negative_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.copy_time(-1)

    def test_partial_last_chunk_rounds_up(self, memory):
        # 2500 bytes in 1000-byte chunks = 3 chunks
        assert memory.copy_time(2500, 1000) == pytest.approx(
            3e-6 + 2500 / 1e9)


class TestEffectiveBandwidth:
    def test_small_chunks_are_slower(self, memory):
        assert (memory.effective_bandwidth(100)
                < memory.effective_bandwidth(10000))

    def test_zero_chunk(self, memory):
        assert memory.effective_bandwidth(0) == 0.0

    def test_paper_software_assembly_anchor(self):
        """§7.1: host assembly in 2 KB block-row chunks bounds the
        software NDS at ~3.8 GB/s (the raw memcpy rate sits slightly
        above it; per-block command costs bring the system-level figure
        to 3.8 — asserted in the Fig. 9 benchmark)."""
        default = MemoryModel()
        assert default.effective_bandwidth(2048) == pytest.approx(3.9e9,
                                                                  rel=0.08)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        MemoryModel(copy_bandwidth=0.0)
    with pytest.raises(ValueError):
        MemoryModel(per_copy_overhead=-1.0)
