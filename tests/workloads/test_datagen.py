"""Tests for the §A.3.4 synthetic dataset generators."""

import numpy as np

from repro.workloads.datagen import (clustering_points, pagerank_graph,
                                     random_adjacency, random_matrix,
                                     random_tensor, weighted_adjacency)


class TestDeterminism:
    def test_same_seed_same_data(self):
        assert np.array_equal(random_matrix(16, 16, seed=5),
                              random_matrix(16, 16, seed=5))
        assert not np.array_equal(random_matrix(16, 16, seed=5),
                                  random_matrix(16, 16, seed=6))


class TestMatrixAndTensor:
    def test_shapes_and_dtypes(self):
        m = random_matrix(8, 12)
        assert m.shape == (8, 12) and m.dtype == np.float32
        t = random_tensor(4, 5, 6, dtype=np.float64)
        assert t.shape == (4, 5, 6) and t.dtype == np.float64


class TestClustering:
    def test_points_cluster_around_centres(self):
        data, centres = clustering_points(512, 8, clusters=4, seed=1)
        assert data.shape == (512, 8)
        assert centres.shape == (4, 8)
        # every point is within a few sigma of *some* centre
        distances = np.linalg.norm(
            data[:, None, :] - centres[None, :, :], axis=2)
        assert (distances.min(axis=1) < 8.0).all()


class TestGraphs:
    def test_adjacency_is_binary_and_connected_enough(self):
        adj = random_adjacency(64, 256, seed=2)
        assert set(np.unique(adj)) <= {0, 1}
        # the chain guarantees >= n-1 edges
        assert adj.sum() >= 63

    def test_weighted_adjacency_no_self_loops(self):
        adj = weighted_adjacency(32, 128, seed=3)
        assert np.diagonal(adj).sum() == 0.0
        assert (adj >= 0).all()
        assert (adj[adj > 0] >= 0.1).all()

    def test_pagerank_graph_is_skewed(self):
        adj = pagerank_graph(128, mean_degree=8, seed=4)
        in_degree = (adj > 0).sum(axis=0)
        # Zipf-targets: the most popular node collects far more in-edges
        # than the median node
        assert in_degree.max() > 4 * max(1, np.median(in_degree))
        assert np.diagonal(adj).sum() == 0.0
