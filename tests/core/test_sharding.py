"""Per-tenant space sharding: the STL pins a space's allocation — and
everything downstream of it (overwrites, GC relocation, parity units,
degraded-read re-placement) — to a disjoint (channel, bank) subset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ShardSpec, SpaceTranslationLayer
from repro.core.api import array_to_bytes


def _live_planes(stl, space_id):
    """Every (channel, bank) holding a live unit of the space."""
    planes = set()
    for entry in stl.indexes[space_id].iter_entries():
        for ppa in entry.allocated_pages():
            planes.add((ppa.channel, ppa.bank))
    return planes


def _write(stl, space_id, array, coordinate=None):
    coordinate = coordinate or tuple(0 for _ in array.shape)
    return stl.write(space_id, coordinate, array.shape,
                     data=array_to_bytes(array))


# ----------------------------------------------------------------------
# ShardSpec
# ----------------------------------------------------------------------
class TestShardSpec:
    def test_channels_sorted(self):
        shard = ShardSpec(channels=(3, 1, 0))
        assert shard.channels == (0, 1, 3)

    def test_duplicate_channels_rejected(self):
        with pytest.raises(ValueError, match=r"duplicate entries \(3,\)"):
            ShardSpec(channels=(3, 1, 3))

    def test_duplicate_banks_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShardSpec(channels=(0,), banks=(1, 1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ShardSpec(channels=())

    def test_validate_against_geometry(self, tiny_profile):
        geometry = tiny_profile.geometry
        ShardSpec(channels=(0, 3)).validate(geometry)
        with pytest.raises(ValueError):
            ShardSpec(channels=(0, 99)).validate(geometry)
        with pytest.raises(ValueError):
            ShardSpec(channels=(0,), banks=(5,)).validate(geometry)

    def test_planes_cross_product(self, tiny_profile):
        geometry = tiny_profile.geometry
        assert ShardSpec(channels=(1,)).planes(geometry) == \
            frozenset({(1, 0), (1, 1)})
        assert ShardSpec(channels=(0, 2), banks=(1,)).planes(geometry) == \
            frozenset({(0, 1), (2, 1)})

    def test_overlap(self, tiny_profile):
        geometry = tiny_profile.geometry
        a = ShardSpec(channels=(0, 1))
        b = ShardSpec(channels=(2, 3))
        assert not a.overlaps(b, geometry)
        assert a.overlaps(ShardSpec(channels=(1, 2)), geometry)

    def test_normalize(self):
        assert ShardSpec.normalize(None) is None
        assert ShardSpec.normalize((2, 0)).channels == (0, 2)
        spec = ShardSpec(channels=(1,))
        assert ShardSpec.normalize(spec) is spec


# ----------------------------------------------------------------------
# STL enforcement
# ----------------------------------------------------------------------
class TestShardedAllocation:
    def test_writes_never_leave_the_shard(self, tiny_stl, rng):
        shard = ShardSpec(channels=(1, 3))
        space = tiny_stl.create_space((64, 64), 1, shard=shard)
        data = rng.integers(0, 255, (64, 64)).astype(np.uint8)
        _write(tiny_stl, space.space_id, data)
        planes = _live_planes(tiny_stl, space.space_id)
        assert planes
        assert {c for c, _ in planes} <= {1, 3}
        assert tiny_stl.shard_of(space.space_id) is shard
        # planes outside the shard were never touched
        for (channel, bank), plane in tiny_stl.allocator.planes.items():
            if channel not in (1, 3):
                assert plane.free_page_count() == \
                    tiny_stl.geometry.pages_per_bank

    def test_gc_churn_stays_in_the_shard(self, tiny_stl, rng):
        """Rewrites past the shard's raw capacity force GC erase/
        relocation cycles; live data still never leaves the shard."""
        shard = ShardSpec(channels=(2,))
        space = tiny_stl.create_space((64, 64), 1, shard=shard)
        for round_ in range(12):
            data = rng.integers(0, 255, (64, 64)).astype(np.uint8)
            _write(tiny_stl, space.space_id, data)
        assert tiny_stl.gc.total_erased > 0, "churn never triggered GC"
        planes = _live_planes(tiny_stl, space.space_id)
        assert planes and {c for c, _ in planes} == {2}
        for (channel, bank), plane in tiny_stl.allocator.planes.items():
            if channel != 2:
                assert plane.free_page_count() == \
                    tiny_stl.geometry.pages_per_bank

    def test_parity_units_stay_in_the_shard(self, tiny_profile, rng):
        from repro.nvm.flash import FlashArray
        flash = FlashArray(tiny_profile.geometry, tiny_profile.timing,
                           store_data=True)
        stl = SpaceTranslationLayer(flash, parity=True)
        shard = ShardSpec(channels=(0, 1))
        space = stl.create_space((64, 64), 1, shard=shard)
        data = rng.integers(0, 255, (64, 64)).astype(np.uint8)
        _write(stl, space.space_id, data)
        parity_ppas = [ppa for _, ppa in stl.parity.iter_space(space.space_id)]
        assert parity_ppas
        assert {ppa.channel for ppa in parity_ppas} <= {0, 1}

    def test_two_disjoint_shards_have_disjoint_footprints(self, tiny_stl,
                                                          rng):
        a = tiny_stl.create_space((64, 64), 1,
                                  shard=ShardSpec(channels=(0, 1)))
        b = tiny_stl.create_space((64, 64), 1,
                                  shard=ShardSpec(channels=(2, 3)))
        for space in (a, b):
            data = rng.integers(0, 255, (64, 64)).astype(np.uint8)
            _write(tiny_stl, space.space_id, data)
        planes_a = _live_planes(tiny_stl, a.space_id)
        planes_b = _live_planes(tiny_stl, b.space_id)
        assert planes_a and planes_b
        assert not planes_a & planes_b

    def test_oversized_space_rejected(self, tiny_stl):
        # one channel x 2 banks x 64 pages x 256 B = 32 KiB shard
        with pytest.raises(ValueError,
                           match=r"shard's footprint of 1 channels x 2 banks"):
            tiny_stl.create_space((256, 256), 1,
                                  shard=ShardSpec(channels=(0,)))

    def test_unsharded_spaces_unaffected(self, tiny_profile, rng):
        """Creating sharded co-tenants must not perturb an unsharded
        space's placement (the legacy RNG draw sequence)."""
        from repro.nvm.flash import FlashArray

        def run(with_cotenant):
            flash = FlashArray(tiny_profile.geometry, tiny_profile.timing,
                               store_data=True)
            stl = SpaceTranslationLayer(flash)
            space = stl.create_space((32, 32), 1)
            if with_cotenant:
                stl.create_space((32, 32), 1,
                                 shard=ShardSpec(channels=(3,)))
            data = np.arange(32 * 32, dtype=np.uint8).reshape(32, 32)
            _write(stl, space.space_id, data)
            return sorted(
                (ppa.channel, ppa.bank, ppa.block, ppa.page)
                for entry in stl.indexes[space.space_id].iter_entries()
                for ppa in entry.allocated_pages())

        assert run(False) == run(True)

    def test_delete_space_forgets_the_shard(self, tiny_stl):
        space = tiny_stl.create_space((32, 32), 1,
                                      shard=ShardSpec(channels=(0,)))
        assert tiny_stl.shard_of(space.space_id) is not None
        tiny_stl.delete_space(space.space_id)
        assert tiny_stl.shard_of(space.space_id) is None
