"""Tests for FCFS resource timelines."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import MultiTimeline, Timeline


class TestTimeline:
    def test_back_to_back_reservations(self):
        line = Timeline("t")
        assert line.reserve(0.0, 2.0) == (0.0, 2.0)
        assert line.reserve(0.0, 3.0) == (2.0, 5.0)
        assert line.free_at == 5.0

    def test_gap_when_arrival_is_late(self):
        line = Timeline("t")
        line.reserve(0.0, 1.0)
        start, end = line.reserve(10.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_busy_time_excludes_gaps(self):
        line = Timeline("t")
        line.reserve(0.0, 1.0)
        line.reserve(5.0, 2.0)
        assert line.busy_time == pytest.approx(3.0)
        assert line.utilization(10.0) == pytest.approx(0.3)

    def test_zero_duration_allowed(self):
        line = Timeline("t")
        assert line.reserve(1.0, 0.0) == (1.0, 1.0)

    def test_negative_duration_rejected(self):
        line = Timeline("t")
        with pytest.raises(ValueError):
            line.reserve(0.0, -1.0)

    def test_peek_does_not_reserve(self):
        line = Timeline("t")
        line.reserve(0.0, 4.0)
        assert line.peek(1.0) == 4.0
        assert line.free_at == 4.0

    def test_reset(self):
        line = Timeline("t")
        line.reserve(0.0, 4.0)
        line.reset()
        assert line.free_at == 0.0
        assert line.busy_time == 0.0
        assert line.ops == 0

    def test_utilization_clamps_to_one(self):
        line = Timeline("t")
        line.reserve(0.0, 5.0)
        assert line.utilization(1.0) == 1.0

    def test_utilization_of_empty_horizon(self):
        assert Timeline("t").utilization(0.0) == 0.0


class TestMultiTimeline:
    def test_dispatches_to_earliest_available(self):
        pool = MultiTimeline(2, "p")
        s1, e1, i1 = pool.reserve(0.0, 5.0)
        s2, e2, i2 = pool.reserve(0.0, 5.0)
        s3, e3, i3 = pool.reserve(0.0, 5.0)
        assert (s1, s2) == (0.0, 0.0)
        assert i1 != i2
        assert s3 == 5.0  # both busy until 5

    def test_reserve_on_pins_a_server(self):
        pool = MultiTimeline(3, "p")
        pool.reserve_on(1, 0.0, 4.0)
        start, _end = pool.reserve_on(1, 0.0, 1.0)
        assert start == 4.0

    def test_needs_at_least_one_server(self):
        with pytest.raises(ValueError):
            MultiTimeline(0)

    def test_aggregate_utilization(self):
        pool = MultiTimeline(2, "p")
        pool.reserve(0.0, 4.0)
        assert pool.utilization(4.0) == pytest.approx(0.5)
        assert pool.busy_time() == pytest.approx(4.0)

    def test_reset(self):
        pool = MultiTimeline(2, "p")
        pool.reserve(0.0, 4.0)
        pool.reset()
        assert pool.max_free_at() == 0.0

    def test_refresh_after_direct_mutation(self):
        pool = MultiTimeline(4, "p")
        pool.servers[2].reserve(0.0, 7.0)
        pool.refresh()
        # the dispatch mirror now knows server 2 is busy
        _s, _e, index = pool.reserve(0.0, 1.0)
        assert index != 2


class TestReserveMany:
    def test_matches_sequential_bit_for_bit(self):
        a, b = Timeline("a"), Timeline("b")
        starts = [0.0, 0.0, 5.0, 5.0, 4.0, 20.0]
        durs = [1.5, 0.25, 0.1, 3.0, 0.0, 1e-7]
        got_s, got_e = a.reserve_many(starts, durs)
        want = [b.reserve(s, d) for s, d in zip(starts, durs)]
        assert [(s.hex(), e.hex()) for s, e in zip(got_s, got_e)] == \
            [(s.hex(), e.hex()) for s, e in want]
        assert a.free_at.hex() == b.free_at.hex()
        assert a.busy_time.hex() == b.busy_time.hex()
        assert a.ops == b.ops

    def test_empty_batch(self):
        line = Timeline("t")
        got_s, got_e = line.reserve_many([], [])
        assert got_s.size == 0 and got_e.size == 0
        assert line.ops == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Timeline("t").reserve_many([0.0, 1.0], [1.0])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline("t").reserve_many([0.0], [-1.0])

    @settings(max_examples=200, deadline=None)
    @given(st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1e3),
                  st.floats(min_value=0.0, max_value=10.0)),
        min_size=1, max_size=64))
    def test_property_matches_sequential(self, reservations):
        """Bit-exactness for arbitrary idle/busy interleavings."""
        starts = [s for s, _ in reservations]
        durs = [d for _, d in reservations]
        a, b = Timeline("a"), Timeline("b")
        got_s, got_e = a.reserve_many(starts, durs)
        want = [b.reserve(s, d) for s, d in zip(starts, durs)]
        assert [(s.hex(), e.hex()) for s, e in zip(got_s, got_e)] == \
            [(s.hex(), e.hex()) for s, e in want]
        assert a.free_at.hex() == b.free_at.hex()
        assert a.busy_time.hex() == b.busy_time.hex()


class TestObserver:
    def test_callback_order_and_args(self):
        line = Timeline("ch0")
        seen = []
        line.observer = lambda name, start, end: seen.append(
            (name, start, end))
        line.reserve(0.0, 2.0)
        line.reserve(0.0, 1.0)
        assert seen == [("ch0", 0.0, 2.0), ("ch0", 2.0, 3.0)]

    def test_reserve_many_keeps_callback_order(self):
        """With an observer attached the scalar fallback runs, so the
        per-reservation callbacks arrive in FCFS order."""
        line = Timeline("ch0")
        seen = []
        line.observer = lambda name, start, end: seen.append((start, end))
        starts = [0.0, 0.0, 10.0]
        durs = [1.0, 2.0, 0.5]
        got_s, got_e = line.reserve_many(starts, durs)
        assert seen == list(zip(got_s.tolist(), got_e.tolist()))
        assert seen == [(0.0, 1.0), (1.0, 3.0), (10.0, 10.5)]

    def test_reset_keeps_observer(self):
        line = Timeline("t")
        seen = []
        line.observer = lambda name, start, end: seen.append(start)
        line.reserve(0.0, 1.0)
        line.reset()
        assert line.free_at == 0.0 and line.ops == 0
        line.reserve(3.0, 1.0)
        assert seen == [0.0, 3.0]


class TestArgminDispatch:
    def test_argmin_matches_plain_scan(self):
        """Randomized regression: the numpy argmin dispatch (>= 16
        servers) must pick the same server as a first-minimal Python
        scan, for ties included."""
        rng = random.Random(7)
        for trial in range(50):
            count = rng.choice([16, 24, 32, 256])
            pool = MultiTimeline(count, "p")
            mirror = [0.0] * count
            for _op in range(40):
                earliest = rng.random() * 5.0
                duration = rng.choice([0.0, 1e-6, rng.random()])
                want_index = min(range(count),
                                 key=lambda i: (mirror[i], i))
                start, end, index = pool.reserve(earliest, duration)
                assert index == want_index, (trial, _op)
                want_start = max(earliest, mirror[index])
                assert start.hex() == want_start.hex()
                assert end.hex() == (want_start + duration).hex()
                mirror[index] = end

    def test_fanout_matches_reserve_on(self):
        rng = random.Random(11)
        for _trial in range(30):
            count = rng.choice([4, 16, 64])
            a, b = MultiTimeline(count, "a"), MultiTimeline(count, "b")
            n = rng.randrange(1, 100)
            idx = [rng.randrange(count) for _ in range(n)]
            starts = [rng.random() * 2.0 for _ in range(n)]
            durs = [rng.random() * 0.1 for _ in range(n)]
            got_s, got_e = a.reserve_fanout(
                np.asarray(idx), np.asarray(starts), np.asarray(durs))
            want = [b.reserve_on(i, s, d)
                    for i, s, d in zip(idx, starts, durs)]
            assert [(s.hex(), e.hex())
                    for s, e in zip(got_s, got_e)] == \
                [(s.hex(), e.hex()) for s, e in want]
            assert [s.free_at.hex() for s in a.servers] == \
                [s.free_at.hex() for s in b.servers]

    def test_fanout_broadcasts_scalars(self):
        a, b = MultiTimeline(4, "a"), MultiTimeline(4, "b")
        got_s, got_e = a.reserve_fanout([1, 1, 3], 2.0, 0.5)
        want = [b.reserve_on(i, 2.0, 0.5) for i in (1, 1, 3)]
        assert list(zip(got_s, got_e)) == want

    def test_fanout_empty(self):
        pool = MultiTimeline(4, "p")
        got_s, got_e = pool.reserve_fanout([], [], [])
        assert got_s.size == 0 and got_e.size == 0
