"""Edge-case tests for the API and translator on 3-D blocks."""

import numpy as np
import pytest

from repro.core import (NdsApi, Space, SpaceTranslationLayer, TileGridView,
                        pages_for_region, translate_region)
from repro.nvm import FlashArray, Geometry, TINY_TEST


@pytest.fixture
def timing_only_api():
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                       store_data=False)
    return NdsApi(SpaceTranslationLayer(flash))


class TestTimingOnlyApi:
    def test_read_returns_no_data(self, timing_only_api):
        api = timing_only_api
        sid = api.create_space((16, 16), 4)
        handle = api.open_space(sid)
        api.write(handle, (0, 0), (16, 16))
        data, timing = api.read(handle, (0, 0), (16, 16))
        assert data is None
        assert timing.end_time > 0

    def test_write_ignores_missing_array(self, timing_only_api):
        api = timing_only_api
        sid = api.create_space((16, 16), 4)
        handle = api.open_space(sid)
        result = api.write(handle, (1, 1), (8, 8))
        assert result.pages_touched > 0


class TestWriteThroughTileGrid:
    def test_grid_write_lands_in_right_slab(self, tiny_stl, rng):
        api = NdsApi(tiny_stl)
        sid = api.create_space((8, 8, 4), 4)
        grid = api.open_space(sid, view=TileGridView((8, 8, 4), (2, 2)))
        big = rng.integers(0, 99, (16, 16)).astype(np.int32)
        api.write(grid, (0, 0), (16, 16), big)
        producer = api.open_space(sid)
        stack, _ = api.read(producer, (0, 0, 0), (8, 8, 4),
                            dtype=np.int32)
        assert np.array_equal(stack[:, :, 0], big[:8, :8])
        assert np.array_equal(stack[:, :, 1], big[:8, 8:])
        assert np.array_equal(stack[:, :, 2], big[8:, :8])
        assert np.array_equal(stack[:, :, 3], big[8:, 8:])


class Test3dBlockPageCoverage:
    @pytest.fixture
    def space3d(self):
        geometry = Geometry(channels=4, banks_per_channel=2, page_size=256)
        # 3-D cube blocks: min3d = 2 KiB, 4-byte elements -> 8x8x8
        return Space.create(1, (32, 32, 32), 4, geometry,
                            use_3d_blocks=True)

    def test_cube_block_shape(self, space3d):
        assert space3d.bb == (8, 8, 8)
        assert space3d.pages_per_block == 8

    def test_full_cube_touches_all_pages(self, space3d):
        pages = pages_for_region(space3d, ((0, 8), (0, 8), (0, 8)))
        assert pages == list(range(8))

    def test_depth_slab_touches_prefix(self, space3d):
        # one page = 256 B = 64 elements = 1 (i) slab of 8x8
        pages = pages_for_region(space3d, ((0, 1), (0, 8), (0, 8)))
        assert pages == [0]

    def test_fibre_touches_every_slab_page(self, space3d):
        pages = pages_for_region(space3d, ((0, 8), (3, 4), (3, 4)))
        assert pages == list(range(8))

    def test_translation_counts_cubes(self, space3d):
        accesses = translate_region(space3d, (0, 0, 0), (16, 16, 16))
        assert len(accesses) == 8
        assert all(a.is_full_block for a in accesses)


class TestDegenerateShapes:
    def test_single_element_space(self, tiny_stl):
        from repro.core.api import array_to_bytes, bytes_to_array
        space = tiny_stl.create_space((1,), 8)
        value = np.array([123456789], dtype=np.int64)
        tiny_stl.write(space.space_id, (0,), (1,),
                       data=array_to_bytes(value))
        result = tiny_stl.read(space.space_id, (0,), (1,))
        assert bytes_to_array(result.data, np.int64)[0] == 123456789

    def test_one_by_n_space(self, tiny_stl, rng):
        from repro.core.api import array_to_bytes, bytes_to_array
        space = tiny_stl.create_space((1, 64), 4)
        row = rng.integers(0, 99, (1, 64)).astype(np.int32)
        tiny_stl.write(space.space_id, (0, 0), (1, 64),
                       data=array_to_bytes(row))
        result = tiny_stl.read_region(space.space_id, (0, 10), (1, 20))
        assert np.array_equal(bytes_to_array(result.data, np.int32),
                              row[:, 10:30])
