"""Shared fixtures and helpers for the figure/table benchmarks.

Every benchmark prints the same rows/series its paper figure reports,
records paper-vs-measured deltas, and asserts the qualitative *shape*
(who wins, by roughly what factor). Simulations are deterministic, so
each benchmark runs its workload once (``benchmark.pedantic`` with one
round) — wall-clock variance of the simulator itself is not the point.

Scale: microbenchmarks use an 8192×8192 double matrix (the paper's is
32768×32768 — same structure, 1/16 the page count); end-to-end runs use
the workload defaults documented in DESIGN.md §5.
"""

from __future__ import annotations

import pytest

from repro.host.cpu import HostCpu
from repro.nvm import PAPER_PROTOTYPE
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)

#: microbenchmark matrix dimension (paper: 32768; scaled 1/4 per axis)
MICRO_N = 4096
MICRO_ELEM = 8
#: the paper's §7.1 prototype picks 256×256 blocks for doubles
MICRO_BB = (256, 256)


def fresh_baseline(store_data: bool = False) -> BaselineSystem:
    return BaselineSystem(PAPER_PROTOTYPE, store_data=store_data)


def fresh_software(store_data: bool = False,
                   bb_override=MICRO_BB) -> SoftwareNdsSystem:
    return SoftwareNdsSystem(PAPER_PROTOTYPE, store_data=store_data,
                             bb_override=bb_override)


def fresh_hardware(store_data: bool = False,
                   bb_override=MICRO_BB) -> HardwareNdsSystem:
    return HardwareNdsSystem(PAPER_PROTOTYPE, store_data=store_data,
                             bb_override=bb_override)


def fresh_oracle(store_data: bool = False) -> OracleSystem:
    return OracleSystem(PAPER_PROTOTYPE, store_data=store_data)


@pytest.fixture
def micro_systems():
    """Baseline + software NDS + hardware NDS with the §7.1 microbench
    matrix ingested (row-store on the baseline)."""
    base = fresh_baseline()
    software = fresh_software()
    hardware = fresh_hardware()
    for system in (base, software, hardware):
        system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
        system.reset_time()
    return {"baseline": base, "software": software, "hardware": hardware}


def once(benchmark, fn):
    """Run a deterministic simulation once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
