"""The host DRAM cache tier.

:class:`HostTierCache` holds recently fetched regions (building-block
regions for the NDS systems, LPN runs for the linear systems) in host
DRAM, keyed opaquely by the owning system. It owns byte accounting,
the eviction policy, the write-back dirty set, and the deterministic
hit/miss/eviction counters that the request scheduler diffs around
every op for per-stream attribution.

Timing stays with the owner: the tier never touches a timeline itself.
Dirty data reaches flash through ``flush_fn(entry, now) -> float``, a
callback the owning system installs that replays its own per-access
device write path — so a write-back flush costs exactly what the write
would have cost, just later.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

from repro.cache.config import CacheConfig
from repro.cache.policy import make_policy

__all__ = ["CacheEntry", "HostTierCache"]

#: counter keys, in the order reports render them
COUNTER_KEYS = ("hits", "misses", "insertions", "evictions", "rejected",
                "invalidations", "writebacks", "prefetch_issued",
                "prefetch_hits")


@dataclass
class CacheEntry:
    """One cached region."""

    key: Hashable
    nbytes: int
    #: owner context needed to flush/refetch (e.g. (dataset, space_id,
    #: access) for the NDS systems, an IoRequest for the linear ones)
    payload: object = None
    #: region bytes when the system runs functionally (store_data);
    #: None in timing-only mode
    data: object = None
    dirty: bool = False
    prefetched: bool = False
    #: coarse locality bucket for overlap checks (the NDS systems use
    #: (dataset, block_coord) so writes only scan one block's entries)
    group: Hashable = None
    extra: dict = field(default_factory=dict)


class HostTierCache:
    """Byte-budgeted DRAM cache with pluggable eviction and write-back."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.policy = make_policy(config)
        self.entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self.total_bytes = 0
        self.counters: Dict[str, int] = {key: 0 for key in COUNTER_KEYS}
        #: dirty keys in first-written order (flush oldest first)
        self._dirty: "OrderedDict[Hashable, None]" = OrderedDict()
        #: group -> set of resident keys (only keys with a group)
        self._groups: Dict[Hashable, set] = {}
        #: installed by the owning system; replays its device write path
        self.flush_fn: Optional[Callable[[CacheEntry, float], float]] = None
        #: optional MetricsRegistry (attached via the system's
        #: ``set_metrics``); observation only, never feeds back
        self.metrics = None

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Optional[CacheEntry]:
        """Demand lookup: counts a hit or miss and refreshes recency."""
        entry = self.entries.get(key)
        if entry is None:
            self.counters["misses"] += 1
            if self.metrics is not None:
                self.metrics.count("cache.miss")
            return None
        self.counters["hits"] += 1
        if entry.prefetched:
            self.counters["prefetch_hits"] += 1
            entry.prefetched = False
            if self.metrics is not None:
                self.metrics.count("cache.prefetch_hit")
        if self.metrics is not None:
            self.metrics.count("cache.hit")
        self.policy.on_hit(key)
        return entry

    def contains(self, key: Hashable) -> bool:
        """Presence probe that does NOT count (prefetch planning)."""
        return key in self.entries

    def get(self, key: Hashable) -> Optional[CacheEntry]:
        """Uncounted fetch (coherence checks)."""
        return self.entries.get(key)

    def group_keys(self, group: Hashable) -> List[Hashable]:
        """Resident keys sharing ``group`` (copy; safe to mutate over)."""
        return list(self._groups.get(group, ()))

    # ------------------------------------------------------------------
    # insertion / eviction
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, nbytes: int, now: float,
               payload: object = None, data: object = None,
               dirty: bool = False, prefetched: bool = False,
               group: Hashable = None) -> float:
        """Insert or refresh a region; returns the (possibly advanced)
        time after any evictions/flushes the insertion forced."""
        entry = self.entries.get(key)
        if entry is not None:
            # refresh in place (e.g. write-through update, re-fetch)
            self.total_bytes += nbytes - entry.nbytes
            entry.nbytes = nbytes
            if payload is not None:
                entry.payload = payload
            if data is not None:
                entry.data = data
            if dirty and not entry.dirty:
                entry.dirty = True
                self._dirty[key] = None
            entry.prefetched = prefetched and entry.prefetched
            self.policy.on_hit(key)
            return self._enforce(now)
        # dirty insertions are write-buffer contents, not cached reads:
        # rejecting one would silently drop the write, so they bypass
        # the admission filter unconditionally
        if not dirty and not self.policy.admit(key):
            self.counters["rejected"] += 1
            if self.metrics is not None:
                self.metrics.count("cache.reject")
            return now
        entry = CacheEntry(key=key, nbytes=int(nbytes), payload=payload,
                           data=data, dirty=dirty, prefetched=prefetched,
                           group=group)
        self.entries[key] = entry
        self.total_bytes += entry.nbytes
        self.counters["insertions"] += 1
        if dirty:
            self._dirty[key] = None
        if group is not None:
            self._groups.setdefault(group, set()).add(key)
        if prefetched:
            self.counters["prefetch_issued"] += 1
            if self.metrics is not None:
                self.metrics.count("cache.prefetch_issued")
        self.policy.on_insert(key)
        return self._enforce(now)

    def _enforce(self, now: float) -> float:
        """Evict down to the byte budget, then the dirty bound."""
        while self.total_bytes > self.config.capacity_bytes and self.entries:
            victim = self.policy.victim()
            now = self._evict(victim, now)
        while len(self._dirty) > self.config.dirty_max:
            oldest = next(iter(self._dirty))
            now = self.flush_entry(oldest, now)
        return now

    def _evict(self, key: Hashable, now: float) -> float:
        entry = self.entries[key]
        if entry.dirty:
            now = self.flush_entry(key, now)
        self._remove(key)
        self.counters["evictions"] += 1
        if self.metrics is not None:
            self.metrics.count("cache.evict")
        return now

    def _remove(self, key: Hashable) -> None:
        entry = self.entries.pop(key)
        self.total_bytes -= entry.nbytes
        self._dirty.pop(key, None)
        if entry.group is not None:
            keys = self._groups.get(entry.group)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._groups[entry.group]
        self.policy.remove(key)

    def invalidate(self, key: Hashable) -> None:
        """Drop an entry without flushing (the caller is writing fresher
        data through, or tearing the cache down)."""
        if key in self.entries:
            self._remove(key)
            self.counters["invalidations"] += 1
            if self.metrics is not None:
                self.metrics.count("cache.invalidate")

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def flush_entry(self, key: Hashable, now: float) -> float:
        """Write one dirty entry back through the owner's device path."""
        entry = self.entries.get(key)
        if entry is None or not entry.dirty:
            return now
        if self.flush_fn is None:
            raise RuntimeError("write-back cache has no flush_fn installed")
        now = self.flush_fn(entry, now)
        entry.dirty = False
        self._dirty.pop(key, None)
        self.counters["writebacks"] += 1
        if self.metrics is not None:
            self.metrics.count("cache.writeback")
        return now

    def flush_all(self, now: float) -> float:
        """Durability fence: every dirty region reaches flash."""
        for key in list(self._dirty):
            now = self.flush_entry(key, now)
        return now

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    @property
    def dirty_bytes(self) -> int:
        """Bytes buffered in the write-back dirty set (the exposure a
        durability fence would have to flush)."""
        return sum(self.entries[key].nbytes for key in self._dirty)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def counters_snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    def report(self) -> Dict[str, object]:
        """Deterministic summary for sweep cells and reports."""
        hits = self.counters["hits"]
        misses = self.counters["misses"]
        demand = hits + misses
        issued = self.counters["prefetch_issued"]
        out: Dict[str, object] = {key: self.counters[key]
                                  for key in COUNTER_KEYS}
        out["entries"] = len(self.entries)
        out["resident_bytes"] = self.total_bytes
        out["dirty"] = len(self._dirty)
        out["hit_rate"] = round(hits / demand, 6) if demand else 0.0
        out["prefetch_accuracy"] = (
            round(self.counters["prefetch_hits"] / issued, 6)
            if issued else 0.0)
        out["policy"] = self.config.policy
        out["capacity_bytes"] = self.config.capacity_bytes
        out["write_back"] = self.config.write_back
        return out
