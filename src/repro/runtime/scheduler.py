"""Multi-tenant request scheduling over shared resource timelines.

The scheduler is the admission layer of the request spine: N tenant
streams submit :class:`~repro.runtime.tileop.TileOp`s; the scheduler
orders them (global FIFO or per-stream round-robin), gates each stream
at its queue depth, and executes them one after another against the
owning system's analytic flow. Contention is carried entirely by the
shared FCFS :class:`~repro.sim.resources.Timeline` servers the flows
reserve — the scheduler adds *sequencing*, never timing — so a single
stream reproduces the direct call path bit-for-bit, and any fixed
submission order yields a deterministic schedule.

:class:`QueueDepthWindow` is the one queue-depth primitive in the code
base: the same sliding completion window limits NVMe queue pairs inside
:class:`~repro.host.io_engine.HostIoEngine` and tenant streams here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.runtime.tileop import DEFAULT_STREAM, TileOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.trace import TraceRecorder

__all__ = ["QueueDepthWindow", "StreamHandle", "RequestScheduler"]

_ARBITRATIONS = ("fifo", "round_robin")


class QueueDepthWindow:
    """Sliding in-flight window: request ``k`` may not issue before
    request ``k - depth`` completed (``depth=None`` = unbounded)."""

    __slots__ = ("depth", "completions")

    def __init__(self, depth: Optional[int] = None) -> None:
        if depth is not None and depth < 1:
            raise ValueError("queue depth must be >= 1 (or None)")
        self.depth = depth
        self.completions: List[float] = []

    def earliest(self, submit_time: float) -> float:
        """Earliest issue time for the next request, honouring the
        window against all previously completed requests."""
        if self.depth is not None and len(self.completions) >= self.depth:
            return max(submit_time, self.completions[-self.depth])
        return submit_time

    def complete(self, time: float) -> None:
        self.completions.append(time)

    def reset(self) -> None:
        self.completions.clear()


class StreamHandle:
    """One tenant stream: identity, queue depth and completion history."""

    def __init__(self, name: str, queue_depth: Optional[int] = None) -> None:
        self.name = name
        self.window = QueueDepthWindow(queue_depth)
        self.ops: List[TileOp] = []

    @property
    def queue_depth(self) -> Optional[int]:
        return self.window.depth

    @property
    def completions(self) -> List[float]:
        return [op.result.end_time for op in self.ops if op.result is not None]

    @property
    def latencies(self) -> List[float]:
        return [op.latency for op in self.ops if op.result is not None]

    @property
    def makespan(self) -> float:
        """Last completion over this stream (0.0 before any finish)."""
        completions = self.completions
        return max(completions) if completions else 0.0

    @property
    def mean_latency(self) -> float:
        latencies = self.latencies
        return sum(latencies) / len(latencies) if latencies else 0.0

    def reset(self) -> None:
        self.window.reset()
        self.ops.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamHandle({self.name!r}, depth={self.queue_depth}, "
                f"ops={len(self.ops)})")


class RequestScheduler:
    """Admits tenant streams of TileOps against one storage system.

    Parameters
    ----------
    executor:
        The owning system; must provide ``_execute_op(op,
        earliest_start) -> SystemOpResult``.
    arbitration:
        ``"fifo"`` drains submissions in global submit order;
        ``"round_robin"`` cycles over streams taking one op each.
    trace:
        Optional :class:`~repro.runtime.trace.TraceRecorder`; every
        executed op gets a parent span and component spans inherit the
        op's stream context.
    """

    def __init__(self, executor, arbitration: str = "fifo",
                 trace: Optional["TraceRecorder"] = None) -> None:
        if arbitration not in _ARBITRATIONS:
            raise ValueError(
                f"arbitration must be one of {_ARBITRATIONS}, "
                f"got {arbitration!r}")
        self.executor = executor
        self.arbitration = arbitration
        self.trace = trace
        self.streams: Dict[str, StreamHandle] = {}
        self.executed: List[TileOp] = []
        self._pending: List[TileOp] = []
        self._next_op_id = 0
        #: per-stream deltas of the executor's fault counters (empty
        #: unless the executor exposes ``fault_counters`` and an
        #: injector is attached)
        self._fault_totals: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # stream management
    # ------------------------------------------------------------------
    def stream(self, name: str = DEFAULT_STREAM,
               queue_depth: Optional[int] = None) -> StreamHandle:
        """Get or create the stream ``name``.

        ``queue_depth`` is fixed at creation; pass it again only with
        the same value.
        """
        handle = self.streams.get(name)
        if handle is None:
            handle = StreamHandle(name, queue_depth)
            self.streams[name] = handle
        elif queue_depth is not None and handle.queue_depth != queue_depth:
            raise ValueError(
                f"stream {name!r} already exists with queue depth "
                f"{handle.queue_depth}, not {queue_depth}")
        return handle

    # ------------------------------------------------------------------
    # submission and execution
    # ------------------------------------------------------------------
    def submit(self, op: TileOp) -> TileOp:
        """Queue one op on its stream (created on first use)."""
        self.stream(op.stream)
        op.op_id = self._next_op_id
        self._next_op_id += 1
        self._pending.append(op)
        return op

    @property
    def pending(self) -> int:
        return len(self._pending)

    def drain(self) -> List[TileOp]:
        """Execute every pending op in arbitration order; returns the
        executed ops (results attached) in execution order."""
        batch = self._arbitrate()
        self._pending.clear()
        for op in batch:
            self._run(op)
        return batch

    def execute(self, op: TileOp) -> "TileOp":
        """Submit and immediately execute one op (the synchronous
        facade used by ``StorageSystem.read_tile`` et al.). Pending
        batched ops are left untouched."""
        self.stream(op.stream)
        op.op_id = self._next_op_id
        self._next_op_id += 1
        self._run(op)
        return op

    def reset(self) -> None:
        """Forget completion history (streams persist). Pairs with the
        systems' ``reset_time`` between measurement phases."""
        for handle in self.streams.values():
            handle.reset()
        self.executed.clear()
        self._pending.clear()
        self._fault_totals.clear()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stream_report(self) -> Dict[str, Dict[str, float]]:
        """Per-stream aggregate metrics after a drain."""
        report: Dict[str, Dict[str, float]] = {}
        for name, handle in self.streams.items():
            if not handle.ops:
                continue
            latencies = handle.latencies
            report[name] = {
                "ops": len(handle.ops),
                "makespan": handle.makespan,
                "mean_latency": handle.mean_latency,
                "max_latency": max(latencies) if latencies else 0.0,
            }
        return report

    def stream_fault_report(self) -> Dict[str, Dict[str, int]]:
        """Per-stream fault/retry/error counters accumulated across all
        executed ops (empty when no injector is attached or nothing
        fired). Keys mirror the injector's counters, plus
        ``ops_failed`` for ops that raised a typed storage error."""
        return {name: dict(counters)
                for name, counters in self._fault_totals.items() if counters}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _account_faults(self, op: TileOp, before: Dict[str, int],
                        after: Optional[Dict[str, int]],
                        failed: bool = False, result=None) -> None:
        if after is None:
            return
        totals = self._fault_totals.setdefault(op.stream, {})
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta:
                totals[name] = totals.get(name, 0) + delta
                if result is not None:
                    result.stats.count(name, delta)
        if failed:
            totals["ops_failed"] = totals.get("ops_failed", 0) + 1

    def _arbitrate(self) -> List[TileOp]:
        if self.arbitration == "fifo":
            return list(self._pending)
        # round_robin: one op per stream per cycle, streams in first-
        # submission order — deterministic for a fixed submission order.
        queues: Dict[str, List[TileOp]] = {}
        for op in self._pending:
            queues.setdefault(op.stream, []).append(op)
        order: List[TileOp] = []
        while queues:
            for name in list(queues):
                order.append(queues[name].pop(0))
                if not queues[name]:
                    del queues[name]
        return order

    def _run(self, op: TileOp) -> None:
        handle = self.streams[op.stream]
        earliest = handle.window.earliest(op.submit_time)
        probe = getattr(self.executor, "fault_counters", None)
        before = probe() if probe is not None else None
        if self.trace is not None:
            self.trace.push_op(op.stream, op.op_id)
        try:
            result = self.executor._execute_op(op, earliest)
        except Exception:
            if before is not None:
                self._account_faults(op, before, probe(), failed=True)
            raise
        finally:
            if self.trace is not None:
                self.trace.pop_op()
        op.result = result
        if before is not None:
            self._account_faults(op, before, probe(), result=result)
        handle.window.complete(result.end_time)
        handle.ops.append(op)
        self.executed.append(op)
        if self.trace is not None:
            self.trace.op_span(op.stream, op.op_id, op.label,
                               result.start_time, result.end_time,
                               kind=op.kind, dataset=op.dataset)
