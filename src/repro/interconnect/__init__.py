"""Host-device interconnect substrate: link timing + NVMe command model."""

from repro.interconnect.link import Link, LinkTransfer
from repro.interconnect.nvme import (
    NVME_LIMITS,
    CommandLimits,
    NvmeCommand,
    NvmeOpcode,
    saturation_curve,
)

__all__ = [
    "Link",
    "LinkTransfer",
    "NvmeCommand",
    "NvmeOpcode",
    "CommandLimits",
    "NVME_LIMITS",
    "saturation_curve",
]
