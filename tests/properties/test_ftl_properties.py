"""Property-based tests for the baseline FTL and SSD."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ftl import BaselineSSD, PageMapFTL
from repro.nvm import Geometry, TINY_TEST

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=60, deadline=None)
@given(channels=st.integers(1, 32), banks=st.integers(1, 8),
       lpn=st.integers(0, 10**6))
def test_stripe_target_is_stable_and_in_range(channels, banks, lpn):
    geometry = Geometry(channels=channels, banks_per_channel=banks)
    ftl = PageMapFTL(geometry)
    channel, bank = ftl.stripe_target(lpn)
    assert 0 <= channel < channels
    assert 0 <= bank < banks
    assert ftl.stripe_target(lpn) == (channel, bank)


@settings(max_examples=60, deadline=None)
@given(channels=st.integers(2, 16), count=st.integers(2, 64))
def test_consecutive_lpns_spread_over_channels(channels, count):
    """The striping invariant behind [P3]: a sequential LBA run covers
    min(count, channels) distinct channels."""
    geometry = Geometry(channels=channels, banks_per_channel=4)
    ftl = PageMapFTL(geometry)
    seen = {ftl.stripe_target(lpn)[0] for lpn in range(count)}
    assert len(seen) == min(count, channels)


@SETTINGS
@given(st.data())
def test_ssd_scattered_roundtrip(data):
    """Any interleaving of writes (with overwrites) reads back the last
    value written per page."""
    ssd = BaselineSSD(TINY_TEST, store_data=True)
    lpn_pool = data.draw(st.lists(st.integers(0, 50), min_size=1,
                                  max_size=30))
    expected = {}
    for serial, lpn in enumerate(lpn_pool):
        payload = np.full(ssd.page_size, (serial * 37 + lpn) % 251,
                          dtype=np.uint8)
        ssd.write_lpns([lpn], float(serial), data=[payload])
        expected[lpn] = payload[0]
    result = ssd.read_lpns(sorted(expected), 1000.0, with_data=True)
    for page, lpn in zip(result.data, sorted(expected)):
        assert page[0] == expected[lpn]


@SETTINGS
@given(st.data())
def test_forward_and_reverse_maps_stay_consistent(data):
    ssd = BaselineSSD(TINY_TEST, store_data=False)
    operations = data.draw(st.lists(
        st.tuples(st.sampled_from(["write", "trim"]),
                  st.integers(0, 40)),
        min_size=1, max_size=60))
    for serial, (op, lpn) in enumerate(operations):
        if op == "write":
            ssd.write_lpns([lpn], float(serial))
        else:
            ssd.trim_lpns([lpn])
    # every forward mapping has exactly one reverse entry and vice versa
    from repro.nvm.address import ppa_to_index
    forward = {lpn: ppa_to_index(ppa, ssd.geometry)
               for lpn, ppa in ssd.ftl.map.items()}
    assert set(forward.values()) == set(ssd.gc.reverse.keys())
    for lpn, idx in forward.items():
        assert ssd.gc.reverse[idx] == lpn
