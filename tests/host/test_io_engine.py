"""Tests for the queue-depth-limited host I/O engine."""

import numpy as np
import pytest

from repro.ftl import BaselineSSD
from repro.host import HostCpu, HostIoEngine, IoRequest
from repro.interconnect import Link
from repro.nvm import TINY_TEST


@pytest.fixture
def engine():
    ssd = BaselineSSD(TINY_TEST, store_data=True)
    link = Link(TINY_TEST.link_bandwidth, TINY_TEST.link_command_overhead)
    return HostIoEngine(ssd, link, HostCpu(), queue_depth=4)


def _requests(count, pages_each=1, start_lpn=0):
    return [IoRequest(lpns=list(range(start_lpn + i * pages_each,
                                      start_lpn + (i + 1) * pages_each)),
                      useful_bytes=pages_each * TINY_TEST.geometry.page_size)
            for i in range(count)]


class TestReads:
    def test_completions_are_monotone(self, engine):
        engine.run_writes(_requests(8))
        engine.reset_time()
        result = engine.run_reads(_requests(8))
        assert result.completions == sorted(result.completions)
        assert result.end_time == result.completions[-1]

    def test_queue_depth_limits_overlap(self):
        ssd = BaselineSSD(TINY_TEST, store_data=False)
        link = Link(TINY_TEST.link_bandwidth, TINY_TEST.link_command_overhead)
        deep = HostIoEngine(ssd, link, HostCpu(), queue_depth=8)
        deep_result = deep.run_reads(_requests(16))

        ssd2 = BaselineSSD(TINY_TEST, store_data=False)
        link2 = Link(TINY_TEST.link_bandwidth, TINY_TEST.link_command_overhead)
        shallow = HostIoEngine(ssd2, link2, HostCpu(), queue_depth=1)
        shallow_result = shallow.run_reads(_requests(16))
        assert shallow_result.end_time > deep_result.end_time

    def test_placement_copy_extends_completion(self, engine):
        engine.run_writes(_requests(1))
        engine.reset_time()
        no_copy = engine.run_reads(
            [IoRequest(lpns=[0], useful_bytes=256, placement_chunk=None)])
        engine.reset_time()
        with_copy = engine.run_reads(
            [IoRequest(lpns=[0], useful_bytes=256, placement_chunk=0)])
        assert with_copy.end_time > no_copy.end_time

    def test_with_data_returns_page_contents(self, engine, rng):
        payload = rng.integers(0, 256, TINY_TEST.geometry.page_size
                               ).astype(np.uint8)
        engine.run_writes([IoRequest(lpns=[3], useful_bytes=payload.size,
                                     payload=[payload])])
        result = engine.run_reads([IoRequest(lpns=[3],
                                             useful_bytes=payload.size)],
                                  with_data=True)
        assert np.array_equal(result.data[0][0], payload)

    def test_effective_bandwidth_counts_useful_bytes(self, engine):
        engine.run_writes(_requests(4))
        engine.reset_time()
        result = engine.run_reads(
            [IoRequest(lpns=[0, 1], useful_bytes=100)])
        assert result.useful_bytes == 100
        assert result.fetched_bytes == 2 * TINY_TEST.geometry.page_size
        assert result.effective_bandwidth < 100 / 1e-6


class TestWrites:
    def test_gather_copy_costs_time(self, engine):
        plain = engine.run_writes(
            [IoRequest(lpns=[0], useful_bytes=256, placement_chunk=None)])
        engine.reset_time()
        engine2_start = engine.run_writes(
            [IoRequest(lpns=[1], useful_bytes=256, placement_chunk=64)])
        assert engine2_start.end_time > plain.end_time * 0.5  # sane scale

    def test_queue_depth_validation(self):
        ssd = BaselineSSD(TINY_TEST, store_data=False)
        link = Link(1e9, 1e-6)
        with pytest.raises(ValueError):
            HostIoEngine(ssd, link, HostCpu(), queue_depth=0)
