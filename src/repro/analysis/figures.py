"""Terminal-friendly figure rendering.

An ASCII log-scale line chart good enough to eyeball the Fig. 3 /
Fig. 9 curve shapes in a terminal (the benchmarks print the exact
numbers as tables; this is the visual companion).
"""

from __future__ import annotations

import math
from typing import Dict

__all__ = ["ascii_chart"]

_MARKS = "ox+*#@%&"


def ascii_chart(series: Dict[str, Dict[int, float]],
                height: int = 12, log_y: bool = True,
                title: str = "") -> str:
    """Render named ``{x: y}`` series on a shared character grid.

    X positions are the union of the series' keys (ordinal spacing —
    our sweeps are powers of two); Y is log-scaled by default.
    """
    if not series:
        return title
    xs = sorted({x for points in series.values() for x in points})
    if not xs:
        return title

    def transform(value: float) -> float:
        if log_y:
            return math.log10(max(value, 1e-12))
        return value

    values = [transform(v) for points in series.values()
              for v in points.values()]
    lo, hi = min(values), max(values)
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * len(xs) for _ in range(height)]
    for index, (name, points) in enumerate(sorted(series.items())):
        mark = _MARKS[index % len(_MARKS)]
        for column, x in enumerate(xs):
            if x not in points:
                continue
            level = (transform(points[x]) - lo) / (hi - lo)
            row = height - 1 - round(level * (height - 1))
            grid[int(row)][column] = mark

    lines = []
    if title:
        lines.append(title)
    unit = "log10" if log_y else "linear"
    lines.append(f"y: {lo:.2f}..{hi:.2f} ({unit})")
    for row in grid:
        lines.append("|" + " ".join(row))
    lines.append("+" + "-" * (2 * len(xs)))
    lines.append(" " + " ".join(_shorten(x) for x in xs))
    legend = "  ".join(f"{_MARKS[i % len(_MARKS)]}={name}"
                       for i, name in enumerate(sorted(series)))
    lines.append(legend)
    return "\n".join(lines)


def _shorten(x: int) -> str:
    if x >= 1024 and x % 1024 == 0:
        return f"{x // 1024}k"
    return str(x)
