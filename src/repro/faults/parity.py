"""Cross-channel XOR parity groups for NDS building blocks.

The §4.2 allocator spreads a building block's units over as many
channels as possible; one extra XOR unit per block therefore gives
RAID-5-like protection *across channels*: when a unit becomes
unreadable (uncorrectable ECC, scripted corruption, or a dead channel)
the STL reconstructs it from the surviving units plus parity, all of
which live on other channels/banks by construction.

The store tracks only the parity unit's physical location per
``(space_id, block_coord)``; the parity *content* lives in the flash
array like any other page, so functional verification covers it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = ["ParityStore", "PARITY_POSITION", "xor_fold"]

#: sentinel block position for parity units in the GC reverse table —
#: relocations of a parity page patch the store, not a B-tree leaf
PARITY_POSITION = -1


def xor_fold(page_slots: "np.ndarray", page_size: int) -> "np.ndarray":
    """XOR of all page-sized slices of a block's content buffer."""
    padded = page_slots.reshape(-1, page_size)
    return np.bitwise_xor.reduce(padded, axis=0)


class ParityStore:
    """Parity-unit locations keyed by (space_id, block_coord)."""

    def __init__(self) -> None:
        self._pages: Dict[Tuple[int, Tuple[int, ...]], object] = {}

    def get(self, space_id: int, coord: Tuple[int, ...]) -> Optional[object]:
        return self._pages.get((space_id, tuple(coord)))

    def put(self, space_id: int, coord: Tuple[int, ...], ppa: object) -> None:
        self._pages[(space_id, tuple(coord))] = ppa

    def pop(self, space_id: int, coord: Tuple[int, ...]) -> Optional[object]:
        return self._pages.pop((space_id, tuple(coord)), None)

    def iter_space(self, space_id: int) -> Iterator[Tuple[Tuple[int, ...], object]]:
        for (sid, coord), ppa in list(self._pages.items()):
            if sid == space_id:
                yield coord, ppa

    def __len__(self) -> int:
        return len(self._pages)
